"""Differential correctness of the semantic rollup store.

The classic failure mode of semantic caching is the wrong-but-plausible
hit: a stored rollup that *almost* answers the probe, served anyway.
Every test here therefore compares a rollup-served result against
direct evaluation of the same query with the store disabled
(``rollup="off"`` — which opts out even under the ``REPRO_ROLLUP`` CI
leg), asserting **row- and order-identity**, not just bag equality: a
GMDJ emits one tuple per base tuple in base order, and a served rollup
must reproduce that exactly, NULLs included.

Three serving tiers are exercised, on hand-built GMDJ pairs and on
hypothesis-driven NULL-heavy databases from the fuzzer's generator:

* exact — identical (base, detail, blocks) signature;
* θ-residual subsumption — the probe's θ adds base-only conjuncts to a
  stored θ (blocks whose residual is not TRUE on a base row take the
  aggregates' empty-input values: count → 0, sum/min/max → NULL);
* base-selection subsumption — the probe's base is a Select over the
  stored base (served by filtering cached rows on the base prefix).

Plus the *refusal* cases that keep the matcher sound: residuals touching
the detail side, stored-finer-than-probe θ, and differing aggregate
lists must all miss.  Finally, the zero-detail-scan certificate: every
trace in which the rollup store answered must contain no ``detail_scan``
span under any hit (checked by the invariant checker).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import Database, DataType, QueryOptions
from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import col, lit
from repro.algebra.operators import ScanTable, Select
from repro.fuzz.datagen import random_database
from repro.gmdj.operator import md
from repro.obs.invariants import check_trace

WARM = QueryOptions(strategy="gmdj", rollup="subsume", use_cache=False)
OFF = QueryOptions(strategy="gmdj", rollup="off", use_cache=False)

THETA = col("b.k") == col("r.k")
AGGS = [[
    AggregateSpec("count", None, "c0"),
    AggregateSpec("sum", col("r.y"), "s0"),
    AggregateSpec("min", col("r.y"), "m0"),
]]


def seeded_db(seed: int) -> Database:
    """A Database over the fuzzer's NULL-heavy B/R/S tables."""
    rng = random.Random(seed)
    spec = random_database(rng, max_rows=12)
    db = Database()
    for name, table in spec.tables.items():
        db.create_table(name, list(table.columns), table.rows)
    return db


def scan(table: str, alias: str) -> ScanTable:
    return ScanTable(table, alias)


def coarse_gmdj():
    return md(scan("B", "b"), scan("R", "r"), AGGS, [THETA])


class TestServingTiers:
    """Hand-built store/probe pairs over a fixed NULL-bearing database."""

    def _db(self) -> Database:
        db = Database()
        db.create_table(
            "B", [("k", DataType.INTEGER), ("x", DataType.INTEGER)],
            [(0, 5), (1, None), (2, 9), (3, 1), (4, 7), (5, 3)],
        )
        db.create_table(
            "R", [("k", DataType.INTEGER), ("y", DataType.INTEGER)],
            [(0, 3), (0, 8), (1, 4), (2, None), (2, 2), (4, 7), (4, 7),
             (6, 1)],
        )
        return db

    def test_exact_tier_round_trip(self):
        db = self._db()
        cold = db.execute(coarse_gmdj(), WARM)
        warm = db.execute(coarse_gmdj(), WARM)
        assert warm.rows == cold.rows
        assert db.rollups.stats()["exact_hits"] == 1

    def test_theta_residual_subsumption(self):
        db = self._db()
        fine = md(scan("B", "b"), scan("R", "r"), AGGS,
                  [THETA & (col("b.x") > lit(2))])
        db.execute(coarse_gmdj(), WARM)
        served = db.execute(fine, WARM)
        direct = db.execute(fine, OFF)
        assert served.rows == direct.rows
        assert db.rollups.stats()["subsume_hits"] == 1
        # Rows failing the residual keep their base prefix but take the
        # aggregates' empty-input values — count 0, sum/min NULL.
        empties = [row for row in served.rows if row[2] == 0]
        assert all(row[3] is None and row[4] is None for row in empties)

    def test_base_selection_subsumption(self):
        db = self._db()
        fine = md(Select(scan("B", "b"), col("b.x") > lit(2)),
                  scan("R", "r"), AGGS, [THETA])
        db.execute(coarse_gmdj(), WARM)
        served = db.execute(fine, WARM)
        direct = db.execute(fine, OFF)
        assert served.rows == direct.rows
        assert db.rollups.stats()["subsume_hits"] == 1

    def test_combined_subsumption(self):
        db = self._db()
        fine = md(Select(scan("B", "b"), col("b.k") < lit(5)),
                  scan("R", "r"), AGGS,
                  [THETA & (col("b.x") > lit(2))])
        db.execute(coarse_gmdj(), WARM)
        served = db.execute(fine, WARM)
        direct = db.execute(fine, OFF)
        assert served.rows == direct.rows
        assert db.rollups.stats()["subsume_hits"] == 1

    def test_theta_reordering_is_served(self):
        db = self._db()
        rho = col("b.x") > lit(2)
        db.execute(md(scan("B", "b"), scan("R", "r"), AGGS,
                      [THETA & rho]), WARM)
        reordered = md(scan("B", "b"), scan("R", "r"), AGGS,
                       [rho & THETA])
        served = db.execute(reordered, WARM)
        direct = db.execute(reordered, OFF)
        assert served.rows == direct.rows
        assert db.rollups.stats()["subsume_hits"] == 1


class TestRefusals:
    """Shapes the matcher must *not* serve — each falls back to a scan."""

    def _warmed(self):
        db = TestServingTiers()._db()
        db.execute(coarse_gmdj(), WARM)
        return db

    def test_detail_residual_misses(self):
        # The extra conjunct references r.y: re-aggregation would need
        # the detail relation, so the store must refuse.
        db = self._warmed()
        fine = md(scan("B", "b"), scan("R", "r"), AGGS,
                  [THETA & (col("r.y") > lit(3))])
        served = db.execute(fine, WARM)
        assert db.rollups.stats()["subsume_hits"] == 0
        assert served.rows == db.execute(fine, OFF).rows

    def test_stored_finer_than_probe_misses(self):
        # Stored θ strictly stronger than the probe's: rows the stored
        # rollup already filtered out cannot be resurrected.
        db = TestServingTiers()._db()
        finer = md(scan("B", "b"), scan("R", "r"), AGGS,
                   [THETA & (col("b.x") > lit(2))])
        db.execute(finer, WARM)
        served = db.execute(coarse_gmdj(), WARM)
        assert db.rollups.stats()["subsume_hits"] == 0
        assert served.rows == db.execute(coarse_gmdj(), OFF).rows

    def test_different_aggregates_miss(self):
        db = self._warmed()
        other = md(scan("B", "b"), scan("R", "r"),
                   [[AggregateSpec("max", col("r.y"), "mx")]], [THETA])
        served = db.execute(other, WARM)
        assert db.rollups.stats()["subsume_hits"] == 0
        assert served.rows == db.execute(other, OFF).rows

    def test_exact_level_never_subsumes(self):
        db = TestServingTiers()._db()
        exact_only = QueryOptions(strategy="gmdj", rollup="exact",
                                  use_cache=False)
        db.execute(coarse_gmdj(), exact_only)
        fine = md(scan("B", "b"), scan("R", "r"), AGGS,
                  [THETA & (col("b.x") > lit(2))])
        served = db.execute(fine, exact_only)
        assert db.rollups.stats()["subsume_hits"] == 0
        assert served.rows == db.execute(fine, OFF).rows


class TestPropertyDifferential:
    """Coarse-store → fine-probe pairs over fuzz-generated databases."""

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_theta_residual_matches_direct(self, seed):
        db = seeded_db(seed)
        rng = random.Random(seed ^ 0x5EED)
        bound = rng.randint(-2, 8)
        fine = md(scan("B", "b"), scan("R", "r"), AGGS,
                  [THETA & (col("b.x") > lit(bound))])
        db.execute(coarse_gmdj(), WARM)
        served = db.execute(fine, WARM)
        direct = db.execute(fine, OFF)
        assert served.rows == direct.rows
        assert db.rollups.stats()["subsume_hits"] >= 1

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_base_selection_matches_direct(self, seed):
        db = seeded_db(seed)
        rng = random.Random(seed ^ 0xBA5E)
        bound = rng.randint(-2, 8)
        fine = md(Select(scan("B", "b"), col("b.k") < lit(bound)),
                  scan("R", "r"), AGGS, [THETA])
        db.execute(coarse_gmdj(), WARM)
        served = db.execute(fine, WARM)
        direct = db.execute(fine, OFF)
        assert served.rows == direct.rows
        assert db.rollups.stats()["subsume_hits"] >= 1

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25)
    def test_sql_cold_warm_optimized_agree(self, seed):
        # The fuzz engine's replay shape, as a property: plain gmdj
        # stores, gmdj_optimized (whose pushdown sinks the base-only
        # conjunct into the GMDJ base) probes by subsumption.
        db = seeded_db(seed)
        sql = ("SELECT b.k, b.x FROM B b WHERE b.k < 4 AND b.x > "
               "(SELECT sum(r.y) FROM R r WHERE r.k = b.k)")
        warm_opt = QueryOptions(strategy="gmdj_optimized",
                                rollup="subsume", use_cache=False)
        off_opt = QueryOptions(strategy="gmdj_optimized",
                               rollup="off", use_cache=False)
        cold = db.execute_sql(sql, WARM)
        warm = db.execute_sql(sql, WARM)
        optimized = db.execute_sql(sql, warm_opt)
        direct = db.execute_sql(sql, off_opt)
        assert warm.rows == cold.rows
        assert optimized.rows == direct.rows


class TestZeroDetailScanCertificate:
    def test_subsume_hit_trace_has_no_detail_scans(self):
        db = TestServingTiers()._db()
        fine = md(scan("B", "b"), scan("R", "r"), AGGS,
                  [THETA & (col("b.x") > lit(2))])
        db.execute(coarse_gmdj(), WARM)
        report = db.profile(fine, WARM, trace=True)
        hits = [s for s in report.trace.walk() if s.kind == "rollup_hit"]
        assert len(hits) == 1 and hits[0].attrs["tier"] == "subsume"
        assert not [s for s in report.trace.walk()
                    if s.kind == "detail_scan"]
        # strict: the rollup invariants raise on any scan under a hit.
        invariants = check_trace(report.trace, strict=True)
        assert invariants.checked >= 2 and invariants.ok

    def test_explain_analyze_reports_serving_tier(self):
        db = seeded_db(20260808)
        sql = ("SELECT b.k FROM B b WHERE b.k < 4 AND b.x > "
               "(SELECT sum(r.y) FROM R r WHERE r.k = b.k)")
        warm_opt = QueryOptions(strategy="gmdj_optimized",
                                rollup="subsume", use_cache=False)
        db.execute_sql(sql, WARM)
        text = db.explain_analyze(db.sql(sql), warm_opt, strict=True)
        assert "rollup=subsume" in text
        assert "-- rollup:" in text
        assert "served from rollup store (subsumption)" in text

    def test_miss_trace_records_miss_and_store(self):
        db = TestServingTiers()._db()
        report = db.profile(coarse_gmdj(), WARM, trace=True)
        assert [s for s in report.trace.walk() if s.kind == "rollup_miss"]
        assert db.rollups.stats()["stores"] == 1


class TestConcurrentRollupStaleness:
    """Threaded reads racing inserts must never be served a stale rollup.

    Subsumption makes stale rollups worse than stale cache entries: one
    stale stored GMDJ can answer *other* queries.  This drives the warm
    (``rollup="subsume"``) path from four reader threads while a writer
    commits inserts through the tenant write lock, then differentially
    checks every observation against the committed snapshot sequence and
    the final state against direct ``rollup="off"`` evaluation.
    """

    def test_threaded_reads_racing_inserts_stay_fresh(self):
        import threading

        from repro.serve.state import Tenant

        from repro import DataType

        sql = ("SELECT K FROM B b WHERE EXISTS "
               "(SELECT * FROM R r WHERE r.K = b.K)")
        db = Database()
        db.create_table("B", [("K", DataType.INTEGER)],
                        [(i,) for i in range(4)])
        db.create_table("R", [("K", DataType.INTEGER)], [(0,)])
        tenant = Tenant(name="t", db=db)
        snapshots = [frozenset({(0,)})]
        stop = threading.Event()
        failures = []
        per_thread = []

        def reader():
            seen = []
            try:
                while not stop.is_set():
                    payload = tenant.run_query(sql, WARM)
                    served = frozenset(
                        tuple(row) for row in payload["rows"])
                    if payload["served_by"] in ("rollup", "mixed"):
                        # A rollup-served answer must also honour the
                        # zero-detail-scan certificate.
                        if (payload["served_by"] == "rollup"
                                and payload["detail_scans"]):
                            failures.append(
                                f"rollup hit scanned the detail: {payload}")
                    seen.append(served)
            except Exception as error:  # pragma: no cover - diagnostics
                failures.append(error)
            per_thread.append(seen)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for key in (1, 2, 3):
            tenant.run_ddl({"op": "insert", "name": "R", "rows": [[key]]})
            snapshots.append(snapshots[-1] | {(key,)})
        stop.set()
        for thread in threads:
            thread.join(60)
        assert not failures, failures

        for seen in per_thread:
            for result in seen:
                assert result in snapshots, f"stale rollup served {result}"
            indices = [snapshots.index(result) for result in seen]
            assert indices == sorted(indices)

        # Differential close: the warm path and direct rollup-off
        # evaluation agree row-for-row on the final state.
        warm_final = db.execute_sql(sql, WARM)
        direct = db.execute_sql(sql, OFF)
        assert warm_final.rows == direct.rows
        assert frozenset(direct.rows) == snapshots[-1]
