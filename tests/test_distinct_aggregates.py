"""Tests for DISTINCT aggregates through every layer."""

import pytest
from repro import QueryOptions

from repro.algebra.aggregates import AggregateSpec, agg
from repro.algebra.expressions import col
from repro.algebra.operators import GroupBy, ScanTable
from repro.engine import Database
from repro.errors import ExpressionError, SQLSyntaxError
from repro.gmdj import evaluate_gmdj_partitioned, md
from repro.storage import DataType


def spec(function, distinct=True, name="v"):
    return AggregateSpec(function, col("r.Y"), name, distinct)


def feed(specification, values):
    accumulator = specification.make_accumulator()
    for value in values:
        accumulator.add(value)
    return accumulator.result()


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "B", [("K", DataType.INTEGER)], [(1,), (2,)],
    )
    database.create_table(
        "R", [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
        [(1, 5), (1, 5), (1, 7), (2, None), (2, 3), (2, 3)],
    )
    return database


class TestAccumulators:
    def test_count_distinct(self):
        assert feed(spec("count"), [1, 1, 2, None, 2]) == 2

    def test_sum_distinct(self):
        assert feed(spec("sum"), [5, 5, 7]) == 12

    def test_avg_distinct(self):
        assert feed(spec("avg"), [2, 2, 4]) == 3.0

    def test_distinct_empty_input(self):
        assert feed(spec("count"), []) == 0
        assert feed(spec("sum"), [None, None]) is None

    def test_distinct_merge(self):
        left = spec("count").make_accumulator()
        right = spec("count").make_accumulator()
        for value in (1, 2):
            left.add(value)
        for value in (2, 3):
            right.add(value)
        left.merge(right)
        assert left.result() == 3

    def test_count_distinct_star_rejected(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("count", None, "c", distinct=True)


class TestThroughOperators:
    def test_groupby_distinct(self, db):
        plan = GroupBy(ScanTable("R", "r"), ["r.K"],
                       [agg("count", col("r.Y"), "plain"),
                        AggregateSpec("count", col("r.Y"), "uniq", True)])
        result = plan.evaluate(db.catalog)
        rows = {row[0]: (row[1], row[2]) for row in result.rows}
        assert rows[1] == (3, 2)
        assert rows[2] == (2, 1)

    def test_gmdj_distinct(self, db):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[AggregateSpec("count", col("r.Y"), "uniq", True)]],
                  [col("b.K") == col("r.K")])
        result = plan.evaluate(db.catalog)
        assert dict(result.rows) == {1: 2, 2: 1}

    def test_partitioned_falls_back_but_is_correct(self, db):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[AggregateSpec("sum", col("r.Y"), "s", True)]],
                  [col("b.K") == col("r.K")])
        single = plan.evaluate(db.catalog)
        partitioned = evaluate_gmdj_partitioned(plan, db.catalog, 3)
        assert single.bag_equal(partitioned)


class TestThroughSQL:
    def test_select_count_distinct(self, db):
        result = db.execute_sql(
            "SELECT r.K, count(DISTINCT r.Y) AS u FROM R r GROUP BY r.K"
        )
        assert dict(result.rows) == {1: 2, 2: 1}

    def test_scalar_subquery_with_distinct(self, db):
        sql = ("SELECT b.K FROM B b WHERE 2 = "
               "(SELECT count(DISTINCT r.Y) FROM R r WHERE r.K = b.K)")
        reference = db.execute_sql(sql, QueryOptions("naive"))
        assert sorted(row[0] for row in reference.rows) == [1]
        for strategy in ("gmdj", "gmdj_optimized"):
            assert reference.bag_equal(db.execute_sql(sql, QueryOptions(strategy)))

    def test_distinct_star_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.sql("SELECT count(DISTINCT *) FROM R")
