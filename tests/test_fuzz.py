"""Unit tests for the differential fuzzing subsystem itself.

The fuzzer is trusted infrastructure — when it reports a divergence we
rewrite engine code, so its own pieces (generator determinism, the two
SQL renderers, oracle comparison, the shrinker, campaign plumbing, CLI)
need direct coverage beyond "a campaign came back clean".
"""

from __future__ import annotations

import io
import json
import random
import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    DatabaseSpec,
    FuzzConfig,
    GrammarConfig,
    QueryIR,
    TableSpec,
    random_database,
    random_query,
    render_repro_sql,
    render_sqlite_sql,
    replay_case,
    run_differential,
    run_fuzz,
    shrink_case,
    sqlite_oracle_rows,
)
from repro.fuzz.oracle import normalize_rows, normalize_value
from repro.fuzz.queries import (
    AndP,
    Cmp,
    ColRef,
    Lit,
    QuantCmp,
    Sub,
    predicate_size,
)
from repro.fuzz.runner import (
    Counterexample,
    generate_case,
    load_corpus,
    save_counterexample,
)
from repro.storage import DataType


def tiny_db() -> DatabaseSpec:
    integer, string = DataType.INTEGER, DataType.STRING
    return DatabaseSpec({
        "B": TableSpec("B", (("k", integer), ("x", integer), ("s", string)),
                       [(1, 5, "a"), (2, None, "b"), (1, 0, None)]),
        "R": TableSpec("R", (("k", integer), ("y", integer), ("s", string)),
                       [(1, 3, "a"), (2, None, "b")]),
        "S": TableSpec("S", (("k", integer), ("z", integer)), []),
    })


def exists_query() -> QueryIR:
    from repro.fuzz.queries import ExistsP

    return QueryIR("B", "b", ("k", "x"), ExistsP(
        Sub("R", "r", where=Cmp("=", ColRef("r", "k"), ColRef("b", "k"))),
    ))


class TestGeneratorDeterminism:
    def test_same_seed_same_case(self):
        config = FuzzConfig(seed=99, iterations=1)
        db_a, ir_a = generate_case(config, 17)
        db_b, ir_b = generate_case(config, 17)
        assert db_a.to_json() == db_b.to_json()
        assert ir_a == ir_b
        assert render_repro_sql(ir_a) == render_repro_sql(ir_b)

    def test_different_iterations_differ(self):
        config = FuzzConfig(seed=99, iterations=1)
        cases = {render_repro_sql(generate_case(config, i)[1])
                 for i in range(20)}
        assert len(cases) > 1

    def test_all_table_one_forms_appear(self):
        # Across a modest sample the grammar must exercise every
        # Table-1 subquery form at least once.
        rng = random.Random(3)
        seen = set()
        for _ in range(300):
            sql = render_repro_sql(random_query(rng, GrammarConfig()))
            if " IN (" in sql:
                seen.add("in")
            if "NOT IN (" in sql:
                seen.add("not_in")
            if "EXISTS (" in sql:
                seen.add("exists")
            if "NOT EXISTS (" in sql:
                seen.add("not_exists")
            if " SOME (" in sql:
                seen.add("some")
            if " ALL (" in sql:
                seen.add("all")
            for fn in ("count(", "sum(", "avg(", "min(", "max("):
                if fn in sql:
                    seen.add("agg")
        assert seen == {"in", "not_in", "exists", "not_exists", "some",
                        "all", "agg"}

    def test_queries_parse_in_both_dialects(self):
        rng = random.Random(5)
        dbspec = tiny_db()
        from repro.engine.database import Database

        database = Database()
        for name, spec in dbspec.tables.items():
            database.create_table(name, list(spec.columns), spec.rows)
        connection = sqlite3.connect(":memory:")
        dbspec.to_sqlite(connection)
        try:
            for _ in range(50):
                ir = random_query(rng, GrammarConfig())
                database.sql(render_repro_sql(ir))  # must bind
                connection.execute(render_sqlite_sql(ir))  # must compile
        finally:
            connection.close()


class TestRenderers:
    def test_repro_keeps_native_quantifier(self):
        ir = QueryIR("B", "b", ("k",), QuantCmp(
            ">", "all", ColRef("b", "x"),
            Sub("R", "r", item="y"),
        ))
        assert render_repro_sql(ir) == (
            "SELECT b.k FROM B b "
            "WHERE (b.x > ALL (SELECT r.y FROM R r))"
        )

    def test_sqlite_encodes_quantifier_as_case(self):
        ir = QueryIR("B", "b", ("k",), QuantCmp(
            ">", "all", ColRef("b", "x"),
            Sub("R", "r", item="y"),
        ))
        sql = render_sqlite_sql(ir)
        assert "ALL" not in sql
        assert "CASE WHEN EXISTS" in sql
        assert "IS NULL" in sql

    def test_sqlite_quantifier_encoding_is_three_valued(self):
        # The CASE encoding must reproduce the full truth table on the
        # edge cases: empty set (ALL=TRUE, SOME=FALSE) and NULL-bearing
        # sets (UNKNOWN unless decided).
        connection = sqlite3.connect(":memory:")
        try:
            connection.execute("CREATE TABLE R (y INTEGER)")

            def value(quantifier):
                ir = QueryIR("B", "b", ("k",), QuantCmp(
                    ">=", quantifier, ColRef("b", "x"),
                    Sub("R", "r", item="y"),
                ))
                predicate = render_sqlite_sql(ir).split("WHERE ", 1)[1]
                row = connection.execute(
                    f"SELECT {predicate} FROM (SELECT 1 k, 5 x) b"
                ).fetchone()
                return row[0]

            assert value("all") == 1 and value("some") == 0  # empty set
            connection.execute("INSERT INTO R VALUES (3), (NULL)")
            assert value("all") is None  # no decider, NULL present
            assert value("some") == 1    # 5 >= 3 decides
            connection.execute("INSERT INTO R VALUES (9)")
            assert value("all") == 0     # 5 >= 9 is FALSE: decided
        finally:
            connection.close()

    def test_string_literals_escaped(self):
        ir = QueryIR("B", "b", ("k",),
                     Cmp("=", ColRef("b", "s"), Lit("o'clock")))
        assert "'o''clock'" in render_repro_sql(ir)


class TestOracle:
    def test_normalize_collapses_representations(self):
        assert normalize_value(True) == 1
        assert normalize_value(2.0) == 2
        assert normalize_value(2.0000000000001) == 2
        assert normalize_value(None) is None
        assert normalize_rows([(1, 2.0)]) == normalize_rows([(1.0, 2)])

    def test_sqlite_oracle_runs(self):
        rows = sqlite_oracle_rows(tiny_db(), "SELECT b.k FROM B b")
        assert sum(rows.values()) == 3

    def test_clean_case_has_no_divergence(self):
        ir = exists_query()
        outcome = run_differential(
            tiny_db(), render_repro_sql(ir), render_sqlite_sql(ir))
        assert outcome.ok
        assert outcome.engines_run > 0

    def test_disagreement_is_reported_per_engine(self):
        # Feed the oracle a *different* SQLite query: every engine must
        # now diverge, proving the comparison actually bites.
        ir = exists_query()
        outcome = run_differential(
            tiny_db(), render_repro_sql(ir),
            "SELECT b.k, b.x FROM B b WHERE 0")
        assert not outcome.ok
        assert {d.kind for d in outcome.divergences} == {"mismatch"}
        assert len(outcome.divergences) == outcome.engines_run

    def test_divergence_json_is_self_contained(self):
        ir = exists_query()
        outcome = run_differential(
            tiny_db(), render_repro_sql(ir),
            "SELECT b.k, b.x FROM B b WHERE 0")
        payload = outcome.divergences[0].to_json()
        assert payload["kind"] == "mismatch"
        assert payload["expected"] == []
        assert payload["actual"]  # the engines returned rows


class TestShrinker:
    def test_shrinks_rows_and_predicate(self):
        dbspec = tiny_db()
        ir = QueryIR("B", "b", ("k",), AndP(
            QuantCmp("<", "all", ColRef("b", "x"), Sub("R", "r", item="y")),
            Cmp(">", ColRef("b", "x"), Lit(6)),
        ))

        def still_fails(candidate_db, candidate_ir):
            # Synthetic oracle: "fails" while any ALL quantifier remains
            # and B still has rows.
            return ("ALL" in render_repro_sql(candidate_ir)
                    and len(candidate_db.tables["B"].rows) > 0)

        shrunk_db, shrunk_ir = shrink_case(dbspec, ir, still_fails)
        assert len(shrunk_db.tables["B"].rows) == 1
        assert len(shrunk_db.tables["R"].rows) == 0
        assert predicate_size(shrunk_ir.where) < predicate_size(ir.where)
        assert "ALL" in render_repro_sql(shrunk_ir)

    def test_literals_pulled_toward_zero(self):
        dbspec = tiny_db()
        ir = QueryIR("B", "b", ("k",),
                     Cmp(">", ColRef("b", "x"), Lit(6)))
        shrunk_db, shrunk_ir = shrink_case(
            dbspec, ir, lambda db, q: True)
        assert shrunk_ir.where.right == Lit(0)

    def test_crashing_candidate_is_skipped(self):
        dbspec = tiny_db()
        ir = QueryIR("B", "b", ("k",),
                     Cmp(">", ColRef("b", "x"), Lit(1)))
        calls = {"n": 0}

        def flaky(candidate_db, candidate_ir):
            calls["n"] += 1
            if calls["n"] % 2:
                raise RuntimeError("harness crash")
            return True

        shrunk_db, shrunk_ir = shrink_case(dbspec, ir, flaky)
        # Must terminate and still make some progress despite crashes.
        assert shrunk_db.total_rows() <= dbspec.total_rows()

    def test_check_budget_respected(self):
        dbspec = tiny_db()
        ir = exists_query()
        calls = {"n": 0}

        def count_and_fail(candidate_db, candidate_ir):
            calls["n"] += 1
            return True

        shrink_case(dbspec, ir, count_and_fail, max_checks=5)
        assert calls["n"] <= 5


class TestRunner:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FuzzConfig(iterations=-1)
        with pytest.raises(ConfigurationError):
            FuzzConfig(engines=("naive", "warp_drive"))

    def test_small_campaign_is_clean(self):
        report = run_fuzz(FuzzConfig(seed=11, iterations=8))
        assert report.ok
        assert report.iterations_run == 8
        assert report.engines_run > 0
        assert "OK" in report.summary()

    def test_database_spec_json_roundtrip(self):
        dbspec = tiny_db()
        assert DatabaseSpec.from_json(dbspec.to_json()).to_json() \
            == dbspec.to_json()

    def test_counterexample_save_load_replay(self, tmp_path):
        ir = exists_query()
        dbspec = tiny_db()
        case = Counterexample(
            seed=1, iteration=2,
            sql=render_repro_sql(ir),
            sqlite_sql=render_sqlite_sql(ir),
            dbspec=dbspec,
            outcome=run_differential(
                dbspec, render_repro_sql(ir), render_sqlite_sql(ir)),
        )
        path = save_counterexample(tmp_path, case)
        assert path.name == "seed1_iter2.json"
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        outcome = replay_case(loaded[0][1])
        assert outcome.ok

    def test_random_database_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            random_database(random.Random(0), max_rows=-1)


class TestFuzzCli:
    def run_cli(self, argv):
        from repro.cli import main

        buffer = io.StringIO()
        code = main(argv, out=buffer)
        return code, buffer.getvalue()

    def test_campaign_ok(self, tmp_path):
        code, output = self.run_cli([
            "fuzz", "--seed", "3", "--iterations", "5", "--quiet",
            "--out", str(tmp_path / "failures"),
        ])
        assert code == 0
        assert "OK" in output
        assert not (tmp_path / "failures").exists()  # nothing written

    def test_corpus_replay_ok(self, tmp_path):
        ir = exists_query()
        dbspec = tiny_db()
        case = Counterexample(
            seed=0, iteration=0,
            sql=render_repro_sql(ir),
            sqlite_sql=render_sqlite_sql(ir),
            dbspec=dbspec,
            outcome=run_differential(
                dbspec, render_repro_sql(ir), render_sqlite_sql(ir)),
        )
        save_counterexample(tmp_path, case)
        code, output = self.run_cli(["fuzz", "--corpus", str(tmp_path)])
        assert code == 0
        assert "OK" in output

    def test_corpus_replay_flags_divergence(self, tmp_path):
        data = {
            "description": "deliberately wrong oracle query",
            "sql": "SELECT b.k, b.x FROM B b",
            "sqlite_sql": "SELECT b.k, b.x FROM B b WHERE 0",
            "tables": tiny_db().to_json(),
            "divergences": [],
        }
        (tmp_path / "bad.json").write_text(json.dumps(data))
        code, output = self.run_cli(["fuzz", "--corpus", str(tmp_path)])
        assert code == 1
        assert "DIVERGED" in output

    def test_missing_corpus_dir(self, tmp_path):
        code, _ = self.run_cli(
            ["fuzz", "--corpus", str(tmp_path / "nope")])
        assert code == 2
