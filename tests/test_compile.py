"""Unit tests for repro.algebra.compile (whole-expression codegen).

Every compiled form must be indistinguishable from the interpreter:
``compile_row`` from ``Expression.bind``, the batch forms from mapping
the bound evaluator over the indices.  The tests therefore compare the
two implementations on the same inputs, including the awkward corners —
3VL with NULLs, ``/ 0``, mixed-type comparison errors, short-circuit
evaluation order.
"""

import itertools

import pytest

from repro.algebra.compile import (
    compile_batch_keys,
    compile_batch_values,
    compile_detail_filter,
    compile_pair_filter,
    compile_pair_row,
    compile_row,
)
from repro.algebra.expressions import (
    Arithmetic,
    Coalesce,
    Comparison,
    Expression,
    IsNull,
    col,
    lit,
)
from repro.algebra.truth import Truth
from repro.errors import ExpressionError
from repro.storage.columnar import ColumnarRelation
from repro.storage.relation import Relation
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

DETAIL = Schema([
    Field("k", DataType.INTEGER, "r"),
    Field("v", DataType.INTEGER, "r"),
    Field("s", DataType.STRING, "r"),
])

BASE = Schema([
    Field("k", DataType.INTEGER, "b"),
    Field("x", DataType.INTEGER, "b"),
])

ROWS = [
    (1, 10, "a"),
    (2, None, "b"),
    (None, 30, None),
    (1, -5, "a"),
    (3, 0, "c"),
]


def cmp(op, left, right):
    return Comparison(op, left, right)


def columns():
    return ColumnarRelation.from_relation(
        Relation(DETAIL, ROWS, validate=False)
    ).value_columns()


def agree(expr, rows=ROWS, schema=DETAIL):
    """Assert compiled row form == bound form on every row."""
    compiled = compile_row(expr, schema)
    bound = expr.bind(schema)
    for row in rows:
        assert compiled(row) == bound(row), (expr, row)


class TestRowForm:
    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_comparisons_with_nulls(self, op):
        agree(cmp(op, col("r.k"), lit(1)))
        agree(cmp(op, col("r.k"), col("r.v")))
        agree(cmp(op, col("r.k"), lit(None)))

    def test_string_comparison(self):
        agree(cmp("=", col("r.s"), lit("a")))

    def test_and_or_not_3vl(self):
        p = cmp(">", col("r.k"), lit(1))
        q = cmp("<", col("r.v"), lit(20))
        agree(p & q)
        agree(p | q)
        agree(~p)
        agree(~(p & ~q) | (q & p))

    def test_truth_table_exhaustive(self):
        # All 9 AND/OR combinations over {TRUE, FALSE, UNKNOWN}.
        schema = Schema([Field("a", DataType.INTEGER, "t"),
                         Field("b", DataType.INTEGER, "t")])
        p = cmp("=", col("t.a"), lit(1))
        q = cmp("=", col("t.b"), lit(1))
        rows = [(a, b) for a in (1, 0, None) for b in (1, 0, None)]
        agree(p & q, rows, schema)
        agree(p | q, rows, schema)

    def test_arithmetic_null_propagation(self):
        agree(Arithmetic("+", col("r.k"), col("r.v")))
        agree(Arithmetic("*", col("r.v"), lit(3)))

    def test_division_by_zero_is_null(self):
        expr = Arithmetic("/", col("r.k"), col("r.v"))
        compiled = compile_row(expr, DETAIL)
        assert compiled((3, 0, "c")) is None
        agree(expr)

    def test_is_null_and_coalesce(self):
        agree(IsNull(col("r.v")))
        agree(IsNull(col("r.v"), negated=True))
        agree(Coalesce(col("r.v"), lit(0)))
        agree(cmp(">", Coalesce(col("r.v"), col("r.k")), lit(0)))

    def test_predicate_returns_truth_objects(self):
        compiled = compile_row(cmp("=", col("r.k"), lit(1)), DETAIL)
        assert compiled(ROWS[0]) is Truth.TRUE
        assert compiled(ROWS[2]) is Truth.UNKNOWN
        assert compiled(ROWS[4]) is Truth.FALSE

    def test_value_form_returns_scalars(self):
        compiled = compile_row(Arithmetic("+", col("r.v"), lit(1)), DETAIL)
        assert compiled(ROWS[0]) == 11
        assert compiled(ROWS[1]) is None

    def test_mixed_type_comparison_raises_like_interpreter(self):
        expr = cmp("<", col("r.s"), col("r.k"))
        compiled = compile_row(expr, DETAIL)
        bound = expr.bind(DETAIL)
        with pytest.raises(ExpressionError) as compiled_error:
            compiled((1, 10, "a"))
        with pytest.raises(ExpressionError) as bound_error:
            bound((1, 10, "a"))
        assert str(compiled_error.value) == str(bound_error.value)

    def test_short_circuit_skips_right_operand(self):
        # FALSE AND <error> must not raise — exactly like And.bind.
        erroring = cmp("<", col("r.s"), col("r.k"))
        guard = cmp(">", col("r.k"), lit(100))
        compiled = compile_row(guard & erroring, DETAIL)
        bound = (guard & erroring).bind(DETAIL)
        assert compiled((1, 10, "a")) == bound((1, 10, "a")) == Truth.FALSE

    def test_unknown_node_falls_back_to_bind(self):
        class Opaque(Expression):
            is_predicate = False

            def _bind(self, schema):
                return lambda row: 42

            def references(self):
                return set()

        compiled = compile_row(Opaque(), DETAIL)
        assert compiled(ROWS[0]) == 42

    def test_pair_row_over_concatenated_schema(self):
        expr = cmp("=", col("b.k"), col("r.k"))
        compiled = compile_pair_row(expr, BASE, DETAIL)
        bound = expr.bind(BASE.concat(DETAIL))
        for base_row in [(1, 0), (None, 1)]:
            for row in ROWS:
                assert compiled(base_row + row) == bound(base_row + row)


class TestBatchForms:
    def test_detail_filter_matches_bound_truncation(self):
        expr = (cmp("=", col("r.k"), lit(1))
                & cmp(">", col("r.v"), lit(0)))
        batch = compile_detail_filter(expr, DETAIL)
        bound = expr.bind(DETAIL)
        indices = list(range(len(ROWS)))
        expected = [i for i in indices if bound(ROWS[i]).is_true]
        assert batch(columns(), indices) == expected

    def test_detail_filter_respects_candidate_subset(self):
        expr = cmp(">=", col("r.v"), lit(0))
        batch = compile_detail_filter(expr, DETAIL)
        assert batch(columns(), [4, 0]) == [4, 0]

    def test_pair_filter_matches_bound(self):
        expr = (cmp("=", col("b.k"), col("r.k"))
                & cmp(">", col("r.v"), col("b.x")))
        batch = compile_pair_filter(expr, BASE, DETAIL)
        bound = expr.bind(BASE.concat(DETAIL))
        indices = list(range(len(ROWS)))
        for base_row in [(1, 0), (2, -100), (None, 5)]:
            expected = [i for i in indices
                        if bound(base_row + ROWS[i]).is_true]
            assert batch(base_row, columns(), indices) == expected

    def test_batch_keys_one_tuple_per_index(self):
        batch = compile_batch_keys([col("r.k"), col("r.s")], DETAIL)
        assert batch(columns(), [0, 2, 3]) == [
            (1, "a"), (None, None), (1, "a"),
        ]

    def test_batch_values_one_scalar_per_index(self):
        batch = compile_batch_values(
            Arithmetic("+", col("r.v"), lit(1)), DETAIL
        )
        assert batch(columns(), [0, 1, 4]) == [11, None, 1]

    def test_batch_fallback_nodes_still_work(self):
        class Opaque(Expression):
            is_predicate = True

            def _bind(self, schema):
                key = schema.index_of("r.k")
                return lambda row: (Truth.TRUE if row[key] == 1
                                    else Truth.FALSE)

            def references(self):
                return set()

        batch = compile_detail_filter(Opaque(), DETAIL)
        assert batch(columns(), list(range(len(ROWS)))) == [0, 3]


class TestExhaustiveAgainstInterpreter:
    def test_predicate_grid(self):
        comparisons = [
            cmp("=", col("r.k"), lit(1)),
            cmp(">", col("r.v"), lit(0)),
            IsNull(col("r.s")),
            cmp("=", col("r.s"), lit("a")),
        ]
        for p, q in itertools.product(comparisons, repeat=2):
            agree(p & q)
            agree(p | ~q)
            agree(~(p | q))
