"""Round-trip tests: Table 1 plans through the printer and the SQL
reduction, with the emitted SQL executed on SQLite and bag-compared
against this engine's own answer."""

import sqlite3

import pytest

from repro.algebra.printer import explain
from repro.bench.workloads import build_table1_catalog, table1_queries
from repro.engine import execute
from repro.fuzz.oracle import normalize_rows
from repro.gmdj.to_sql import plan_to_sql
from repro.unnesting import subquery_to_gmdj

FORMS = sorted(table1_queries())


@pytest.fixture(scope="module")
def catalog():
    return build_table1_catalog(outer=40, inner=200)


@pytest.fixture(scope="module")
def sqlite_db(catalog):
    connection = sqlite3.connect(":memory:")
    for name in ("B", "R"):
        relation = catalog.table(name)
        columns = [field.name for field in relation.schema.fields]
        connection.execute(
            f"CREATE TABLE {name} ({', '.join(columns)})"
        )
        placeholders = ", ".join("?" for _ in columns)
        connection.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})",
            [tuple(row) for row in relation.rows],
        )
    yield connection
    connection.close()


class TestPrinter:
    @pytest.mark.parametrize("form", FORMS)
    def test_translated_plan_renders(self, catalog, form):
        plan = subquery_to_gmdj(table1_queries()[form], catalog,
                                optimize=True)
        text = explain(plan)
        assert "GMDJ" in text
        assert "Scan B" in text and "Scan R" in text
        # One line per node, indentation shows nesting.
        assert any(line.startswith("  ") for line in text.splitlines())

    def test_untranslated_query_shows_nested_select(self, catalog):
        text = explain(table1_queries()["exists"])
        assert text.startswith("NestedSelect")

    def test_round_trip_is_stable(self, catalog):
        plan = subquery_to_gmdj(table1_queries()["exists"], catalog,
                                optimize=True)
        assert explain(plan) == explain(plan)


class TestSqlReductionRoundTrip:
    @pytest.mark.parametrize("form", FORMS)
    def test_sqlite_agrees_with_engine(self, catalog, sqlite_db, form):
        query = table1_queries()[form]
        plan = subquery_to_gmdj(query, catalog, optimize=True)
        sql = plan_to_sql(plan, catalog)
        oracle = normalize_rows(sqlite_db.execute(sql).fetchall())
        ours = normalize_rows(
            execute(query, catalog, "gmdj_optimized").rows
        )
        assert oracle == ours

    @pytest.mark.parametrize("form", FORMS)
    def test_emitted_sql_shape(self, catalog, form):
        plan = subquery_to_gmdj(table1_queries()[form], catalog,
                                optimize=True)
        sql = plan_to_sql(plan, catalog)
        assert "LEFT OUTER JOIN" in sql
        assert "CASE WHEN" in sql
        assert "GROUP BY" in sql
