"""Tests for the APPLY operator and its GMDJ-based correlation removal."""

import pytest

from repro.algebra.aggregates import agg
from repro.algebra.apply_op import Apply, apply_to_gmdj
from repro.algebra.expressions import col, lit
from repro.algebra.nested import Exists, Subquery
from repro.algebra.operators import ScanTable
from repro.errors import CardinalityError, PlanError, TranslationError
from repro.storage import Catalog, DataType, Relation


@pytest.fixture
def catalog(kv_catalog) -> Catalog:
    return kv_catalog


def sub(item=None, aggregate=None, predicate=None):
    return Subquery(ScanTable("R", "r"),
                    predicate if predicate is not None
                    else col("r.K") == col("b.K"),
                    item=item, aggregate=aggregate)


class TestApplySemantics:
    def test_semi(self, catalog):
        result = Apply(ScanTable("B", "b"), sub(), "semi").evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [0, 1, 2, 4]

    def test_anti(self, catalog):
        result = Apply(ScanTable("B", "b"), sub(), "anti").evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [3, 5]

    def test_aggregate_extends_schema(self, catalog):
        apply = Apply(ScanTable("B", "b"),
                      sub(aggregate=agg("sum", col("r.Y"), "s")),
                      "aggregate", output_name="total")
        result = apply.evaluate(catalog)
        assert result.schema.names == ("b.K", "b.X", "total")
        values = {row[0]: row[2] for row in result.rows}
        assert values[0] == 11 and values[3] is None

    def test_scalar(self, catalog):
        unique = sub(item=col("r.Y"),
                     predicate=(col("r.K") == col("b.K"))
                     & (col("r.Y") == lit(4)))
        result = Apply(ScanTable("B", "b"), unique, "scalar",
                       output_name="v").evaluate(catalog)
        values = {row[0]: row[2] for row in result.rows}
        assert values[1] == 4 and values[0] is None

    def test_scalar_cardinality_error(self, catalog):
        apply = Apply(ScanTable("B", "b"), sub(item=col("r.Y")), "scalar")
        with pytest.raises(CardinalityError):
            apply.evaluate(catalog)

    def test_bad_mode(self):
        with pytest.raises(PlanError):
            Apply(ScanTable("B", "b"), sub(), "cross")

    def test_scalar_needs_item(self):
        with pytest.raises(PlanError):
            Apply(ScanTable("B", "b"), sub(), "scalar")

    def test_aggregate_needs_aggregate(self):
        with pytest.raises(PlanError):
            Apply(ScanTable("B", "b"), sub(item=col("r.Y")), "aggregate")

    def test_output_preserved_for_duplicates(self):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(1, 1), (1, 1)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], [(1, 2)],
        ))
        result = Apply(ScanTable("B", "b"), sub(), "semi").evaluate(catalog)
        assert len(result) == 2


class TestApplyToGmdj:
    @pytest.mark.parametrize("mode", ["semi", "anti"])
    def test_semi_anti_rewrite_equivalent(self, catalog, mode):
        apply = Apply(ScanTable("B", "b"), sub(), mode)
        rewritten = apply_to_gmdj(apply, catalog)
        assert apply.evaluate(catalog).bag_equal(rewritten.evaluate(catalog))

    def test_aggregate_rewrite_equivalent(self, catalog):
        apply = Apply(ScanTable("B", "b"),
                      sub(aggregate=agg("avg", col("r.Y"), "a")),
                      "aggregate", output_name="avgy")
        rewritten = apply_to_gmdj(apply, catalog)
        assert apply.evaluate(catalog).bag_equal(rewritten.evaluate(catalog))
        assert rewritten.schema(catalog).names == ("b.K", "b.X", "avgy")

    def test_scalar_rewrite_rejected(self, catalog):
        apply = Apply(ScanTable("B", "b"), sub(item=col("r.Y")), "scalar")
        with pytest.raises(TranslationError):
            apply_to_gmdj(apply, catalog)

    def test_nested_predicate_rejected(self, catalog):
        nested = Subquery(
            ScanTable("R", "r1"),
            (col("r1.K") == col("b.K"))
            & Exists(Subquery(ScanTable("R", "r2"),
                              col("r2.K") == col("r1.K"))),
        )
        apply = Apply(ScanTable("B", "b"), nested, "semi")
        with pytest.raises(TranslationError):
            apply_to_gmdj(apply, catalog)

    def test_rewrite_does_fewer_scans(self, catalog):
        from repro.storage import collect

        apply = Apply(ScanTable("B", "b"), sub(), "semi")
        rewritten = apply_to_gmdj(apply, catalog)
        with collect() as loop_stats:
            apply.evaluate(catalog)
        with collect() as gmdj_stats:
            rewritten.evaluate(catalog)
        assert gmdj_stats.relation_scans < loop_stats.relation_scans
