"""Soundness of capability certificates against ground truth.

Two layers: a hypothesis property checks certified nullability claims
against both the repro engine and the SQLite oracle on NULL-heavy
random data, and a seeded-bug test breaks the COALESCE lattice
transfer to prove the runtime differential cross-check actually
catches an unsound certificate (rather than vacuously passing).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, DataType
from repro.algebra.expressions import Coalesce, col
from repro.algebra.operators import Project, ScanTable
from repro.errors import CertificateViolation
from repro.fuzz.datagen import DatabaseSpec, TableSpec
from repro.fuzz.oracle import capability_violations, sqlite_oracle_rows
from repro.lint.absint import (
    NEVER,
    certify_capabilities,
)
from repro.obs.invariants import check_capabilities
from repro.storage import Catalog, Relation
from repro.unnesting.translate import subquery_to_gmdj

nullable_int = st.one_of(st.none(), st.integers(0, 4))

QUERIES = [
    "SELECT b.K FROM B b WHERE EXISTS "
    "(SELECT * FROM R r WHERE r.K = b.K)",
    "SELECT b.K, b.X FROM B b WHERE NOT EXISTS "
    "(SELECT * FROM R r WHERE r.K = b.K AND r.V > 2)",
    "SELECT b.K FROM B b WHERE 1 <= "
    "(SELECT COUNT(*) FROM R r WHERE r.K = b.K)",
]


def build_database(b_rows, r_rows):
    db = Database()
    db.create_table(
        "B", [("K", DataType.INTEGER), ("X", DataType.INTEGER)], b_rows
    )
    db.create_table(
        "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)], r_rows
    )
    spec = DatabaseSpec({
        "B": TableSpec(
            "B", (("K", DataType.INTEGER), ("X", DataType.INTEGER)), b_rows
        ),
        "R": TableSpec(
            "R", (("K", DataType.INTEGER), ("V", DataType.INTEGER)), r_rows
        ),
    })
    return db, spec


class TestCertificateSoundnessProperty:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        b_rows=st.lists(st.tuples(nullable_int, nullable_int), max_size=8),
        r_rows=st.lists(st.tuples(nullable_int, nullable_int), max_size=12),
    )
    def test_certified_claims_hold_on_both_engines(self, b_rows, r_rows):
        db, spec = build_database(b_rows, r_rows)
        for sql in QUERIES:
            # The engine-side differential cross-check: both kernels,
            # both translations, rows checked against the certificate.
            assert capability_violations(db, sql) == [], sql

            # Oracle-side: a NEVER claim must also hold on SQLite's
            # answer to the same (dialect-shared) query.
            plan = subquery_to_gmdj(db.sql(sql), db.catalog, optimize=True)
            certificate = certify_capabilities(plan, db.catalog)
            oracle_rows = list(sqlite_oracle_rows(spec, sql).elements())
            report = check_capabilities(oracle_rows, certificate)
            assert not report.violations, (sql, report.violations)


def coalesce_catalog():
    detail = Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(1, 10), (2, None), (3, 30)],
        name="R", qualifier="r",
    )
    catalog = Catalog()
    catalog.create_table("R", detail)
    return catalog


def coalesce_plan():
    # COALESCE(V, V) is NULL exactly when V is — with the broken
    # transfer below it gets certified NEVER-null anyway.
    return Project(
        ScanTable("R", "r"),
        [(Coalesce(col("r.V"), col("r.V")), "padded")],
    )


class TestSeededCoalesceBug:
    def test_sound_transfer_makes_no_false_claim(self):
        plan, catalog = coalesce_plan(), coalesce_catalog()
        certificate = certify_capabilities(plan, catalog)
        assert "padded" not in certificate.never_null_columns
        rows = plan.evaluate(catalog).rows
        report = check_capabilities(rows, certificate)
        assert not report.violations

    def test_broken_transfer_is_caught_by_runtime_check(self, monkeypatch):
        import repro.lint.absint as absint

        monkeypatch.setattr(
            absint, "_coalesce_transfer", lambda first, second: NEVER
        )
        plan, catalog = coalesce_plan(), coalesce_catalog()
        certificate = certify_capabilities(plan, catalog)
        # The broken lattice now makes an unsound claim...
        assert "padded" in certificate.never_null_columns
        rows = plan.evaluate(catalog).rows
        # ...and the differential layer refuses it instead of letting
        # downstream optimizations trust it.
        report = check_capabilities(rows, certificate)
        assert report.violations
        assert any("NEVER-null" in violation
                   for violation in report.violations)
        with pytest.raises(CertificateViolation):
            check_capabilities(rows, certificate, strict=True)
