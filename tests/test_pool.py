"""Tests for the worker-pool scheduler behind partitioned GMDJ runs.

Covers executor selection, multi-worker equivalence on both thread and
process pools, and the observability contract: worker IOStats merge into
the coordinator's counters and worker span subtrees graft back into the
parent trace so the invariant checker sees the whole evaluation.
"""

import pytest

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import col
from repro.algebra.operators import ScanTable
from repro.errors import ConfigurationError
from repro.gmdj import evaluate_gmdj_partitioned, md
from repro.gmdj.pool import (
    PROCESS_MIN_DETAIL_ROWS,
    choose_executor,
    map_partitions,
    resolve_workers,
)
from repro.obs.invariants import check_trace
from repro.obs.tracer import Tracer, tracing
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER)], [(i,) for i in range(10)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 10, i if i % 6 else None) for i in range(80)],
    ))
    return cat


def full_gmdj():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt"), agg("sum", col("r.V"), "s"),
                agg("avg", col("r.V"), "a"), agg("min", col("r.V"), "lo"),
                agg("max", col("r.V"), "hi")]],
              [col("b.K") == col("r.K")])


class TestChooseExecutor:
    def test_explicit_kind_wins(self):
        assert choose_executor("thread", 10**9, object()) == "thread"
        assert choose_executor("process", 1, None) == "process"

    def test_auto_small_input_prefers_threads(self):
        assert choose_executor("auto", 100, None) == "thread"

    def test_auto_large_picklable_prefers_processes(self):
        assert choose_executor(
            "auto", PROCESS_MIN_DETAIL_ROWS, {"plan": 1}
        ) == "process"

    def test_auto_unpicklable_degrades_to_threads(self):
        assert choose_executor(
            "auto", PROCESS_MIN_DETAIL_ROWS, lambda: None
        ) == "thread"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert choose_executor(None, 10**9, None) == "thread"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_executor("gpu", 1, None)

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)
        base = Relation.from_columns([("K", DataType.INTEGER)], [])
        with pytest.raises(ConfigurationError):
            map_partitions(base, [], None, base.schema, workers=0)


class TestMultiWorkerEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_thread_pool_matches_sequential(self, catalog, workers):
        sequential = full_gmdj().evaluate(catalog)
        pooled = evaluate_gmdj_partitioned(
            full_gmdj(), catalog, partitions=4, workers=workers,
            executor="thread",
        )
        assert sequential.bag_equal(pooled)

    def test_process_pool_matches_sequential(self, catalog):
        sequential = full_gmdj().evaluate(catalog)
        pooled = evaluate_gmdj_partitioned(
            full_gmdj(), catalog, partitions=4, workers=2,
            executor="process",
        )
        assert sequential.bag_equal(pooled)

    def test_more_workers_than_partitions(self, catalog):
        sequential = full_gmdj().evaluate(catalog)
        pooled = evaluate_gmdj_partitioned(
            full_gmdj(), catalog, partitions=2, workers=8,
            executor="thread",
        )
        assert sequential.bag_equal(pooled)


class TestStatsPropagation:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_worker_counters_merge_into_coordinator(self, catalog, executor):
        with collect() as sequential_stats:
            full_gmdj().evaluate(catalog)
        with collect() as pooled_stats:
            evaluate_gmdj_partitioned(
                full_gmdj(), catalog, partitions=3, workers=2,
                executor=executor,
            )
        # Parallelism must not lose (or invent) work: the fragments
        # tile the detail, so scan totals match the single-scan run.
        assert (pooled_stats.tuples_scanned
                == sequential_stats.tuples_scanned)
        assert pooled_stats.aggregate_updates > 0


class TestTraceGrafting:
    def run_traced(self, catalog, **kwargs):
        tracer = Tracer()
        with tracing(tracer):
            evaluate_gmdj_partitioned(full_gmdj(), catalog, **kwargs)
        return tracer.trace()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_partition_spans_reattach(self, catalog, executor):
        trace = self.run_traced(catalog, partitions=3, workers=2,
                                executor=executor)
        kinds = [span.kind for span in trace.walk()]
        assert kinds.count("pool") == 1
        assert kinds.count("partition") == 3
        # The grafted subtrees keep their detail scans, so per-fragment
        # work is still attributed.
        assert kinds.count("detail_scan") >= 3

    def test_pool_span_records_executor_and_workers(self, catalog):
        trace = self.run_traced(catalog, partitions=2, workers=2,
                                executor="thread")
        pool_span = next(s for s in trace.walk() if s.kind == "pool")
        assert pool_span.attrs["executor"] == "thread"
        assert pool_span.attrs["workers"] == 2
        assert pool_span.attrs["partitions"] == 2

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_invariants_hold_on_pooled_traces(self, catalog, executor):
        trace = self.run_traced(catalog, partitions=4, workers=2,
                                executor=executor)
        report = check_trace(trace, strict=True)
        assert report.ok
        # Both partitioned checks ran: fragments tile the detail and
        # the merged output respects the |B| bound.
        assert report.checked >= 2

    def test_untraced_pool_leaves_no_spans(self, catalog):
        result = evaluate_gmdj_partitioned(
            full_gmdj(), catalog, partitions=3, workers=2,
            executor="thread",
        )
        assert len(result) == 10


class TestPoolRegistry:
    """Persistent executors for long-lived owners (serve tier, Database)."""

    def test_get_reuses_by_shape(self):
        from repro.gmdj.pool import PoolRegistry

        registry = PoolRegistry()
        try:
            first = registry.get("thread", 2)
            assert registry.get("thread", 2) is first
            assert registry.get("thread", 3) is not first
            assert len(registry) == 2
        finally:
            registry.shutdown()

    def test_shutdown_is_idempotent_and_counts(self):
        from repro.gmdj.pool import PoolRegistry

        registry = PoolRegistry()
        registry.get("thread", 1)
        assert registry.shutdown() == 1
        assert registry.shutdown() == 0
        assert registry.closed

    def test_get_after_shutdown_raises(self):
        from repro.gmdj.pool import PoolRegistry

        registry = PoolRegistry()
        registry.shutdown()
        with pytest.raises(ConfigurationError):
            registry.get("thread", 1)

    def test_rejects_bad_shapes(self):
        from repro.gmdj.pool import PoolRegistry

        registry = PoolRegistry()
        try:
            with pytest.raises(ConfigurationError):
                registry.get("auto", 2)  # must be resolved before get()
            with pytest.raises(ConfigurationError):
                registry.get("thread", 0)
        finally:
            registry.shutdown()

    def test_pooling_context_reuses_executor(self, catalog):
        from repro.gmdj.pool import PoolRegistry, active_registry, pooling

        registry = PoolRegistry()
        try:
            assert active_registry() is None
            with pooling(registry):
                assert active_registry() is registry
                for _ in range(3):
                    result = evaluate_gmdj_partitioned(
                        full_gmdj(), catalog, partitions=2, workers=2,
                        executor="thread",
                    )
                    assert len(result) == 10
                # Three pooled evaluations, one executor: the registry
                # absorbed the per-call pool start-up.
                assert len(registry) == 1
            assert active_registry() is None
        finally:
            registry.shutdown()

    def test_pooled_span_marks_reuse(self, catalog):
        from repro.gmdj.pool import PoolRegistry, pooling

        registry = PoolRegistry()
        try:
            tracer = Tracer()
            with pooling(registry), tracing(tracer):
                evaluate_gmdj_partitioned(
                    full_gmdj(), catalog, partitions=2, workers=2,
                    executor="thread",
                )
            pool_span = next(
                s for s in tracer.trace().walk() if s.kind == "pool")
            assert pool_span.attrs["reused"] is True
        finally:
            registry.shutdown()

    def test_pooled_equals_per_call_results(self, catalog):
        from repro.gmdj.pool import PoolRegistry, pooling

        baseline = evaluate_gmdj_partitioned(
            full_gmdj(), catalog, partitions=3, workers=2, executor="thread",
        )
        registry = PoolRegistry()
        try:
            with pooling(registry):
                pooled = evaluate_gmdj_partitioned(
                    full_gmdj(), catalog, partitions=3, workers=2,
                    executor="thread",
                )
        finally:
            registry.shutdown()
        assert pooled.rows == baseline.rows
