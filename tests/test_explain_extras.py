"""Tests for EXPLAIN rendering of the extension operators and
explain_analyze."""

import pytest
from repro import QueryOptions

from repro.algebra.apply_op import Apply
from repro.algebra.expressions import col
from repro.algebra.nested import Exists, NestedSelect, Subquery
from repro.algebra.operators import (
    Intersect,
    Limit,
    OrderBy,
    ScanTable,
)
from repro.algebra.printer import explain
from repro.engine import Database
from repro.storage import DataType


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table("T", [("k", DataType.INTEGER)], [(1,), (2,)])
    database.create_table("U", [("k", DataType.INTEGER)], [(2,), (3,)])
    return database


class TestPrinterExtras:
    def test_intersect(self):
        text = explain(Intersect(ScanTable("T"), ScanTable("U")))
        assert text.startswith("Intersect ALL")

    def test_order_by(self):
        text = explain(OrderBy(ScanTable("T"), [("T.k", True)]))
        assert "OrderBy [T.k DESC]" in text

    def test_limit_with_offset(self):
        text = explain(Limit(ScanTable("T"), 5, offset=2))
        assert "Limit 5 OFFSET 2" in text

    def test_apply(self):
        node = Apply(
            ScanTable("T", "t"),
            Subquery(ScanTable("U", "u"), col("u.k") == col("t.k")),
            "semi",
        )
        text = explain(node)
        assert text.startswith("Apply semi")
        assert "Scan T -> t" in text

    def test_sql_compound_plan_renders(self, db):
        plan = db.sql("SELECT k FROM T EXCEPT SELECT k FROM U")
        text = explain(plan)
        assert "Difference DISTINCT" in text


class TestExplainAnalyze:
    def test_contains_plan_and_counters(self, db):
        query = NestedSelect(
            ScanTable("T", "t"),
            Exists(Subquery(ScanTable("U", "u"), col("u.k") == col("t.k"))),
        )
        text = db.explain_analyze(query, QueryOptions("gmdj"))
        assert "GMDJ" in text
        assert "rows: 1" in text
        assert "tuples_scanned=" in text

    def test_respects_strategy(self, db):
        query = NestedSelect(
            ScanTable("T", "t"),
            Exists(Subquery(ScanTable("U", "u"), col("u.k") == col("t.k"))),
        )
        text = db.explain_analyze(query, QueryOptions("naive"))
        assert "NestedSelect" in text
