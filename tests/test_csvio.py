"""Unit tests for repro.storage.csvio."""

import pytest

from repro.errors import SchemaError
from repro.storage import DataType, Relation, load_csv, save_csv
from repro.storage.schema import Field, Schema


@pytest.fixture
def relation() -> Relation:
    schema = Schema([
        Field("k", DataType.INTEGER, "T"),
        Field("name", DataType.STRING),
        Field("score", DataType.FLOAT),
        Field("ok", DataType.BOOLEAN),
    ])
    return Relation(schema, [
        (1, "alice", 3.5, True),
        (2, None, None, False),
        (None, "bob", 0.0, None),
    ])


class TestRoundTrip:
    def test_rows_survive(self, relation, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(relation, path)
        loaded = load_csv(path)
        assert loaded.bag_equal(relation)

    def test_schema_survives(self, relation, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(relation, path)
        loaded = load_csv(path)
        assert loaded.schema.names == relation.schema.names
        assert loaded.schema.field_of("T.k").dtype is DataType.INTEGER

    def test_name_defaults_to_stem(self, relation, tmp_path):
        path = tmp_path / "flows.csv"
        save_csv(relation, path)
        assert load_csv(path).name == "flows"

    def test_explicit_name(self, relation, tmp_path):
        path = tmp_path / "x.csv"
        save_csv(relation, path)
        assert load_csv(path, name="custom").name == "custom"


class TestNullHandling:
    def test_nulls_round_trip(self, relation, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(relation, path)
        loaded = load_csv(path)
        assert loaded.rows[1][1] is None
        assert loaded.rows[2][0] is None

    def test_empty_string_becomes_null(self, tmp_path):
        # A deliberate lossy corner: empty strings read back as NULL.
        lossy = Relation.from_columns([("s", DataType.STRING)], [("",)])
        path = tmp_path / "t.csv"
        save_csv(lossy, path)
        loaded = load_csv(path)
        assert loaded.rows[0][0] is None


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("justaname\n1\n")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_unknown_type_in_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x:decimal\n1\n")
        with pytest.raises(SchemaError):
            load_csv(path)
