"""Property-based identity: python batch kernel vs. numpy backend.

The numpy whole-array backend must be invisible everywhere except wall
clock: for any random NULL-heavy database and any Table 1 subquery form,
``evaluate_plan_vectorized(..., backend="numpy")`` must return the
**identical row list** (values, duplicates, and order — not just bag
equality) as ``backend="python"``, with the **identical IOStats
snapshot** (scans, index probes, predicate evaluations, aggregate
updates), and must uphold capability certificates exactly as the python
kernel does.

This is deliberately stronger than the vectorized-vs-row-kernel
property (`test_property_vectorized`): the backend switch is a pure
array-kernel substitution inside one scan algorithm, so even the
per-operator counters must agree.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy", exc_type=ImportError)

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import agg
from repro.algebra.expressions import TRUE, Comparison, Not, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    in_predicate,
    not_in_predicate,
)
from repro.algebra.operators import ScanTable
from repro.gmdj.evaluate import invariant_sharing
from repro.gmdj.modes import evaluate_plan_vectorized
from repro.lint.absint import capability_scope, certify_capabilities
from repro.storage import Catalog, DataType, Relation
from repro.storage.iostats import collect
from repro.unnesting import subquery_to_gmdj

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_int = st.one_of(st.none(), st.integers(min_value=0, max_value=6))
small_str = st.one_of(st.none(), st.sampled_from(["aa", "bb", "cc"]))
small_float = st.one_of(st.none(),
                        st.sampled_from([-1.5, 0.0, -0.0, 2.25, 9.5]))


@st.composite
def databases(draw):
    catalog = Catalog()
    b_rows = draw(st.lists(st.tuples(small_int, small_int, small_str),
                           min_size=0, max_size=8))
    r_rows = draw(st.lists(
        st.tuples(small_int, small_int, small_str, small_float),
        min_size=0, max_size=12))
    catalog.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER),
         ("S", DataType.STRING)], b_rows,
    ))
    catalog.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("Y", DataType.INTEGER),
         ("T", DataType.STRING), ("G", DataType.FLOAT)], r_rows,
    ))
    return catalog


comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
agg_functions = st.sampled_from(["count", "sum", "avg", "min", "max"])


@st.composite
def inner_conditions(draw, alias="r"):
    conjuncts = []
    if draw(st.booleans()):
        conjuncts.append(col(f"{alias}.K") == col("b.K"))
    if draw(st.booleans()):
        # String equi-correlation: dictionary-coded hash keys.
        conjuncts.append(col(f"{alias}.T") == col("b.S"))
    if draw(st.booleans()):
        op = draw(comparison_ops)
        conjuncts.append(Comparison(op, col(f"{alias}.Y"),
                                    lit(draw(st.integers(0, 6)))))
    if draw(st.booleans()):
        # Float residual over a NULL-heavy column.
        conjuncts.append(Comparison(draw(comparison_ops),
                                    col(f"{alias}.G"), lit(1.5)))
    if not conjuncts:
        return TRUE
    predicate = conjuncts[0]
    for extra in conjuncts[1:]:
        predicate = predicate & extra
    return predicate


#: All six Table 1 subquery forms.
FORMS = ("exists", "not_exists", "in", "not_in", "quantified", "agg")

#: Inner item / aggregate argument columns, covering every array dtype.
ITEM_COLUMNS = ("Y", "T", "G")


@st.composite
def subquery_leaves(draw, alias="r"):
    theta = draw(inner_conditions(alias))
    kind = draw(st.sampled_from(FORMS))
    item_column = draw(st.sampled_from(ITEM_COLUMNS))
    item = col(f"{alias}.{item_column}")
    outer = col("b.S") if item_column == "T" else col("b.X")
    subquery = Subquery(ScanTable("R", alias), theta)
    if kind == "exists":
        return Exists(subquery)
    if kind == "not_exists":
        return Exists(subquery, negated=True)
    if kind == "in":
        return in_predicate(
            outer, Subquery(ScanTable("R", alias), theta, item=item))
    if kind == "not_in":
        return not_in_predicate(
            outer, Subquery(ScanTable("R", alias), theta, item=item))
    if kind == "agg":
        function = draw(agg_functions)
        argument = None if function == "count" else item
        outer_side = outer
        if item_column == "T" and function in ("count", "sum", "avg"):
            # These aggregates are numeric regardless of the argument;
            # keep the comparison type-correct.
            argument = None if function == "count" else col(f"{alias}.Y")
            outer_side = col("b.X")
        return ScalarComparison(
            draw(comparison_ops), outer_side,
            Subquery(ScanTable("R", alias), theta,
                     aggregate=agg(function, argument, "v")),
        )
    return QuantifiedComparison(
        draw(comparison_ops), draw(st.sampled_from(["some", "all"])),
        outer, Subquery(ScanTable("R", alias), theta, item=item),
    )


@st.composite
def predicates(draw):
    first = draw(subquery_leaves("r1"))
    shape = draw(st.sampled_from(["single", "and", "or", "not"]))
    if shape == "single":
        return first
    if shape == "not":
        return Not(first)
    second = draw(
        st.one_of(
            subquery_leaves("r2"),
            st.builds(lambda v: col("b.X") > lit(v), st.integers(0, 6)),
        )
    )
    if shape == "and":
        return first & second
    return first | second


def _run_both(plan, catalog, chunk_size=None):
    """Evaluate on both backends under IOStats collection."""
    with collect() as python_stats:
        python_result = evaluate_plan_vectorized(
            plan, catalog, chunk_size, backend="python")
    with collect() as numpy_stats:
        numpy_result = evaluate_plan_vectorized(
            plan, catalog, chunk_size, backend="numpy")
    return python_result, python_stats, numpy_result, numpy_stats


class TestBackendIdentity:
    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           optimize=st.booleans())
    def test_rows_order_and_counters_identical(self, catalog, predicate,
                                               optimize):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog, optimize=optimize)
        python_result, python_stats, numpy_result, numpy_stats = _run_both(
            plan, catalog)
        assert python_result.rows == numpy_result.rows
        assert python_stats.snapshot() == numpy_stats.snapshot()

    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           sharing=st.booleans())
    def test_identity_without_invariant_sharing(self, catalog, predicate,
                                                sharing):
        # Sharing off turns invariant blocks into scan blocks; both
        # backends must flip identically.
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog)
        with invariant_sharing(sharing):
            python_result, python_stats, numpy_result, numpy_stats = \
                _run_both(plan, catalog)
        assert python_result.rows == numpy_result.rows
        assert python_stats.snapshot() == numpy_stats.snapshot()

    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           chunk_size=st.integers(min_value=1, max_value=6))
    def test_identity_at_any_chunk_size(self, catalog, predicate,
                                        chunk_size):
        # chunk_size shapes the *python* kernel's batching; the numpy
        # backend is whole-array regardless, and the results (and the
        # scan-level counters) must not depend on batch boundaries.
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog, optimize=True)
        python_result, python_stats, numpy_result, numpy_stats = _run_both(
            plan, catalog, chunk_size)
        assert python_result.rows == numpy_result.rows
        assert python_stats.snapshot() == numpy_stats.snapshot()

    @SETTINGS
    @given(catalog=databases(), predicate=predicates())
    def test_certificates_hold_on_both_backends(self, catalog, predicate):
        from repro.obs.invariants import check_capabilities

        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog, optimize=True)
        certificate = certify_capabilities(plan, catalog)
        for backend in ("python", "numpy"):
            with capability_scope(certificate):
                result = evaluate_plan_vectorized(
                    plan, catalog, None, backend=backend)
            report = check_capabilities(result.rows, certificate)
            assert not report.violations, (backend, report.violations)
