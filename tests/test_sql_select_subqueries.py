"""Tests for scalar subqueries in the SELECT list (APPLY-based)."""

import pytest
from repro import QueryOptions

from repro.algebra.apply_op import Apply
from repro.algebra.operators import Project
from repro.engine import Database
from repro.errors import BindError
from repro.gmdj import GMDJ
from repro.sql import compile_sql
from repro.storage import DataType


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "customer", [("ck", DataType.INTEGER), ("seg", DataType.STRING)],
        [(1, "a"), (2, "a"), (3, "b")],
    )
    database.create_table(
        "orders", [("ck", DataType.INTEGER), ("price", DataType.INTEGER)],
        [(1, 10), (1, 30), (2, 5), (9, 99)],
    )
    return database


class TestBinding:
    def test_aggregate_select_subquery_binds_to_apply(self, db):
        plan = compile_sql(
            "SELECT c.ck, (SELECT count(*) FROM orders o WHERE o.ck = c.ck) "
            "AS n FROM customer c", db.catalog,
        )
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Apply)
        assert plan.child.mode == "aggregate"

    def test_mixing_with_group_by_rejected(self, db):
        with pytest.raises(BindError):
            compile_sql(
                "SELECT seg, (SELECT count(*) FROM orders o) FROM customer "
                "GROUP BY seg", db.catalog,
            )

    def test_subquery_in_where_arithmetic_rejected(self, db):
        with pytest.raises(BindError):
            compile_sql(
                "SELECT ck FROM customer c WHERE ck > "
                "(SELECT max(price) FROM orders) + 1", db.catalog,
            )


class TestExecution:
    SQL = ("SELECT c.ck, (SELECT count(*) FROM orders o WHERE o.ck = c.ck) "
           "AS n, (SELECT sum(o2.price) FROM orders o2 WHERE o2.ck = c.ck) "
           "AS total FROM customer c")

    def test_values(self, db):
        result = db.execute_sql(self.SQL, QueryOptions("naive"))
        rows = {row[0]: (row[1], row[2]) for row in result.rows}
        assert rows == {1: (2, 40), 2: (1, 5), 3: (0, None)}

    @pytest.mark.parametrize("strategy", ["naive", "native", "gmdj",
                                          "gmdj_optimized", "unnest_join"])
    def test_strategies_agree(self, db, strategy):
        expected = db.execute_sql(self.SQL, QueryOptions("naive"))
        assert expected.bag_equal(db.execute_sql(self.SQL, QueryOptions(strategy)))

    def test_gmdj_strategy_rewrites_apply(self, db):
        from repro.unnesting import subquery_to_gmdj

        plan = compile_sql(self.SQL, db.catalog)
        translated = subquery_to_gmdj(plan, db.catalog)

        def contains(node, kind):
            if isinstance(node, kind):
                return True
            return any(
                contains(child, kind)
                for child in getattr(node, "children", lambda: ())()
            )

        assert contains(translated, GMDJ)
        assert not contains(translated, Apply)

    def test_scalar_mode_select_subquery(self, db):
        sql = ("SELECT c.ck, (SELECT o.price FROM orders o "
               "WHERE o.ck = c.ck AND o.price > 20) AS big FROM customer c")
        result = db.execute_sql(sql, QueryOptions("naive"))
        rows = {row[0]: row[1] for row in result.rows}
        assert rows == {1: 30, 2: None, 3: None}

    def test_uncorrelated_select_subquery(self, db):
        sql = ("SELECT c.ck, (SELECT max(o.price) FROM orders o) AS top "
               "FROM customer c")
        result = db.execute_sql(sql, QueryOptions("gmdj_optimized"))
        assert all(row[1] == 99 for row in result.rows)
