"""End-to-end tests of the query service over real sockets.

A :class:`LiveServer` fixture boots the asyncio service on an ephemeral
port inside a background thread and talks plain ``http.client`` to it,
so everything here exercises the same wire path a real client sees:
routing, tenancy, the tiered cache/rollup/execute serving path, the
admission queue's 429 shedding, deadline 408s, drain 503s, and the
zero-detail-scan invariant for rollup-served requests — all asserted
through HTTP responses alone.

The overload tests are deterministic, not timing-based: they wedge the
default tenant's write lock from the test thread, which pins worker
threads in a known state, then read the admission counters through
``/healthz`` to sequence the scenario.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.serve import QueryService, ServeConfig

SQL = ("SELECT K FROM B b WHERE EXISTS "
       "(SELECT * FROM R r WHERE r.K = b.K)")

GMDJ_OPTS = {"strategy": "gmdj", "rollup": "subsume", "use_cache": False}


class LiveServer:
    """One service on an ephemeral port, driven from a loop thread."""

    def __init__(self, **overrides):
        self.config = ServeConfig(port=0, **overrides)
        self.service = QueryService(self.config)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "service failed to start"

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    def stop(self):
        if self.loop.is_closed():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop)
        future.result(20)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()

    # -- plain-HTTP client helpers ------------------------------------------

    def request(self, method, path, payload=None, headers=None, timeout=30):
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            connection.request(method, path, body=body,
                               headers=headers or {})
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def get(self, path, **kwargs):
        return self.request("GET", path, **kwargs)

    def post(self, path, payload, **kwargs):
        return self.request("POST", path, payload, **kwargs)

    def create_tables(self, tenant="default"):
        for statement in (
            {"op": "create_table", "name": "B",
             "columns": [["K", "integer"]], "rows": [[1], [2], [3]]},
            {"op": "create_table", "name": "R",
             "columns": [["K", "integer"], ["V", "integer"]],
             "rows": [[1, 10], [1, 20], [2, 5]]},
        ):
            status, _ = self.post(
                "/ddl", {"tenant": tenant, "statement": statement})
            assert status == 200
        return SQL

    def wait_admission(self, predicate, timeout=10):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, health = self.get("/healthz")
            if predicate(health["admission"]):
                return health["admission"]
            time.sleep(0.01)
        raise AssertionError("admission state never reached")


@pytest.fixture
def live_server():
    servers = []

    def make(**overrides):
        server = LiveServer(**overrides)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.stop()


class TestEndpoints:
    def test_healthz(self, live_server):
        server = live_server()
        status, health = server.get("/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["admission"]["workers"] == server.config.workers

    def test_query_roundtrip_and_cache_tier(self, live_server):
        server = live_server()
        sql = server.create_tables()
        status, first = server.post("/query", {"sql": sql})
        assert status == 200
        assert first["columns"] == ["b.K"]
        assert sorted(first["rows"]) == [[1], [2]]
        assert first["served_by"] == "execute"
        _, again = server.post("/query", {"sql": sql})
        assert again["served_by"] == "cache"
        assert sorted(again["rows"]) == [[1], [2]]

    def test_rollup_hit_reports_zero_detail_scans(self, live_server):
        server = live_server()
        sql = server.create_tables()
        _, warm = server.post("/query", {"sql": sql, "options": GMDJ_OPTS})
        assert warm["served_by"] == "execute"
        assert warm["detail_scans"] >= 1
        _, hit = server.post("/query", {"sql": sql, "options": GMDJ_OPTS})
        assert hit["served_by"] == "rollup"
        assert hit["detail_scans"] == 0
        assert hit["rows"] == warm["rows"]

    def test_insert_invalidates_over_http(self, live_server):
        server = live_server()
        sql = server.create_tables()
        _, before = server.post("/query", {"sql": sql})
        assert sorted(before["rows"]) == [[1], [2]]
        status, _ = server.post("/ddl", {"statement": {
            "op": "insert", "name": "R", "rows": [[3, 9]]}})
        assert status == 200
        _, after = server.post("/query", {"sql": sql})
        assert sorted(after["rows"]) == [[1], [2], [3]]
        assert after["served_by"] == "execute"  # the cache did not lie

    def test_explain_plan_and_analyze(self, live_server):
        server = live_server()
        sql = server.create_tables()
        status, plain = server.post("/explain", {"sql": sql})
        assert status == 200
        assert "plan" in plain and plain["tenant"] == "default"
        status, analyzed = server.post(
            "/explain", {"sql": sql, "analyze": True})
        assert status == 200
        assert analyzed["executed"]
        assert "trace" in analyzed

    def test_metrics_aggregates(self, live_server):
        server = live_server()
        sql = server.create_tables()
        server.post("/query", {"sql": sql})
        status, metrics = server.get("/metrics")
        assert status == 200
        assert metrics["statuses"]["200"] >= 3
        assert metrics["tenants"]["default"]["queries"] == 1
        assert metrics["registry"]["counters"]["serve.requests"] >= 3

    def test_tenant_isolation(self, live_server):
        server = live_server()
        server.create_tables(tenant="alpha")
        # beta has no tables: the same SQL is an error there ...
        status, payload = server.post(
            "/query", {"tenant": "beta", "sql": SQL})
        assert status == 400
        assert "unknown table" in payload["error"]
        # ... and beta's own B/R (different rows) answer independently.
        for statement in (
            {"op": "create_table", "name": "B",
             "columns": [["K", "integer"]], "rows": [[7]]},
            {"op": "create_table", "name": "R",
             "columns": [["K", "integer"]], "rows": [[7]]},
        ):
            server.post("/ddl", {"tenant": "beta", "statement": statement})
        _, alpha = server.post("/query", {"tenant": "alpha", "sql": SQL})
        _, beta = server.post("/query", {"tenant": "beta", "sql": SQL})
        assert sorted(alpha["rows"]) == [[1], [2]]
        assert beta["rows"] == [[7]]

    def test_tenant_cap_is_429(self, live_server):
        server = live_server(max_tenants=1)
        server.get("/healthz")
        status, _ = server.post(
            "/query", {"tenant": "first", "sql": "SELECT 1"})
        assert status != 429  # first tenant fits (status is a 400: no tables)
        status, payload = server.post(
            "/query", {"tenant": "second", "sql": "SELECT 1"})
        assert status == 429
        assert "tenant limit" in payload["error"]

    def test_keep_alive_connection_reuse(self, live_server):
        server = live_server()
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.service.port, timeout=30)
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()


class TestErrorPaths:
    def test_unknown_route_is_404(self, live_server):
        assert live_server().get("/nope")[0] == 404

    def test_wrong_method_is_405(self, live_server):
        assert live_server().get("/query")[0] == 405

    def test_garbage_json_is_400(self, live_server):
        server = live_server()
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.service.port, timeout=30)
        try:
            connection.request("POST", "/query", body="{nope")
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_missing_sql_is_400(self, live_server):
        status, payload = live_server().post("/query", {})
        assert status == 400
        assert "sql" in payload["error"]

    def test_non_object_body_is_400(self, live_server):
        assert live_server().post("/query", [1, 2])[0] == 400

    def test_unknown_option_field_is_400(self, live_server):
        server = live_server()
        server.create_tables()
        status, payload = server.post(
            "/query", {"sql": SQL, "options": {"trace": True}})
        assert status == 400
        assert "trace" in payload["error"]

    def test_bad_tenant_name_is_400(self, live_server):
        assert live_server().post(
            "/query", {"tenant": "no spaces!", "sql": "SELECT 1"})[0] == 400

    def test_bad_ddl_op_is_400(self, live_server):
        status, payload = live_server().post(
            "/ddl", {"statement": {"op": "truncate"}})
        assert status == 400
        assert "unknown ddl op" in payload["error"]

    def test_bad_deadline_is_400(self, live_server):
        assert live_server().post(
            "/query", {"sql": "SELECT 1", "deadline_ms": "soon"})[0] == 400

    def test_oversized_body_is_413(self, live_server):
        server = live_server(max_body=128)
        status, _ = server.post("/query", {"sql": "x" * 1024})
        assert status == 413


class TestOverloadAndDeadlines:
    def test_deadline_while_blocked_is_408(self, live_server):
        server = live_server()
        sql = server.create_tables()
        tenant = server.service.tenants.get("default")
        tenant.lock.acquire_write()  # wedge every reader
        try:
            status, payload = server.post(
                "/query", {"sql": sql, "deadline_ms": 150})
            assert status == 408
            assert "deadline" in payload["error"]
        finally:
            tenant.lock.release_write()
        # The timed-out request released its slot once its thread
        # finished; the tenant still works.
        status, _ = server.post("/query", {"sql": sql})
        assert status == 200
        admission = server.wait_admission(lambda a: a["executing"] == 0)
        assert admission["waiting"] == 0

    def test_deadline_header_applies(self, live_server):
        server = live_server()
        sql = server.create_tables()
        tenant = server.service.tenants.get("default")
        tenant.lock.acquire_write()
        try:
            status, _ = server.post(
                "/query", {"sql": sql},
                headers={"x-repro-deadline-ms": "150"})
            assert status == 408
        finally:
            tenant.lock.release_write()
        server.wait_admission(lambda a: a["executing"] == 0)

    def test_overload_sheds_429_and_admitted_complete(self, live_server):
        server = live_server(workers=1, queue_depth=1)
        sql = server.create_tables()
        tenant = server.service.tenants.get("default")
        tenant.lock.acquire_write()
        results = []

        def fire():
            results.append(server.post(
                "/query", {"sql": sql, "deadline_ms": 0}))

        first = threading.Thread(target=fire)
        first.start()
        try:
            # Request 1 occupies the only worker (blocked on the lock).
            server.wait_admission(lambda a: a["executing"] == 1)
            second = threading.Thread(target=fire)
            second.start()
            # Request 2 fills the one-deep waiting room.
            server.wait_admission(lambda a: a["waiting"] == 1)
            # Request 3 must be shed, immediately, with a 429.
            status, payload = server.post(
                "/query", {"sql": sql, "deadline_ms": 0})
            assert status == 429
            assert "queue full" in payload["error"]
        finally:
            tenant.lock.release_write()
        first.join(30)
        second.join(30)
        # Every *admitted* request completed correctly despite overload.
        assert [status for status, _ in results] == [200, 200]
        for _, payload in results:
            assert sorted(payload["rows"]) == [[1], [2]]
        _, health = server.get("/healthz")
        assert health["admission"]["shed"] == 1
        assert health["admission"]["completed"] >= 2

    def test_draining_is_503(self, live_server):
        server = live_server()
        server.create_tables()
        server.service._draining = True
        try:
            status, payload = server.post("/query", {"sql": SQL})
            assert status == 503
            assert "draining" in payload["error"]
            _, health = server.get("/healthz")
            assert health["status"] == "draining"
        finally:
            server.service._draining = False


class TestMetricsIsolation:
    def test_interleaved_requests_keep_private_counters(self, live_server):
        # Tenant "hot" serves every query from its rollup store; tenant
        # "cold" executes every time (rollup off, cache off).  Run both
        # concurrently: without per-request metrics scoping the shared
        # registry would bleed rollup hits into cold responses (and
        # misses into hot ones), flipping served_by classifications.
        server = live_server(workers=4)
        sql = server.create_tables(tenant="hot")
        server.create_tables(tenant="cold")
        warm_status, warm = server.post(
            "/query", {"tenant": "hot", "sql": sql, "options": GMDJ_OPTS})
        assert warm_status == 200 and warm["served_by"] == "execute"

        cold_options = {"strategy": "gmdj", "rollup": "off",
                        "use_cache": False}
        outcomes = []

        def hot():
            outcomes.append(("hot", server.post(
                "/query",
                {"tenant": "hot", "sql": sql, "options": GMDJ_OPTS})))

        def cold():
            outcomes.append(("cold", server.post(
                "/query",
                {"tenant": "cold", "sql": sql, "options": cold_options})))

        threads = [threading.Thread(target=hot if i % 2 else cold)
                   for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert len(outcomes) == 12
        for kind, (status, payload) in outcomes:
            assert status == 200
            counters = payload["metrics"]["counters"]
            if kind == "hot":
                assert payload["served_by"] == "rollup"
                assert payload["detail_scans"] == 0
                assert counters.get("rollup.exact_hits", 0) == 1
                assert "rollup.misses" not in counters
            else:
                assert payload["served_by"] == "execute"
                assert payload["detail_scans"] >= 1
                assert "rollup.exact_hits" not in counters
                assert "cache.result_hits" not in counters


class TestLifecycle:
    def test_shutdown_closes_tenants_and_pools(self, live_server):
        server = live_server()
        sql = server.create_tables()
        server.post("/query", {"sql": sql})
        tenant = server.service.tenants.get("default")
        server.stop()
        assert server.service.draining
        assert tenant.db.closed
        assert tenant.db.pools.closed
        assert server.service.pools.closed
