"""Tests for the deterministic data generators."""

from repro.data import (
    NetflowConfig,
    TpcrSizes,
    build_netflow_catalog,
    build_tpcr_catalog,
    generate_customer,
    generate_hours,
    generate_nation,
    generate_orders,
    generate_users,
    make_rng,
)
from repro.data.netflow import SPECIAL_DESTS


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(1, "x").random()
        b = make_rng(1, "x").random()
        assert a == b

    def test_streams_decorrelated(self):
        assert make_rng(1, "x").random() != make_rng(1, "y").random()


class TestTpcr:
    def test_customer_deterministic(self):
        first = generate_customer(50, seed=3)
        second = generate_customer(50, seed=3)
        assert first.bag_equal(second)

    def test_customer_seed_sensitivity(self):
        assert not generate_customer(50, seed=3).bag_equal(
            generate_customer(50, seed=4)
        )

    def test_growing_preserves_prefix(self):
        # dbgen-like: row i depends only on the seed and i, so a larger
        # table extends a smaller one.
        small = generate_customer(10, seed=3)
        large = generate_customer(20, seed=3)
        assert large.rows[:10] == small.rows

    def test_orders_reference_customers(self):
        orders = generate_orders(200, customer_count=30, seed=3)
        assert all(1 <= row[1] <= 30 for row in orders.rows)

    def test_nation_fixed(self):
        assert len(generate_nation()) == 25

    def test_catalog_has_all_tables(self):
        catalog = build_tpcr_catalog(TpcrSizes(
            customers=10, orders=20, lineitems=30, parts=10, suppliers=5
        ))
        assert set(catalog.table_names()) == {
            "region", "nation", "customer", "orders", "part", "supplier",
            "lineitem",
        }

    def test_catalog_indexes_present(self):
        catalog = build_tpcr_catalog(TpcrSizes(
            customers=10, orders=20, lineitems=30, parts=10, suppliers=5
        ))
        assert catalog.hash_index("orders", ("custkey",)) is not None

    def test_catalog_without_indexes(self):
        catalog = build_tpcr_catalog(TpcrSizes(
            customers=10, orders=20, lineitems=30, parts=10, suppliers=5
        ), indexes=False)
        assert catalog.hash_index("orders", ("custkey",)) is None


class TestNetflow:
    def test_hours_cover_horizon(self):
        hours = generate_hours(5)
        assert hours.rows[0] == (1, 0, 60)
        assert hours.rows[-1] == (5, 240, 300)

    def test_users_have_unique_ips(self):
        users = generate_users(30)
        ips = users.column("IPAddress")
        assert len(set(ips)) == 30

    def test_flows_deterministic(self):
        config = NetflowConfig(flows=100, seed=5)
        first = build_netflow_catalog(config).table("Flow")
        second = build_netflow_catalog(config).table("Flow")
        assert first.bag_equal(second)

    def test_flow_times_within_horizon(self):
        config = NetflowConfig(flows=200, hours=6, seed=5)
        flow = build_netflow_catalog(config).table("Flow")
        horizon = 6 * 60
        assert all(0 <= row[3] < horizon for row in flow.rows)

    def test_special_dests_appear(self):
        config = NetflowConfig(flows=500, special_dest_share=0.3, seed=5)
        flow = build_netflow_catalog(config).table("Flow")
        dests = set(flow.column("DestIP"))
        assert dests & set(SPECIAL_DESTS)

    def test_user_ips_generate_traffic(self):
        config = NetflowConfig(flows=500, users=10, extra_source_ips=0,
                               seed=5)
        catalog = build_netflow_catalog(config)
        sources = set(catalog.table("Flow").column("SourceIP"))
        user_ips = set(catalog.table("User").column("IPAddress"))
        assert sources <= user_ips

    def test_http_share_roughly_respected(self):
        config = NetflowConfig(flows=2000, http_share=0.7, seed=5)
        flow = build_netflow_catalog(config).table("Flow")
        share = sum(1 for p in flow.column("Protocol") if p == "HTTP") / len(flow)
        assert 0.6 < share < 0.8
