"""Tests for the baseline strategies (naive, native, join unnesting)."""

import pytest

from repro.algebra.aggregates import agg
from repro.algebra.expressions import IsNull, TRUE, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    in_predicate,
    not_in_predicate,
)
from repro.algebra.operators import Project, ScanTable
from repro.baselines import (
    evaluate_join_unnest,
    evaluate_naive,
    evaluate_native,
)
from repro.errors import TranslationError
from repro.storage import Catalog, DataType, Relation, collect


def b_scan():
    return ScanTable("B", "b")


def r_sub(predicate=None, item=None, aggregate=None, alias="r"):
    default = col(f"{alias}.K") == col("b.K")
    return Subquery(ScanTable("R", alias),
                    predicate if predicate is not None else default,
                    item=item, aggregate=aggregate)


QUERIES = {
    "exists": lambda: NestedSelect(b_scan(), Exists(r_sub())),
    "not_exists": lambda: NestedSelect(b_scan(), Exists(r_sub(), negated=True)),
    "some": lambda: NestedSelect(
        b_scan(),
        QuantifiedComparison("<", "some", col("b.X"), r_sub(item=col("r.Y"))),
    ),
    "all": lambda: NestedSelect(
        b_scan(),
        QuantifiedComparison("<", "all", col("b.X"), r_sub(item=col("r.Y"))),
    ),
    "in": lambda: NestedSelect(
        b_scan(),
        in_predicate(col("b.X"), Subquery(ScanTable("R", "r"), TRUE,
                                          item=col("r.Y"))),
    ),
    "not_in": lambda: NestedSelect(
        b_scan(),
        not_in_predicate(col("b.X"),
                         Subquery(ScanTable("R", "r"),
                                  IsNull(col("r.Y"), negated=True),
                                  item=col("r.Y"))),
    ),
    "agg": lambda: NestedSelect(
        b_scan(),
        ScalarComparison(">", col("b.X"),
                         r_sub(aggregate=agg("avg", col("r.Y"), "a"))),
    ),
    "count": lambda: NestedSelect(
        b_scan(),
        ScalarComparison("=", lit(0),
                         r_sub(aggregate=agg("count", None, "c"))),
    ),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_all_baselines_agree(name, kv_catalog):
    query = QUERIES[name]()
    expected = query.evaluate(kv_catalog)
    assert expected.bag_equal(evaluate_naive(QUERIES[name](), kv_catalog)), "naive"
    assert expected.bag_equal(evaluate_native(QUERIES[name](), kv_catalog)), "native"
    assert expected.bag_equal(
        evaluate_join_unnest(QUERIES[name](), kv_catalog)
    ), "join"


class TestNativeSmarts:
    def test_early_exit_reduces_work(self, kv_catalog):
        query = QUERIES["exists"]()
        with collect() as naive_stats:
            evaluate_naive(query, kv_catalog)
        with collect() as native_stats:
            evaluate_native(query, kv_catalog, use_indexes=False)
        assert native_stats.predicate_evals <= naive_stats.predicate_evals

    def test_index_probes_used_when_available(self, kv_catalog):
        kv_catalog.create_hash_index("R", ["K"])
        query = QUERIES["exists"]()
        with collect() as stats:
            evaluate_native(query, kv_catalog, use_indexes=True)
        assert stats.index_probes > 0

    def test_no_index_probes_without_indexes(self, kv_catalog):
        query = QUERIES["exists"]()
        with collect() as stats:
            evaluate_native(query, kv_catalog, use_indexes=True)
        assert stats.index_probes == 0

    def test_indexed_and_unindexed_agree(self, kv_catalog):
        kv_catalog.create_hash_index("R", ["K"])
        for name in QUERIES:
            query = QUERIES[name]()
            indexed = evaluate_native(query, kv_catalog, use_indexes=True)
            plain = evaluate_native(QUERIES[name](), kv_catalog,
                                    use_indexes=False)
            assert indexed.bag_equal(plain), name


class TestJoinUnnesting:
    def test_disjunction_rejected(self, kv_catalog):
        query = NestedSelect(b_scan(),
                             Exists(r_sub()) | (col("b.X") > lit(1)))
        with pytest.raises(TranslationError):
            evaluate_join_unnest(query, kv_catalog)

    def test_non_neighboring_rejected(self, kv_catalog):
        inner = Exists(Subquery(ScanTable("R", "r2"),
                                col("r2.Y") == col("b.X")))
        outer = Subquery(ScanTable("R", "r1"),
                         (col("r1.K") == col("b.K")) & inner)
        query = NestedSelect(b_scan(), Exists(outer))
        with pytest.raises(TranslationError):
            evaluate_join_unnest(query, kv_catalog)

    def test_linear_neighboring_supported(self, kv_catalog):
        inner = Exists(Subquery(ScanTable("R", "r2"),
                                col("r2.K") == col("r1.K")))
        outer = Subquery(ScanTable("R", "r1"),
                         (col("r1.K") == col("b.K")) & inner)
        query = NestedSelect(b_scan(), Exists(outer))
        expected = query.evaluate(kv_catalog)
        assert expected.bag_equal(evaluate_join_unnest(query, kv_catalog))

    def test_uncorrelated_exists(self, kv_catalog):
        query = NestedSelect(
            b_scan(), Exists(Subquery(ScanTable("R", "r"), col("r.Y") > lit(6)))
        )
        expected = query.evaluate(kv_catalog)
        assert expected.bag_equal(evaluate_join_unnest(query, kv_catalog))

    def test_uncorrelated_aggregate(self, kv_catalog):
        query = NestedSelect(
            b_scan(),
            ScalarComparison(">", col("b.X"),
                             Subquery(ScanTable("R", "r"), TRUE,
                                      aggregate=agg("avg", col("r.Y"), "a"))),
        )
        expected = query.evaluate(kv_catalog)
        assert expected.bag_equal(evaluate_join_unnest(query, kv_catalog))

    def test_count_bug_fixed(self, kv_catalog):
        # Empty groups must compare as count = 0, not NULL (Kim's bug).
        query = QUERIES["count"]()
        expected = query.evaluate(kv_catalog)
        result = evaluate_join_unnest(query, kv_catalog)
        assert expected.bag_equal(result)
        assert len(result) > 0  # B keys 3 and 5 have empty ranges

    def test_all_null_escape(self):
        # ALL with NULL inner values: the anti-join must treat UNKNOWN
        # comparisons as disqualifying.
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)], [(1, 5)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
            [(1, None), (1, 1)],
        ))
        query = QUERIES["all"]()
        expected = query.evaluate(catalog)
        assert expected.bag_equal(evaluate_join_unnest(query, catalog))
        assert len(expected) == 0

    def test_merge_joins_without_indexes(self, kv_catalog):
        query = QUERIES["exists"]()
        expected = query.evaluate(kv_catalog)
        result = evaluate_join_unnest(query, kv_catalog, use_indexes=False)
        assert expected.bag_equal(result)


class TestWrappedQueries:
    def test_baselines_handle_projection_wrappers(self, kv_catalog):
        query = Project(NestedSelect(b_scan(), Exists(r_sub())), ["b.K"])
        expected = query.evaluate(kv_catalog)
        assert expected.bag_equal(evaluate_naive(query, kv_catalog))
        assert expected.bag_equal(evaluate_native(query, kv_catalog))
        assert expected.bag_equal(evaluate_join_unnest(query, kv_catalog))

    def test_flat_queries_pass_through(self, kv_catalog):
        from repro.algebra.operators import Select

        query = Select(b_scan(), col("b.X") > lit(3))
        expected = query.evaluate(kv_catalog)
        assert expected.bag_equal(evaluate_naive(query, kv_catalog))
        assert expected.bag_equal(evaluate_join_unnest(query, kv_catalog))
