"""The numpy whole-array backend: selection, fallback, and caching.

Covers the knobs and edges the property suite cannot pin one by one:

* backend resolution (explicit > ``REPRO_BACKEND`` env > python;
  ``auto``; clean :class:`~repro.errors.ConfigurationError` without the
  optional numpy extra);
* per-operator fallback to the python kernel — holistic DISTINCT
  aggregates, object-encoded columns (>64-bit ints), int-sum overflow
  guards, NaN min/max, and completion runs — each recorded on the
  ``detail_scan`` span and each still producing the python kernel's
  exact rows and counters;
* the relation-level columnar-encoding cache (hit/miss counters, reuse
  across chunked fragments, invalidation on mutation).
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("numpy", exc_type=ImportError)

from repro import Database, DataType, QueryOptions
from repro.algebra.aggregates import AggregateSpec, agg, count_star
from repro.algebra.expressions import col, lit
from repro.algebra.operators import ScanTable
from repro.errors import ConfigurationError
from repro.gmdj import md
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.modes import evaluate_plan_chunked, evaluate_plan_vectorized
from repro.gmdj.vectorized import resolve_backend, run_gmdj_vectorized
from repro.obs.metrics import get_registry, metrics_scope
from repro.obs.tracer import Tracer, tracing
from repro.storage import Catalog, Relation, collect
from repro.storage.columnar import cached_columnar
from repro.unnesting import subquery_to_gmdj


def null_heavy_catalog(seed=0, rows=150):
    rng = random.Random(seed)

    def maybe(value, rate=0.25):
        return None if rng.random() < rate else value

    base = Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(maybe(i % 6), maybe(rng.randrange(50))) for i in range(17)],
        name="B", qualifier="b",
    )
    detail = Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER),
         ("S", DataType.STRING), ("F", DataType.FLOAT)],
        [(maybe(rng.randrange(6)), maybe(rng.randrange(100)),
          maybe(rng.choice(["red", "green", "blue"])),
          maybe(rng.choice([0.5, -2.25, 31.0])))
         for _ in range(rows)],
        name="R", qualifier="r",
    )
    catalog = Catalog()
    catalog.create_table("B", base)
    catalog.create_table("R", detail)
    return catalog, base, detail


def run_both_kernels(gmdj, catalog):
    """(python rows/stats, numpy rows/stats, numpy detail_scan span)."""
    base = gmdj.base.evaluate(catalog)
    detail = gmdj.detail.evaluate(catalog)
    schema = gmdj.schema(catalog)
    with collect() as python_stats:
        python_result = run_gmdj_vectorized(base, detail, gmdj, schema,
                                            backend="python")
    tracer = Tracer()
    with collect() as numpy_stats, tracing(tracer):
        numpy_result = run_gmdj_vectorized(base, detail, gmdj, schema,
                                           backend="numpy")
    (scan,) = tracer.trace().find(kind="detail_scan")
    return python_result, python_stats, numpy_result, numpy_stats, scan


def assert_identical(gmdj, catalog, expect_fallback=None):
    python_result, python_stats, numpy_result, numpy_stats, scan = \
        run_both_kernels(gmdj, catalog)
    assert python_result.rows == numpy_result.rows
    assert python_stats.snapshot() == numpy_stats.snapshot()
    assert scan.attrs["backend"] == "numpy"
    fallbacks = scan.attrs.get("fallbacks", ())
    if expect_fallback is None:
        assert not fallbacks
    else:
        assert any(expect_fallback in reason for reason in fallbacks), \
            fallbacks
    return scan


class TestResolveBackend:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "python"

    def test_explicit_values(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("numpy") == "numpy"
        assert resolve_backend("auto") == "numpy"  # extra is installed

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None) == "numpy"
        # The explicit option always wins over the environment.
        assert resolve_backend("python") == "python"

    def test_environment_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ConfigurationError):
            resolve_backend(None)

    def test_numpy_backend_without_numpy(self, monkeypatch):
        from repro.storage import npcolumns

        monkeypatch.setattr(npcolumns, "numpy", None)
        monkeypatch.setattr(npcolumns, "HAVE_NUMPY", False)
        with pytest.raises(ConfigurationError, match="optional numpy"):
            resolve_backend("numpy")
        # auto degrades to python instead of raising.
        assert resolve_backend("auto") == "python"

    def test_options_validate_backend(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(backend="cuda")


class TestKernelIdentityAndFallbacks:
    def test_hash_block_no_fallback(self):
        catalog, _, _ = null_heavy_catalog()
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c"), agg("sum", col("r.V"), "s")]],
                  [(col("b.K") == col("r.K")) & (col("r.V") > lit(40))])
        assert_identical(gmdj, catalog)

    def test_scan_block_base_residual_no_fallback(self):
        catalog, _, _ = null_heavy_catalog()
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[agg("max", col("r.V"), "m")]],
                  [col("r.V") < col("b.X")])
        assert_identical(gmdj, catalog)

    def test_distinct_aggregate_falls_back_per_value(self):
        catalog, _, _ = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[AggregateSpec("sum", col("r.V"), "d", distinct=True),
              count_star("c")]],
            [col("b.K") == col("r.K")],
        )
        assert_identical(gmdj, catalog, expect_fallback="DISTINCT")

    def test_object_column_falls_back_whole_block(self):
        # A detail column holding a >64-bit int has no array form; every
        # expression touching it sends the whole block to the python
        # kernel, and untouched blocks stay on the numpy path.
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(0,), (1,), (None,)],
            name="B", qualifier="b"))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("H", DataType.INTEGER)],
            [(0, 2 ** 70), (0, 3), (1, None), (None, 5)],
            name="R", qualifier="r"))
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[agg("min", col("r.H"), "m")]],
                  [col("b.K") == col("r.K")])
        assert_identical(gmdj, catalog, expect_fallback="object-encoded")

    def test_int_sum_overflow_falls_back_exactly(self):
        huge = 2 ** 61
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(0,)], name="B", qualifier="b"))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(0, huge), (0, huge), (0, huge), (0, -7)],
            name="R", qualifier="r"))
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[agg("sum", col("r.V"), "s")]],
                  [col("b.K") == col("r.K")])
        python_result, _, numpy_result, _, _ = run_both_kernels(
            gmdj, catalog)
        assert numpy_result.rows == python_result.rows
        assert numpy_result.rows[0][-1] == 3 * huge - 7  # exact bigint

    def test_nan_min_max_falls_back(self):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(0,)], name="B", qualifier="b"))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("F", DataType.FLOAT)],
            [(0, 2.5), (0, float("nan")), (0, -1.0)],
            name="R", qualifier="r"))
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[agg("min", col("r.F"), "lo"),
                    agg("max", col("r.F"), "hi")]],
                  [col("b.K") == col("r.K")])
        python_result, _, numpy_result, _, _ = run_both_kernels(
            gmdj, catalog)
        assert numpy_result.rows == python_result.rows

    def test_completion_run_records_fallback(self):
        catalog, _, _ = null_heavy_catalog()
        from repro.algebra.nested import Exists, NestedSelect, Subquery

        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"),
                            (col("r.K") == col("b.K"))
                            & (col("r.V") > lit(80))),
                   negated=True),
        )
        plan = subquery_to_gmdj(query, catalog, optimize=True)
        assert any(isinstance(node, SelectGMDJ)
                   for node in _walk(plan)), "expected a completion plan"
        with collect() as python_stats:
            python_result = evaluate_plan_vectorized(
                plan, catalog, None, backend="python")
        tracer = Tracer()
        with collect() as numpy_stats, tracing(tracer):
            numpy_result = evaluate_plan_vectorized(
                plan, catalog, None, backend="numpy")
        assert python_result.rows == numpy_result.rows
        assert python_stats.snapshot() == numpy_stats.snapshot()
        scans = tracer.trace().find(kind="detail_scan")
        assert any(
            any("completion" in reason
                for reason in scan.attrs.get("fallbacks", ()))
            for scan in scans
        )


def _walk(node):
    yield node
    for child in getattr(node, "children", lambda: [])():
        yield from _walk(child)


class TestColumnarEncodingCache:
    def test_hit_miss_counters(self):
        catalog, _, detail = null_heavy_catalog()
        with metrics_scope() as registry:
            first = cached_columnar(detail)
            second = cached_columnar(detail)
            assert second is first
            assert registry.counter("columnar.cache_misses").value == 1
            assert registry.counter("columnar.cache_hits").value == 1

    def test_scan_view_shares_cache(self):
        _, _, detail = null_heavy_catalog()
        with metrics_scope() as registry:
            cached_columnar(detail)
            view = detail.rename("q")
            hit = cached_columnar(view)
            assert registry.counter("columnar.cache_hits").value == 1
            assert hit.schema is view.schema

    def test_mutation_invalidates(self):
        _, _, detail = null_heavy_catalog()
        with metrics_scope() as registry:
            cached_columnar(detail)
            detail.insert((0, 1, "red", 0.5))
            rebuilt = cached_columnar(detail)
            assert registry.counter("columnar.cache_misses").value == 2
            assert rebuilt.length == len(detail)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_chunked_fragments_encode_once(self, backend):
        # chunk_budget splits the base into fragments; every fragment
        # scans the same detail relation, so the columnar encoding must
        # be built exactly once and served from the cache after that.
        catalog, base, _ = null_heavy_catalog()
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c")]],
                  [col("b.K") == col("r.K")])
        fragments = -(-len(base) // 4)
        assert fragments > 1
        with metrics_scope() as registry:
            chunked = evaluate_plan_chunked(
                gmdj, catalog, 4, vectorized=True, backend=backend)
            misses = registry.counter("columnar.cache_misses").value
            hits = registry.counter("columnar.cache_hits").value
        assert misses == 1
        assert hits == fragments - 1
        plain = gmdj.evaluate(catalog)
        assert plain.bag_equal(chunked)
