"""Unit tests for the stdlib HTTP/1.1 layer under the query service.

These feed byte streams straight into :func:`repro.serve.http.
read_request` through an in-memory ``StreamReader`` — no sockets — so
every malformed-input branch is pinned deterministically: truncation,
oversized heads and bodies, bad Content-Length, chunked refusal, and
protocol version checks all map to their specific status codes instead
of misparses.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_HEADER_BYTES,
    HttpError,
    HttpRequest,
    json_response,
    read_request,
)


def parse(raw: bytes, max_body: int | None = None):
    """Run read_request over an in-memory stream fed with ``raw``."""

    async def go():
        reader = asyncio.StreamReader(limit=2 * 64 * 1024)
        reader.feed_data(raw)
        reader.feed_eof()
        if max_body is None:
            return await read_request(reader)
        return await read_request(reader, max_body=max_body)

    return asyncio.run(go())


def request_bytes(method="POST", target="/query", version="HTTP/1.1",
                  headers=(), body=b""):
    lines = [f"{method} {target} {version}"]
    lines += [f"{name}: {value}" for name, value in headers]
    if body:
        lines.append(f"Content-Length: {len(body)}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode() + body


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.body == b""

    def test_clean_close_returns_none(self):
        assert parse(b"") is None

    def test_body_read_exactly(self):
        body = json.dumps({"sql": "SELECT 1"}).encode()
        request = parse(request_bytes(body=body))
        assert request.body == body
        assert request.json() == {"sql": "SELECT 1"}

    def test_query_string_split_from_path(self):
        request = parse(b"GET /metrics?pretty=1&tenant=a HTTP/1.1\r\n\r\n")
        assert request.path == "/metrics"
        assert request.query == {"pretty": "1", "tenant": "a"}

    def test_headers_lowercased_and_trimmed(self):
        request = parse(request_bytes(
            headers=[("X-Repro-Deadline-MS", " 250 ")]))
        assert request.headers["x-repro-deadline-ms"] == "250"

    def test_truncated_head_is_400(self):
        with pytest.raises(HttpError) as error:
            parse(b"POST /query HTTP/1.1\r\nContent-")
        assert error.value.status == 400

    def test_truncated_body_is_400(self):
        raw = request_bytes(body=b"{}")[:-1]  # one body byte missing
        with pytest.raises(HttpError) as error:
            parse(raw)
        assert error.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as error:
            parse(b"BROKEN\r\n\r\n")
        assert error.value.status == 400

    def test_malformed_header_line_is_400(self):
        with pytest.raises(HttpError) as error:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert error.value.status == 400

    def test_http2_preface_is_505(self):
        with pytest.raises(HttpError) as error:
            parse(b"PRI * HTTP/2.0\r\n\r\n")
        assert error.value.status == 505

    def test_chunked_body_is_501(self):
        with pytest.raises(HttpError) as error:
            parse(request_bytes(headers=[("Transfer-Encoding", "chunked")]))
        assert error.value.status == 501

    def test_oversized_head_is_431(self):
        filler = "x" * (MAX_HEADER_BYTES + 10)
        with pytest.raises(HttpError) as error:
            parse(request_bytes(headers=[("X-Filler", filler)]))
        assert error.value.status == 431

    def test_bad_content_length_is_400(self):
        for bad in ("nope", "-3"):
            with pytest.raises(HttpError) as error:
                parse(request_bytes(headers=[("Content-Length", bad)]))
            assert error.value.status == 400

    def test_body_over_cap_is_413(self):
        raw = request_bytes(body=b"x" * 64)
        with pytest.raises(HttpError) as error:
            parse(raw, max_body=16)
        assert error.value.status == 413


class TestHttpRequest:
    def test_keep_alive_default(self):
        assert HttpRequest("GET", "/").keep_alive

    def test_connection_close_honoured(self):
        request = HttpRequest("GET", "/", headers={"connection": "Close"})
        assert not request.keep_alive

    def test_empty_body_json_is_empty_object(self):
        assert HttpRequest("POST", "/").json() == {}

    def test_garbage_json_is_400(self):
        request = HttpRequest("POST", "/", body=b"{nope")
        with pytest.raises(HttpError) as error:
            request.json()
        assert error.value.status == 400


class TestJsonResponse:
    def test_roundtrip(self):
        raw = json_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_connection_header_tracks_keep_alive(self):
        assert b"Connection: keep-alive" in json_response(200, {})
        assert b"Connection: close" in json_response(200, {},
                                                     keep_alive=False)

    def test_unknown_status_still_serializes(self):
        assert json_response(418, {}).startswith(b"HTTP/1.1 418 ")
