"""Tests for plan printing and generic tree rewriting."""

from repro.algebra.aggregates import count_star
from repro.algebra.expressions import col, lit
from repro.algebra.operators import (
    GroupBy,
    Join,
    Project,
    ScanTable,
    Select,
    TableValue,
    Union,
)
from repro.algebra.printer import explain
from repro.algebra.rewrite import (
    map_children,
    plan_fingerprint,
    requalify_expression,
    transform_bottom_up,
)
from repro.gmdj import md
from repro.storage import DataType, Relation


class TestExplain:
    def test_scan_line(self):
        assert explain(ScanTable("Flow", "F")) == "Scan Flow -> F"

    def test_indentation(self):
        plan = Select(ScanTable("T"), col("T.x") > lit(1))
        lines = explain(plan).splitlines()
        assert lines[0].startswith("Select")
        assert lines[1].startswith("  Scan")

    def test_join_renders_both_children(self):
        plan = Join(ScanTable("A"), ScanTable("B"), col("A.x") == col("B.x"))
        text = explain(plan)
        assert "Scan A" in text and "Scan B" in text

    def test_gmdj_renders_blocks(self):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt")]], [col("b.K") == col("r.K")])
        text = explain(plan)
        assert "theta1" in text and "base:" in text and "detail:" in text

    def test_table_value(self):
        relation = Relation.from_columns([("x", DataType.INTEGER)], [(1,)])
        assert "1 rows" in explain(TableValue(relation))

    def test_groupby_and_union(self):
        plan = Union(
            GroupBy(ScanTable("T"), ["T.k"], [count_star("c")]),
            Project(ScanTable("T"), ["T.k", (lit(0), "c")]),
        )
        text = explain(plan)
        assert "GroupBy" in text and "Union ALL" in text


class TestMapChildren:
    def test_replaces_child(self):
        plan = Select(ScanTable("T"), col("T.x") > lit(1))
        swapped = map_children(plan, lambda _: ScanTable("U"))
        assert swapped.child.table_name == "U"

    def test_identity_returns_same_object(self):
        plan = Select(ScanTable("T"), col("T.x") > lit(1))
        assert map_children(plan, lambda c: c) is plan

    def test_join_children_both_visited(self):
        plan = Join(ScanTable("A"), ScanTable("B"), col("A.x") == col("B.x"))
        seen = []
        map_children(plan, lambda c: seen.append(c) or c)
        assert len(seen) == 2


class TestTransformBottomUp:
    def test_rewrites_leaves_first(self):
        order = []

        def record(node):
            order.append(type(node).__name__)
            return node

        plan = Select(ScanTable("T"), col("T.x") > lit(1))
        transform_bottom_up(plan, record)
        assert order == ["ScanTable", "Select"]

    def test_fixpoint_on_rewritten_node(self):
        # A transform that unwraps nested Selects must run repeatedly.
        inner = Select(Select(ScanTable("T"), col("T.x") > lit(1)),
                       col("T.x") < lit(9))

        def unwrap(node):
            if isinstance(node, Select) and isinstance(node.child, Select):
                return Select(node.child.child,
                              node.child.predicate & node.predicate)
            return node

        result = transform_bottom_up(inner, unwrap)
        assert isinstance(result.child, ScanTable)


class TestFingerprintAndRequalify:
    def test_equal_plans_equal_fingerprints(self):
        a = Select(ScanTable("T"), col("T.x") > lit(1))
        b = Select(ScanTable("T"), col("T.x") > lit(1))
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_different_plans_differ(self):
        a = ScanTable("T", "x")
        b = ScanTable("T", "y")
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_requalify_only_touches_target(self):
        expression = (col("a.x") == col("b.x")) & (col("a.y") > lit(1))
        rewritten = requalify_expression(expression, "a", "z")
        assert rewritten.references() == {"z.x", "b.x", "z.y"}

    def test_requalify_arithmetic_and_isnull(self):
        from repro.algebra.expressions import IsNull

        expression = IsNull(col("a.x") + col("c.y"))
        rewritten = requalify_expression(expression, "a", "z")
        assert rewritten.references() == {"z.x", "c.y"}
