"""Unit tests for the GMDJ operator and its single-scan evaluator."""

import pytest

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import TRUE, col, lit
from repro.algebra.operators import ScanTable, TableValue
from repro.errors import SchemaError
from repro.gmdj import GMDJ, ThetaBlock, md
from repro.storage import Catalog, DataType, Relation, collect


class TestFigure1:
    """The worked example from the paper (Example 2.1 / Figure 1)."""

    def _plan(self):
        in_hour = (col("F.StartTime") >= col("H.StartInterval")) & (
            col("F.StartTime") < col("H.EndInterval")
        )
        return md(
            ScanTable("Hours", "H"),
            ScanTable("Flow", "F"),
            [[agg("sum", col("F.NumBytes"), "sum1")],
             [agg("sum", col("F.NumBytes"), "sum2")]],
            [in_hour & (col("F.Protocol") == lit("HTTP")), in_hour],
        )

    def test_exact_output(self, figure1_catalog):
        result = self._plan().evaluate(figure1_catalog)
        rows = {row[0]: (row[3], row[4]) for row in result.rows}
        assert rows == {1: (12, 12), 2: (36, 84), 3: (48, 96)}

    def test_single_scan_of_detail(self, figure1_catalog):
        with collect() as stats:
            self._plan().evaluate(figure1_catalog)
        # One scan of Flow + one of Hours, regardless of block count.
        assert stats.relation_scans == 2

    def test_output_size_bounded_by_base(self, figure1_catalog):
        result = self._plan().evaluate(figure1_catalog)
        assert len(result) == len(figure1_catalog.table("Hours"))

    def test_schema(self, figure1_catalog):
        schema = self._plan().schema(figure1_catalog)
        assert schema.names == (
            "H.HourDsc", "H.StartInterval", "H.EndInterval", "sum1", "sum2"
        )


class TestConstruction:
    def test_duplicate_output_names_rejected(self):
        block1 = ThetaBlock([count_star("c")], TRUE)
        block2 = ThetaBlock([count_star("c")], TRUE)
        with pytest.raises(SchemaError):
            GMDJ(ScanTable("A"), ScanTable("B"), [block1, block2])

    def test_empty_blocks_rejected(self):
        with pytest.raises(SchemaError):
            GMDJ(ScanTable("A"), ScanTable("B"), [])

    def test_md_arity_mismatch(self):
        with pytest.raises(SchemaError):
            md(ScanTable("A"), ScanTable("B"), [[count_star("c")]], [TRUE, TRUE])

    def test_output_names(self):
        plan = md(ScanTable("A"), ScanTable("B"),
                  [[count_star("c1")], [count_star("c2")]], [TRUE, TRUE])
        assert plan.output_names() == ["c1", "c2"]


@pytest.fixture
def small_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER)], [(1,), (2,), (2,), (3,)],
    ))
    catalog.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(1, 10), (1, 20), (2, 30), (4, 40), (None, 50)],
    ))
    return catalog


class TestEvaluation:
    def test_counts_per_base_row(self, small_catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt")]], [col("b.K") == col("r.K")])
        result = plan.evaluate(small_catalog)
        assert [row[1] for row in result.rows] == [2, 1, 1, 0]

    def test_duplicate_base_rows_each_get_counts(self, small_catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt")]], [col("b.K") == col("r.K")])
        result = plan.evaluate(small_catalog)
        assert result.as_multiset()[(2, 1)] == 2

    def test_empty_range_gives_sql_aggregates(self, small_catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt"), agg("sum", col("r.V"), "s")]],
                  [col("b.K") == col("r.K")])
        result = plan.evaluate(small_catalog)
        last = result.rows[-1]  # K=3 matches nothing
        assert last == (3, 0, None)

    def test_null_detail_key_matches_nothing(self, small_catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[agg("sum", col("r.V"), "s")]], [col("b.K") == col("r.K")])
        result = plan.evaluate(small_catalog)
        assert all(row[1] != 50 and (row[1] is None or row[1] < 50)
                   for row in result.rows)

    def test_hash_and_scan_paths_agree(self, small_catalog):
        equality = col("b.K") == col("r.K")
        # Force the scan path by phrasing the same predicate without a
        # factorable equality conjunct (<= and >= together).
        scan_form = (col("b.K") <= col("r.K")) & (col("b.K") >= col("r.K"))
        hash_result = md(ScanTable("B", "b"), ScanTable("R", "r"),
                         [[count_star("cnt")]], [equality]).evaluate(small_catalog)
        scan_result = md(ScanTable("B", "b"), ScanTable("R", "r"),
                         [[count_star("cnt")]], [scan_form]).evaluate(small_catalog)
        assert hash_result.bag_equal(scan_result)

    def test_true_condition_counts_all(self, small_catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt")]], [TRUE])
        result = plan.evaluate(small_catalog)
        assert all(row[1] == 5 for row in result.rows)

    def test_empty_base_yields_empty_output(self, small_catalog):
        empty = TableValue(Relation.from_columns([("K", DataType.INTEGER)], []))
        plan = md(empty, ScanTable("R", "r"), [[count_star("cnt")]], [TRUE])
        assert len(plan.evaluate(small_catalog)) == 0

    def test_empty_detail_yields_zero_counts(self, small_catalog):
        empty = TableValue(Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)], []
        ))
        plan = md(ScanTable("B", "b"), empty, [[count_star("cnt")]], [TRUE])
        result = plan.evaluate(small_catalog)
        assert all(row[1] == 0 for row in result.rows)

    def test_multiple_blocks_independent(self, small_catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("low")], [count_star("high")]],
                  [(col("b.K") == col("r.K")) & (col("r.V") < lit(25)),
                   (col("b.K") == col("r.K")) & (col("r.V") >= lit(25))])
        result = plan.evaluate(small_catalog)
        first = result.rows[0]  # K=1: V in {10, 20} low, none high
        assert (first[1], first[2]) == (2, 0)

    def test_aggregate_over_base_and_detail_condition(self, small_catalog):
        # theta may reference both sides arbitrarily (b.K < r.K).
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt")]], [col("b.K") < col("r.K")])
        result = plan.evaluate(small_catalog)
        by_key = {}
        for row in result.rows:
            by_key.setdefault(row[0], row[1])
        assert by_key == {1: 2, 2: 1, 3: 1}
