"""End-to-end integration tests: SQL over generated warehouses, all
strategies in agreement, paper examples reproduced."""

import pytest

from repro import QueryOptions, Database
from repro.algebra.expressions import col, lit
from repro.algebra.nested import Exists, NestedSelect, Subquery
from repro.algebra.operators import Project, ScanTable
from repro.bench import build_table1_catalog, table1_queries
from repro.data import (
    NetflowConfig,
    TpcrSizes,
    build_netflow_catalog,
    build_tpcr_catalog,
)
from repro.engine import make_executor

STRATEGIES = ("naive", "native", "unnest_join", "gmdj", "gmdj_optimized")


@pytest.fixture(scope="module")
def tpcr_db() -> Database:
    db = Database()
    catalog = build_tpcr_catalog(TpcrSizes(
        customers=60, orders=400, lineitems=300, parts=80, suppliers=15
    ))
    for name in catalog.table_names():
        db.register(name, catalog.table(name))
    db.create_index("orders", "custkey")
    return db


@pytest.fixture(scope="module")
def netflow_db() -> Database:
    db = Database()
    catalog = build_netflow_catalog(
        NetflowConfig(flows=600, hours=6, users=12, extra_source_ips=4,
                      seed=33)
    )
    for name in catalog.table_names():
        db.register(name, catalog.table(name))
    return db


TPCR_SQL = [
    "SELECT c.custkey FROM customer c WHERE EXISTS "
    "(SELECT * FROM orders o WHERE o.custkey = c.custkey AND "
    "o.totalprice > 300000)",

    "SELECT c.custkey FROM customer c WHERE NOT EXISTS "
    "(SELECT * FROM orders o WHERE o.custkey = c.custkey)",

    "SELECT c.custkey FROM customer c WHERE c.acctbal > "
    "(SELECT AVG(d.acctbal) FROM customer d WHERE "
    "d.mktsegment = c.mktsegment)",

    "SELECT p.partkey FROM part p WHERE p.retailprice >= ALL "
    "(SELECT q.retailprice FROM part q WHERE q.brand = p.brand)",

    "SELECT s.suppkey FROM supplier s WHERE s.nationkey IN "
    "(SELECT c.nationkey FROM customer c WHERE c.acctbal > 8000)",

    "SELECT c.custkey FROM customer c WHERE c.nationkey NOT IN "
    "(SELECT s.nationkey FROM supplier s)",

    "SELECT c.custkey FROM customer c WHERE 2 <= "
    "(SELECT COUNT(*) FROM orders o WHERE o.custkey = c.custkey AND "
    "o.orderpriority = '1-URGENT')",
]


class TestTpcrStrategiesAgree:
    @pytest.mark.parametrize("sql", TPCR_SQL,
                             ids=[f"q{i}" for i in range(len(TPCR_SQL))])
    def test_all_strategies_agree(self, tpcr_db, sql):
        reference = tpcr_db.execute_sql(sql, QueryOptions("naive"))
        for strategy in STRATEGIES[1:]:
            result = tpcr_db.execute_sql(sql, QueryOptions(strategy))
            assert reference.bag_equal(result), strategy

    def test_non_trivial_answers(self, tpcr_db):
        # Guard against degenerate workloads: at least some of the suite
        # must return non-empty, non-total answers.
        sizes = [len(tpcr_db.execute_sql(sql, QueryOptions("gmdj"))) for sql in TPCR_SQL]
        assert any(0 < size < 60 for size in sizes)


class TestNetflowScenarios:
    def test_hours_with_special_traffic(self, netflow_db):
        sql = (
            "SELECT h.HourDescription FROM Hours h WHERE EXISTS "
            "(SELECT * FROM Flow f WHERE f.StartTime >= h.StartInterval "
            "AND f.StartTime < h.EndInterval AND "
            "f.DestIP = '167.167.167.0')"
        )
        reference = netflow_db.execute_sql(sql, QueryOptions("naive"))
        for strategy in STRATEGIES[1:]:
            assert reference.bag_equal(netflow_db.execute_sql(sql, QueryOptions(strategy)))

    def test_example_3_3_active_users(self, netflow_db):
        """Double NOT EXISTS with a non-neighboring predicate."""
        inner = Exists(
            Subquery(
                ScanTable("Flow", "F"),
                (col("F.StartTime") >= col("H.StartInterval"))
                & (col("F.StartTime") < col("H.EndInterval"))
                & (col("F.SourceIP") == col("U.IPAddress")),
            ),
            negated=True,
        )
        query = NestedSelect(
            ScanTable("User", "U"),
            Exists(Subquery(ScanTable("Hours", "H"),
                            (col("H.StartInterval") >= lit(0)) & inner),
                   negated=True),
        )
        reference = netflow_db.execute(query, QueryOptions("naive"))
        gmdj = netflow_db.execute(query, QueryOptions("gmdj"))
        optimized = netflow_db.execute(query, QueryOptions("gmdj_optimized"))
        assert reference.bag_equal(gmdj)
        assert reference.bag_equal(optimized)

    def test_sources_without_ftp(self, netflow_db):
        sql = (
            "SELECT DISTINCT f.SourceIP FROM Flow f WHERE f.SourceIP NOT IN "
            "(SELECT g.SourceIP FROM Flow g WHERE g.Protocol = 'FTP')"
        )
        reference = netflow_db.execute_sql(sql, QueryOptions("naive"))
        for strategy in ("unnest_join", "gmdj", "gmdj_optimized"):
            assert reference.bag_equal(netflow_db.execute_sql(sql, QueryOptions(strategy)))


class TestTable1Harness:
    """The benchmark workload builders are themselves correct."""

    @pytest.fixture(scope="class")
    def setup(self):
        catalog = build_table1_catalog(outer=40, inner=300)
        return catalog, table1_queries()

    @pytest.mark.parametrize("rule", ["comparison", "agg_comparison", "some",
                                      "all", "exists", "not_exists"])
    def test_rule_workload_equivalence(self, setup, rule):
        catalog, queries = setup
        query = queries[rule]
        expected = make_executor(query, catalog, "naive")()
        for strategy in ("native", "gmdj", "gmdj_optimized"):
            result = make_executor(query, catalog, strategy)()
            assert expected.bag_equal(result), (rule, strategy)


class TestStatsShapes:
    def test_gmdj_detail_scans_constant_in_subquery_count(self, netflow_db):
        """Coalescing: n subqueries over Flow still scan Flow once."""

        def flows_to(dest, alias):
            return Subquery(
                ScanTable("Flow", alias),
                (col(f"{alias}.SourceIP") == col("F0.SourceIP"))
                & (col(f"{alias}.DestIP") == lit(dest)),
            )

        base = Project(ScanTable("Flow", "F0"), ["F0.SourceIP"],
                       distinct=True)
        one = NestedSelect(base, Exists(flows_to("167.167.167.0", "F1")))
        three = NestedSelect(
            base,
            Exists(flows_to("167.167.167.0", "F1"))
            & Exists(flows_to("168.168.168.0", "F2"))
            & Exists(flows_to("169.169.169.0", "F3")),
        )
        report_one = netflow_db.profile(one, QueryOptions("gmdj_optimized"))
        report_three = netflow_db.profile(three, QueryOptions("gmdj_optimized"))
        assert (report_three.counters["relation_scans"]
                == report_one.counters["relation_scans"])

    def test_naive_work_explodes_relative_to_gmdj(self, tpcr_db):
        sql = TPCR_SQL[0]
        naive = tpcr_db.profile_sql(sql, QueryOptions("naive"))
        gmdj = tpcr_db.profile_sql(sql, QueryOptions("gmdj_optimized"))
        assert naive.total_work > gmdj.total_work * 10
