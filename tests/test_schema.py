"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import (
    AmbiguousAttributeError,
    SchemaError,
    UnknownAttributeError,
)
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType


@pytest.fixture
def flow_schema() -> Schema:
    return Schema([
        Field("StartTime", DataType.INTEGER, "F"),
        Field("Protocol", DataType.STRING, "F"),
        Field("NumBytes", DataType.INTEGER, "F"),
    ])


class TestField:
    def test_full_name_qualified(self):
        assert Field("x", DataType.INTEGER, "T").full_name == "T.x"

    def test_full_name_bare(self):
        assert Field("x", DataType.INTEGER).full_name == "x"

    def test_matches_bare_reference(self):
        field = Field("x", DataType.INTEGER, "T")
        assert field.matches("x")

    def test_matches_qualified_reference(self):
        field = Field("x", DataType.INTEGER, "T")
        assert field.matches("T.x")
        assert not field.matches("U.x")

    def test_bare_field_does_not_match_qualified(self):
        assert not Field("x", DataType.INTEGER).matches("T.x")

    def test_with_qualifier(self):
        field = Field("x", DataType.INTEGER, "T").with_qualifier("U")
        assert field.full_name == "U.x"


class TestResolution:
    def test_index_of_qualified(self, flow_schema):
        assert flow_schema.index_of("F.Protocol") == 1

    def test_index_of_bare(self, flow_schema):
        assert flow_schema.index_of("NumBytes") == 2

    def test_unknown_reference(self, flow_schema):
        with pytest.raises(UnknownAttributeError):
            flow_schema.index_of("F.Missing")

    def test_ambiguous_bare_reference(self):
        schema = Schema([
            Field("k", DataType.INTEGER, "A"),
            Field("k", DataType.INTEGER, "B"),
        ])
        with pytest.raises(AmbiguousAttributeError):
            schema.index_of("k")

    def test_exact_full_name_beats_ambiguity(self):
        # An unqualified field named exactly like the reference wins even
        # when qualified same-named fields exist — index_of prefers the
        # exact full-name hit (load-bearing for translator identity links).
        schema = Schema([
            Field("k", DataType.INTEGER),
            Field("k", DataType.INTEGER, "B"),
        ])
        assert schema.index_of("k") == 0
        assert schema.index_of("B.k") == 1

    def test_has(self, flow_schema):
        assert flow_schema.has("F.StartTime")
        assert not flow_schema.has("F.Nothing")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema([
                Field("x", DataType.INTEGER, "T"),
                Field("x", DataType.STRING, "T"),
            ])

    def test_field_of(self, flow_schema):
        assert flow_schema.field_of("F.Protocol").dtype is DataType.STRING


class TestTransforms:
    def test_rename_changes_all_qualifiers(self, flow_schema):
        renamed = flow_schema.rename("G")
        assert renamed.names == ("G.StartTime", "G.Protocol", "G.NumBytes")

    def test_concat(self, flow_schema):
        other = Schema([Field("id", DataType.INTEGER, "U")])
        combined = flow_schema.concat(other)
        assert len(combined) == 4
        assert combined.index_of("U.id") == 3

    def test_project_reorders(self, flow_schema):
        projected = flow_schema.project(["F.NumBytes", "F.StartTime"])
        assert projected.names == ("F.NumBytes", "F.StartTime")

    def test_extend(self, flow_schema):
        extended = flow_schema.extend([Field("cnt", DataType.INTEGER)])
        assert extended.index_of("cnt") == 3

    def test_qualifiers(self, flow_schema):
        assert flow_schema.qualifiers() == {"F"}

    def test_of_constructor(self):
        schema = Schema.of(("a", DataType.INTEGER), ("b", DataType.STRING),
                           qualifier="T")
        assert schema.names == ("T.a", "T.b")

    def test_equality(self, flow_schema):
        same = Schema(list(flow_schema.fields))
        assert schema_eq(flow_schema, same)

    def test_iteration_order(self, flow_schema):
        assert [f.name for f in flow_schema] == [
            "StartTime", "Protocol", "NumBytes"
        ]


def schema_eq(a: Schema, b: Schema) -> bool:
    return a == b
