"""The linter's soundness contract over real query corpora.

Three angles:

* every checked-in fuzz corpus case — queries the SQLite oracle accepts —
  lints clean at error severity, for the bound query and both GMDJ
  translations;
* the PR 1 translator regression (NULL-unsafe identity links) is caught
  *statically* when re-seeded via monkeypatch;
* the differential fuzz runner surfaces lint findings as divergences of
  the pseudo-engine ``"lint"`` and survives a crashing linter.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import Database, DataType
from repro.algebra.expressions import Comparison
from repro.fuzz.datagen import DatabaseSpec
from repro.fuzz.oracle import lint_findings, run_differential
from repro.fuzz.runner import load_corpus
from repro.lint import lint_plan
from repro.unnesting import translate
from repro.unnesting.translate import subquery_to_gmdj

CORPUS_DIR = Path(__file__).parent / "corpus"


def _database_of(data: dict) -> Database:
    dbspec = DatabaseSpec.from_json(data["tables"])
    database = Database()
    for name, spec in dbspec.tables.items():
        database.create_table(name, list(spec.columns), spec.rows)
    return database


def _corpus_cases():
    return load_corpus(CORPUS_DIR)


@pytest.mark.parametrize(
    "path,data", _corpus_cases(), ids=lambda v: v.name if isinstance(v, Path) else ""
)
def test_corpus_case_lints_clean(path, data):
    database = _database_of(data)
    findings = lint_findings(database, data["sql"])
    rendered = [f"{label}: {d.render()}" for label, d in findings]
    assert findings == [], rendered


def test_corpus_is_not_empty():
    assert len(_corpus_cases()) >= 1


class TestSeededTranslatorBug:
    """Re-seed the identity-link bug PR 1 fixed; the linter must see it."""

    SQL = (
        "SELECT C.CID FROM CUSTOMER C WHERE EXISTS "
        "(SELECT O.OID FROM ORDERS O WHERE O.CID = C.CID AND O.AMT > "
        "(SELECT AVG(P.AMT) FROM PAYMENTS P WHERE P.CID = C.CID))"
    )

    @pytest.fixture
    def orders_db(self) -> Database:
        db = Database()
        db.create_table(
            "CUSTOMER",
            [("CID", DataType.INTEGER), ("GRADE", DataType.INTEGER)],
            [(1, 10), (2, None), (3, 30)],
        )
        db.create_table(
            "ORDERS",
            [("OID", DataType.INTEGER), ("CID", DataType.INTEGER),
             ("AMT", DataType.INTEGER)],
            [(1, 1, 5), (2, 2, 7), (3, 3, 9)],
        )
        db.create_table(
            "PAYMENTS",
            [("PID", DataType.INTEGER), ("CID", DataType.INTEGER),
             ("AMT", DataType.INTEGER)],
            [(1, 1, 4), (2, 2, 6)],
        )
        return db

    def test_healthy_translation_lints_clean(self, orders_db):
        plan = subquery_to_gmdj(orders_db.sql(self.SQL), orders_db.catalog)
        report = lint_plan(plan, orders_db.catalog, advice=False)
        assert report.ok, report.render()

    def test_seeded_bug_caught_statically(self, orders_db, monkeypatch):
        monkeypatch.setattr(
            translate, "_null_safe_equal",
            lambda left, right: Comparison("=", left, right),
        )
        plan = subquery_to_gmdj(orders_db.sql(self.SQL), orders_db.catalog)
        report = lint_plan(plan, orders_db.catalog, advice=False)
        assert not report.ok
        assert {d.code for d in report.errors} == {"L007"}
        (diag,) = report.errors
        assert "__p1" in diag.message
        assert "NULL" in diag.message


class TestFuzzRunnerHook:
    @pytest.fixture
    def case(self):
        cases = _corpus_cases()
        assert cases
        return cases[0][1]

    def test_oracle_accepted_case_has_no_lint_divergence(self, case):
        dbspec = DatabaseSpec.from_json(case["tables"])
        outcome = run_differential(dbspec, case["sql"], case["sqlite_sql"])
        lint_divergences = [
            d for d in outcome.divergences if d.engine == "lint"
        ]
        assert lint_divergences == []

    def test_lint_finding_becomes_divergence(self, case, monkeypatch):
        from repro.fuzz import oracle
        from repro.lint import PlanDiagnostic

        fake = PlanDiagnostic("L007", "seeded for the hook test", "plan")
        monkeypatch.setattr(
            oracle, "lint_findings", lambda db, sql: [("gmdj", fake)]
        )
        dbspec = DatabaseSpec.from_json(case["tables"])
        outcome = run_differential(dbspec, case["sql"], case["sqlite_sql"])
        lint_divergences = [
            d for d in outcome.divergences if d.engine == "lint"
        ]
        assert len(lint_divergences) == 1
        assert lint_divergences[0].kind == "lint-error"
        assert "L007" in lint_divergences[0].detail
        # The pseudo-engine must not count toward engines_run.
        baseline = run_differential(dbspec, case["sql"], case["sqlite_sql"])
        assert outcome.engines_run == baseline.engines_run

    def test_crashing_linter_becomes_divergence(self, case, monkeypatch):
        from repro.fuzz import oracle

        def boom(db, sql):
            raise RuntimeError("deliberately broken linter")

        monkeypatch.setattr(oracle, "lint_findings", boom)
        dbspec = DatabaseSpec.from_json(case["tables"])
        outcome = run_differential(dbspec, case["sql"], case["sqlite_sql"])
        crashed = [
            d for d in outcome.divergences
            if d.engine == "lint" and "linter crashed" in d.detail
        ]
        assert len(crashed) == 1
