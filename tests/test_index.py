"""Unit tests for repro.storage.index."""

import pytest

from repro.storage import DataType, HashIndex, Relation, SortedIndex, collect


@pytest.fixture
def relation() -> Relation:
    return Relation.from_columns(
        [("k", DataType.INTEGER), ("g", DataType.STRING),
         ("v", DataType.INTEGER)],
        [(1, "a", 10), (2, "a", 20), (1, "b", 30), (None, "c", 40),
         (3, None, 50)],
    )


class TestHashIndex:
    def test_probe_returns_all_matches(self, relation):
        index = HashIndex(relation, ["k"])
        assert len(index.probe((1,))) == 2

    def test_probe_miss(self, relation):
        index = HashIndex(relation, ["k"])
        assert index.probe((99,)) == []

    def test_null_keys_never_indexed(self, relation):
        index = HashIndex(relation, ["k"])
        assert index.probe((None,)) == []

    def test_null_in_composite_key_skipped(self, relation):
        index = HashIndex(relation, ["k", "g"])
        assert index.probe((3, None)) == []
        assert len(index.probe((1, "a"))) == 1

    def test_composite_key(self, relation):
        index = HashIndex(relation, ["k", "g"])
        rows = index.probe((1, "b"))
        assert rows == [(1, "b", 30)]

    def test_contains(self, relation):
        index = HashIndex(relation, ["k"])
        assert index.contains((2,))
        assert not index.contains((9,))

    def test_probe_positions(self, relation):
        index = HashIndex(relation, ["k"])
        assert index.probe_positions((1,)) == [0, 2]

    def test_len_counts_distinct_keys(self, relation):
        index = HashIndex(relation, ["k"])
        assert len(index) == 3  # keys 1, 2, 3 (NULL excluded)

    def test_probe_charges_stats(self, relation):
        index = HashIndex(relation, ["k"])
        with collect() as stats:
            index.probe((1,))
        assert stats.index_probes == 1

    def test_build_charges_stats(self, relation):
        with collect() as stats:
            HashIndex(relation, ["k"])
        assert stats.index_builds == 1


class TestSortedIndex:
    def test_range_half_open(self, relation):
        index = SortedIndex(relation, "v")
        values = [row[2] for row in index.range(10, 30)]
        assert values == [10, 20]

    def test_range_inclusive_high(self, relation):
        index = SortedIndex(relation, "v")
        values = [row[2] for row in index.range(10, 30, high_inclusive=True)]
        assert values == [10, 20, 30]

    def test_range_exclusive_low(self, relation):
        index = SortedIndex(relation, "v")
        values = [row[2] for row in index.range(10, None, low_inclusive=False)]
        assert values == [20, 30, 40, 50]

    def test_range_unbounded(self, relation):
        index = SortedIndex(relation, "v")
        assert len(list(index.range())) == 5

    def test_equal(self, relation):
        index = SortedIndex(relation, "k")
        assert len(list(index.equal(1))) == 2

    def test_null_keys_excluded(self, relation):
        index = SortedIndex(relation, "k")
        assert len(index) == 4
