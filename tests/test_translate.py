"""Tests for Algorithm SubqueryToGMDJ: translation ≡ nested semantics.

Every test builds a nested query, evaluates it with the tuple-iteration
reference semantics, translates it to a GMDJ plan (optimized and not),
and requires identical bags.
"""

import pytest

from repro.algebra.aggregates import agg
from repro.algebra.expressions import Not, TRUE, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    in_predicate,
    not_in_predicate,
)
from repro.algebra.operators import Project, ScanTable, Select
from repro.errors import TranslationError
from repro.gmdj import GMDJ
from repro.storage import Catalog, DataType, Relation
from repro.unnesting import subquery_to_gmdj


def assert_translates(query, catalog):
    """Reference semantics == plain translation == optimized translation."""
    expected = query.evaluate(catalog)
    plain = subquery_to_gmdj(query, catalog).evaluate(catalog)
    optimized = subquery_to_gmdj(query, catalog, optimize=True).evaluate(catalog)
    assert expected.bag_equal(plain), "plain GMDJ translation diverges"
    assert expected.bag_equal(optimized), "optimized GMDJ translation diverges"
    return expected


def b_scan():
    return ScanTable("B", "b")


def r_sub(predicate=None, item=None, aggregate=None, alias="r"):
    default = col(f"{alias}.K") == col("b.K")
    return Subquery(ScanTable("R", alias),
                    predicate if predicate is not None else default,
                    item=item, aggregate=aggregate)


class TestTable1Forms:
    def test_exists(self, kv_catalog):
        assert_translates(NestedSelect(b_scan(), Exists(r_sub())), kv_catalog)

    def test_not_exists(self, kv_catalog):
        assert_translates(
            NestedSelect(b_scan(), Exists(r_sub(), negated=True)), kv_catalog
        )

    def test_some(self, kv_catalog):
        query = NestedSelect(
            b_scan(),
            QuantifiedComparison(">", "some", col("b.X"), r_sub(item=col("r.Y"))),
        )
        assert_translates(query, kv_catalog)

    def test_all(self, kv_catalog):
        query = NestedSelect(
            b_scan(),
            QuantifiedComparison(">", "all", col("b.X"), r_sub(item=col("r.Y"))),
        )
        assert_translates(query, kv_catalog)

    def test_in(self, kv_catalog):
        query = NestedSelect(
            b_scan(),
            in_predicate(col("b.X"), Subquery(ScanTable("R", "r"), TRUE,
                                              item=col("r.Y"))),
        )
        assert_translates(query, kv_catalog)

    def test_not_in(self, kv_catalog):
        query = NestedSelect(
            b_scan(),
            not_in_predicate(col("b.X"), Subquery(ScanTable("R", "r"), TRUE,
                                                   item=col("r.Y"))),
        )
        assert_translates(query, kv_catalog)

    def test_aggregate_comparison(self, kv_catalog):
        query = NestedSelect(
            b_scan(),
            ScalarComparison(">", col("b.X"),
                             r_sub(aggregate=agg("sum", col("r.Y"), "s"))),
        )
        assert_translates(query, kv_catalog)

    def test_count_comparison(self, kv_catalog):
        query = NestedSelect(
            b_scan(),
            ScalarComparison("<=", lit(1),
                             r_sub(aggregate=agg("count", None, "c"))),
        )
        assert_translates(query, kv_catalog)

    def test_output_schema_matches_source(self, kv_catalog):
        query = NestedSelect(b_scan(), Exists(r_sub()))
        plan = subquery_to_gmdj(query, kv_catalog)
        assert plan.schema(kv_catalog).names == ("b.K", "b.X")


class TestFootnote2:
    """ALL is not MAX: the paper's footnote 2, verified end to end."""

    @pytest.fixture
    def catalog(self):
        cat = Catalog()
        cat.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(0, 5), (1, 5)],
        ))
        # K=0 correlates to an empty range; K=1 to a NULL Y.
        cat.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
            [(1, None)],
        ))
        return cat

    def test_all_true_on_empty_range(self, catalog):
        query = NestedSelect(
            b_scan(),
            QuantifiedComparison(">", "all", col("b.X"), r_sub(item=col("r.Y"))),
        )
        result = assert_translates(query, catalog)
        kept = {row[0] for row in result.rows}
        assert 0 in kept  # ALL over empty range is TRUE
        assert 1 not in kept  # 5 > NULL is UNKNOWN

    def test_max_rewrite_differs(self, catalog):
        # x > MAX(range) drops the empty-range tuple — proving the naive
        # aggregate rewrite is NOT equivalent to ALL.
        max_query = NestedSelect(
            b_scan(),
            ScalarComparison(">", col("b.X"),
                             r_sub(aggregate=agg("max", col("r.Y"), "m"))),
        )
        result = assert_translates(max_query, catalog)
        assert {row[0] for row in result.rows} == set()


class TestCompositePredicates:
    def test_conjunction_of_three_subqueries(self, kv_catalog):
        predicate = (
            Exists(r_sub(alias="r1"))
            & Exists(r_sub((col("r2.K") == col("b.K")) & (col("r2.Y") > lit(5)),
                           alias="r2"), negated=True)
            & (col("b.X") > lit(0))
        )
        assert_translates(NestedSelect(b_scan(), predicate), kv_catalog)

    def test_disjunction_of_subqueries(self, kv_catalog):
        predicate = Exists(r_sub(alias="r1")) | (col("b.X") > lit(8))
        assert_translates(NestedSelect(b_scan(), predicate), kv_catalog)

    def test_negated_conjunction(self, kv_catalog):
        predicate = Not(Exists(r_sub()) & (col("b.X") > lit(3)))
        assert_translates(NestedSelect(b_scan(), predicate), kv_catalog)

    def test_subquery_under_or_with_not(self, kv_catalog):
        predicate = Not(Exists(r_sub())) | (col("b.X") < lit(2))
        assert_translates(NestedSelect(b_scan(), predicate), kv_catalog)

    def test_coalesced_plan_has_single_gmdj(self, kv_catalog):
        predicate = Exists(r_sub(alias="r1")) & Exists(
            r_sub((col("r2.K") == col("b.K")) & (col("r2.Y") > lit(3)),
                  alias="r2"), negated=True)
        plan = subquery_to_gmdj(NestedSelect(b_scan(), predicate), kv_catalog,
                                optimize=True, completion=False)

        def gmdj_count(node):
            total = isinstance(node, GMDJ)
            for child in getattr(node, "children", lambda: ())():
                total += gmdj_count(child)
            return total

        assert gmdj_count(plan) == 1


class TestLinearNesting:
    def test_depth_two_neighboring(self, kv_catalog):
        # EXISTS (R1 where R1.K = b.K and EXISTS (R2 where R2.K = R1.K))
        inner = Exists(Subquery(ScanTable("R", "r2"),
                                col("r2.K") == col("r1.K")))
        outer = Subquery(ScanTable("R", "r1"),
                         (col("r1.K") == col("b.K")) & inner)
        assert_translates(NestedSelect(b_scan(), Exists(outer)), kv_catalog)

    def test_depth_two_not_exists_chain(self, kv_catalog):
        inner = Exists(Subquery(ScanTable("R", "r2"),
                                (col("r2.K") == col("r1.K"))
                                & (col("r2.Y") > lit(5))), negated=True)
        outer = Subquery(ScanTable("R", "r1"),
                         (col("r1.K") == col("b.K")) & inner)
        assert_translates(
            NestedSelect(b_scan(), Exists(outer, negated=True)), kv_catalog
        )

    def test_depth_three(self, kv_catalog):
        level3 = Exists(Subquery(ScanTable("R", "r3"),
                                 col("r3.K") == col("r2.K")))
        level2 = Exists(Subquery(ScanTable("R", "r2"),
                                 (col("r2.K") == col("r1.K")) & level3))
        level1 = Exists(Subquery(ScanTable("R", "r1"),
                                 (col("r1.K") == col("b.K")) & level2))
        assert_translates(NestedSelect(b_scan(), level1), kv_catalog)

    def test_quantifier_inside_exists(self, kv_catalog):
        inner = QuantifiedComparison(
            ">", "all", col("r1.Y"),
            Subquery(ScanTable("R", "r2"), col("r2.K") == col("r1.K"),
                     item=col("r2.Y")),
        )
        outer = Subquery(ScanTable("R", "r1"),
                         (col("r1.K") == col("b.K")) & inner)
        assert_translates(NestedSelect(b_scan(), Exists(outer)), kv_catalog)


class TestNonNeighboring:
    @pytest.fixture
    def catalog(self):
        cat = Catalog()
        cat.create_table("U", Relation.from_columns(
            [("uid", DataType.INTEGER), ("ip", DataType.STRING)],
            [(1, "a"), (2, "b"), (3, "c")],
        ))
        cat.create_table("H", Relation.from_columns(
            [("hid", DataType.INTEGER)], [(10,), (11,)],
        ))
        cat.create_table("F", Relation.from_columns(
            [("hid", DataType.INTEGER), ("ip", DataType.STRING)],
            [(10, "a"), (11, "a"), (10, "b"), (11, "c")],
        ))
        return cat

    def test_example_3_3_shape(self, catalog):
        """Users with traffic in every hour (double NOT EXISTS)."""
        inner = Exists(Subquery(ScanTable("F", "f"),
                                (col("f.hid") == col("h.hid"))
                                & (col("f.ip") == col("u.ip"))),  # 2 levels out
                       negated=True)
        mid = Exists(Subquery(ScanTable("H", "h"), TRUE & inner), negated=True)
        query = NestedSelect(ScanTable("U", "u"), mid)
        result = assert_translates(query, catalog)
        assert {row[1] for row in result.rows} == {"a"}

    def test_non_neighboring_some(self, catalog):
        inner = QuantifiedComparison(
            "=", "some", col("u.uid"),
            Subquery(ScanTable("F", "f"), col("f.hid") == col("h.hid"),
                     item=col("f.hid")),
        )
        # u.uid never equals an hid (1-3 vs 10-11) so nothing survives,
        # but translation must agree with the reference, not crash.
        mid = Exists(Subquery(ScanTable("H", "h"), inner))
        assert_translates(NestedSelect(ScanTable("U", "u"), mid), catalog)

    def test_depth_three_non_neighboring(self, catalog):
        # F-level references u.ip across *two* intermediate scopes.
        level3 = Exists(Subquery(ScanTable("F", "f2"),
                                 (col("f2.ip") == col("u.ip"))
                                 & (col("f2.hid") == col("f.hid"))))
        level2 = Exists(Subquery(ScanTable("F", "f"),
                                 (col("f.hid") == col("h.hid")) & level3))
        level1 = Exists(Subquery(ScanTable("H", "h"), level2), negated=True)
        assert_translates(NestedSelect(ScanTable("U", "u"), level1), catalog)

    def test_unresolvable_reference_raises(self, catalog):
        bad = Exists(Subquery(ScanTable("F", "f"),
                              col("f.ip") == col("nosuch.ref")))
        with pytest.raises(TranslationError):
            subquery_to_gmdj(NestedSelect(ScanTable("U", "u"), bad), catalog)


class TestStructural:
    def test_no_subqueries_becomes_plain_select(self, kv_catalog):
        query = NestedSelect(b_scan(), col("b.X") > lit(2))
        plan = subquery_to_gmdj(query, kv_catalog)
        assert isinstance(plan, Select)
        assert query.evaluate(kv_catalog).bag_equal(plan.evaluate(kv_catalog))

    def test_nested_select_inside_project(self, kv_catalog):
        query = Project(NestedSelect(b_scan(), Exists(r_sub())), ["b.K"])
        plan = subquery_to_gmdj(query, kv_catalog)
        assert query.evaluate(kv_catalog).bag_equal(plan.evaluate(kv_catalog))

    def test_nested_base_values_table(self, kv_catalog):
        # Example 2.2 shape: the base-values table is itself nested.
        base = NestedSelect(b_scan(), Exists(r_sub(alias="ri")))
        query = NestedSelect(base, Exists(r_sub(alias="ro"), negated=True))
        assert_translates(query, kv_catalog)

    def test_duplicates_in_base_preserved(self):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(1, 1), (1, 1), (2, 2)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], [(1, 9)],
        ))
        query = NestedSelect(b_scan(), Exists(r_sub()))
        result = assert_translates(query, catalog)
        assert result.as_multiset()[(1, 1)] == 2
