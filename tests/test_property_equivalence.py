"""Property-based tests: strategy equivalence on random databases/queries.

The master invariant of the whole library: for any database instance and
any nested query from the supported grammar, the GMDJ translation (plain
and optimized), the smart native loop, and — where it applies — join
unnesting must return exactly the bag that tuple-iteration semantics
defines.  NULLs are injected everywhere so three-valued logic stays hot.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import agg
from repro.algebra.expressions import TRUE, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
)
from repro.algebra.operators import ScanTable
from repro.baselines import evaluate_join_unnest, evaluate_naive, evaluate_native
from repro.errors import TranslationError
from repro.gmdj.modes import evaluate_plan_chunked, evaluate_plan_partitioned
from repro.storage import Catalog, DataType, Relation
from repro.unnesting import subquery_to_gmdj

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_int = st.one_of(st.none(), st.integers(min_value=0, max_value=6))


@st.composite
def databases(draw):
    catalog = Catalog()
    b_rows = draw(st.lists(st.tuples(small_int, small_int), min_size=0,
                           max_size=8))
    r_rows = draw(st.lists(st.tuples(small_int, small_int), min_size=0,
                           max_size=12))
    catalog.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)], b_rows,
    ))
    catalog.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], r_rows,
    ))
    return catalog


comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
quantifiers = st.sampled_from(["some", "all"])
agg_functions = st.sampled_from(["count", "sum", "avg", "min", "max"])


@st.composite
def inner_conditions(draw, alias="r"):
    """A subquery-local θ: correlation and/or a local filter."""
    conjuncts = []
    if draw(st.booleans()):
        conjuncts.append(col(f"{alias}.K") == col("b.K"))
    if draw(st.booleans()):
        op = draw(comparison_ops)
        from repro.algebra.expressions import Comparison

        conjuncts.append(Comparison(op, col(f"{alias}.Y"),
                                    lit(draw(st.integers(0, 6)))))
    if not conjuncts:
        return TRUE
    predicate = conjuncts[0]
    for extra in conjuncts[1:]:
        predicate = predicate & extra
    return predicate


@st.composite
def subquery_leaves(draw, alias="r"):
    theta = draw(inner_conditions(alias))
    kind = draw(st.sampled_from(["exists", "not_exists", "some", "all",
                                 "agg"]))
    if kind == "exists":
        return Exists(Subquery(ScanTable("R", alias), theta))
    if kind == "not_exists":
        return Exists(Subquery(ScanTable("R", alias), theta), negated=True)
    if kind == "agg":
        function = draw(agg_functions)
        argument = None if function == "count" else col(f"{alias}.Y")
        return ScalarComparison(
            draw(comparison_ops), col("b.X"),
            Subquery(ScanTable("R", alias), theta,
                     aggregate=agg(function, argument, "v")),
        )
    return QuantifiedComparison(
        draw(comparison_ops), kind, col("b.X"),
        Subquery(ScanTable("R", alias), theta, item=col(f"{alias}.Y")),
    )


@st.composite
def predicates(draw):
    first = draw(subquery_leaves("r1"))
    shape = draw(st.sampled_from(["single", "and", "or", "not"]))
    if shape == "single":
        return first
    if shape == "not":
        from repro.algebra.expressions import Not

        return Not(first)
    second = draw(
        st.one_of(
            subquery_leaves("r2"),
            st.builds(lambda v: col("b.X") > lit(v), st.integers(0, 6)),
        )
    )
    if shape == "and":
        return first & second
    return first | second


class TestTranslationEquivalence:
    @SETTINGS
    @given(catalog=databases(), predicate=predicates())
    def test_gmdj_translation_matches_reference(self, catalog, predicate):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        expected = evaluate_naive(NestedSelect(ScanTable("B", "b"), predicate),
                                  catalog)
        plain = subquery_to_gmdj(query, catalog).evaluate(catalog)
        assert expected.bag_equal(plain)

    @SETTINGS
    @given(catalog=databases(), predicate=predicates())
    def test_optimizer_preserves_semantics(self, catalog, predicate):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        expected = subquery_to_gmdj(query, catalog).evaluate(catalog)
        optimized = subquery_to_gmdj(query, catalog, optimize=True).evaluate(
            catalog
        )
        assert expected.bag_equal(optimized)

    @SETTINGS
    @given(catalog=databases(), predicate=predicates())
    def test_native_loop_matches_reference(self, catalog, predicate):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        expected = evaluate_naive(NestedSelect(ScanTable("B", "b"), predicate),
                                  catalog)
        native = evaluate_native(query, catalog)
        assert expected.bag_equal(native)

    @SETTINGS
    @given(catalog=databases(), predicate=predicates())
    def test_join_unnesting_matches_where_supported(self, catalog, predicate):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        try:
            joined = evaluate_join_unnest(query, catalog)
        except TranslationError:
            return  # disjunctions etc. are legitimately unsupported
        expected = evaluate_naive(NestedSelect(ScanTable("B", "b"), predicate),
                                  catalog)
        assert expected.bag_equal(joined)


class TestFragmentedEvaluation:
    """The evaluation *modes* preserve the same master invariant.

    Chunked (memory-bounded) and partitioned (parallel merge) execution
    of the translated plan must agree with the tuple-iteration reference
    on the exact same random inputs the strategy tests use — including
    the partitioned AVG reconstruction (SUM/COUNT recombination) and
    empty fragments when partitions exceed the detail cardinality.
    """

    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           memory_tuples=st.integers(min_value=1, max_value=5))
    def test_chunked_matches_reference(self, catalog, predicate,
                                       memory_tuples):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        expected = evaluate_naive(NestedSelect(ScanTable("B", "b"), predicate),
                                  catalog)
        plan = subquery_to_gmdj(query, catalog)
        chunked = evaluate_plan_chunked(plan, catalog, memory_tuples)
        assert expected.bag_equal(chunked)

    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           partitions=st.integers(min_value=1, max_value=6))
    def test_partitioned_matches_reference(self, catalog, predicate,
                                           partitions):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        expected = evaluate_naive(NestedSelect(ScanTable("B", "b"), predicate),
                                  catalog)
        plan = subquery_to_gmdj(query, catalog)
        partitioned = evaluate_plan_partitioned(plan, catalog, partitions)
        assert expected.bag_equal(partitioned)

    @SETTINGS
    @given(catalog=databases(), predicate=predicates())
    def test_modes_agree_on_optimized_plans(self, catalog, predicate):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog, optimize=True)
        expected = plan.evaluate(catalog)
        assert expected.bag_equal(evaluate_plan_chunked(plan, catalog, 2))
        assert expected.bag_equal(evaluate_plan_partitioned(plan, catalog, 3))


class TestLinearNestingProperty:
    @SETTINGS
    @given(catalog=databases(), op=comparison_ops,
           negate_outer=st.booleans(), negate_inner=st.booleans())
    def test_depth_two_chains(self, catalog, op, negate_outer, negate_inner):
        from repro.algebra.expressions import Comparison

        inner = Exists(
            Subquery(ScanTable("R", "r2"),
                     Comparison(op, col("r2.Y"), col("r1.Y"))),
            negated=negate_inner,
        )
        outer = Subquery(ScanTable("R", "r1"),
                         (col("r1.K") == col("b.K")) & inner)
        query = NestedSelect(ScanTable("B", "b"),
                             Exists(outer, negated=negate_outer))
        expected = evaluate_naive(
            NestedSelect(ScanTable("B", "b"),
                         Exists(outer, negated=negate_outer)),
            catalog,
        )
        translated = subquery_to_gmdj(query, catalog).evaluate(catalog)
        assert expected.bag_equal(translated)
