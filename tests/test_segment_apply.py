"""Tests for SEGMENT-APPLY-style segmented evaluation."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import agg
from repro.algebra.apply_op import Apply, evaluate_segmented
from repro.algebra.expressions import col, lit
from repro.algebra.nested import Subquery
from repro.algebra.operators import ScanTable
from repro.errors import TranslationError
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def catalog(kv_catalog) -> Catalog:
    return kv_catalog


def sub(predicate=None, item=None, aggregate=None):
    return Subquery(ScanTable("R", "r"),
                    predicate if predicate is not None
                    else col("r.K") == col("b.K"),
                    item=item, aggregate=aggregate)


class TestSegmentedEquivalence:
    @pytest.mark.parametrize("mode,kwargs", [
        ("semi", {}),
        ("anti", {}),
        ("aggregate", {"aggregate": agg("sum", col("r.Y"), "s")}),
    ])
    def test_matches_looping_apply(self, catalog, mode, kwargs):
        apply = Apply(ScanTable("B", "b"), sub(**kwargs), mode,
                      output_name="v")
        looped = apply.evaluate(catalog)
        segmented = evaluate_segmented(apply, catalog)
        assert looped.bag_equal(segmented)

    def test_with_residual_filter(self, catalog):
        predicate = (col("r.K") == col("b.K")) & (col("r.Y") > lit(3))
        apply = Apply(ScanTable("B", "b"), sub(predicate), "semi")
        assert apply.evaluate(catalog).bag_equal(
            evaluate_segmented(apply, catalog)
        )

    def test_scalar_mode(self, catalog):
        predicate = (col("r.K") == col("b.K")) & (col("r.Y") == lit(4))
        apply = Apply(ScanTable("B", "b"), sub(predicate, item=col("r.Y")),
                      "scalar", output_name="v")
        assert apply.evaluate(catalog).bag_equal(
            evaluate_segmented(apply, catalog)
        )

    def test_requires_equality_correlation(self, catalog):
        apply = Apply(ScanTable("B", "b"),
                      sub(col("r.K") != col("b.K")), "semi")
        with pytest.raises(TranslationError):
            evaluate_segmented(apply, catalog)

    def test_single_detail_scan(self, catalog):
        apply = Apply(ScanTable("B", "b"), sub(), "semi")
        with collect() as loop_stats:
            apply.evaluate(catalog)
        with collect() as segment_stats:
            evaluate_segmented(apply, catalog)
        assert segment_stats.relation_scans < loop_stats.relation_scans
        assert segment_stats.index_probes >= 6  # one per outer tuple


class TestSegmentedProperty:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        rows=st.lists(
            st.tuples(st.one_of(st.none(), st.integers(0, 4)),
                      st.one_of(st.none(), st.integers(0, 9))),
            min_size=0, max_size=25,
        ),
        mode=st.sampled_from(["semi", "anti", "aggregate"]),
    )
    def test_random_data(self, rows, mode):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(i, i) for i in range(5)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], rows,
        ))
        kwargs = (
            {"aggregate": agg("max", col("r.Y"), "m")}
            if mode == "aggregate" else {}
        )
        apply = Apply(ScanTable("B", "b"), sub(**kwargs), mode,
                      output_name="v")
        assert apply.evaluate(catalog).bag_equal(
            evaluate_segmented(apply, catalog)
        )
