"""Unit tests for repro.storage.relation."""

import pytest

from repro.errors import SchemaError, TypeCheckError
from repro.storage import DataType, Relation, collect


@pytest.fixture
def numbers() -> Relation:
    return Relation.from_columns(
        [("k", DataType.INTEGER), ("v", DataType.STRING)],
        [(1, "a"), (2, "b"), (1, "a"), (3, None)],
    )


class TestConstruction:
    def test_row_count(self, numbers):
        assert len(numbers) == 4

    def test_arity(self, numbers):
        assert numbers.arity() == 2

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_columns([("k", DataType.INTEGER)], [(1, 2)])

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeCheckError):
            Relation.from_columns([("k", DataType.INTEGER)], [("one",)])

    def test_float_column_widens_ints(self):
        relation = Relation.from_columns([("x", DataType.FLOAT)], [(1,)])
        assert isinstance(relation.rows[0][0], float)

    def test_insert_validates(self, numbers):
        with pytest.raises(TypeCheckError):
            numbers.insert(("x", "y"))

    def test_extend(self, numbers):
        numbers.extend([(9, "z")])
        assert len(numbers) == 5

    def test_qualifier_in_from_columns(self):
        relation = Relation.from_columns(
            [("k", DataType.INTEGER)], [(1,)], qualifier="T"
        )
        assert relation.schema.names == ("T.k",)


class TestBagSemantics:
    def test_duplicates_preserved(self, numbers):
        assert numbers.as_multiset()[(1, "a")] == 2

    def test_bag_equal_ignores_order(self, numbers):
        shuffled = Relation(numbers.schema, reversed(numbers.rows))
        assert numbers.bag_equal(shuffled)

    def test_bag_equal_detects_multiplicity(self, numbers):
        fewer = Relation(numbers.schema, [(1, "a"), (2, "b"), (3, None)])
        assert not numbers.bag_equal(fewer)

    def test_bag_equal_arity_mismatch(self, numbers):
        other = Relation.from_columns([("k", DataType.INTEGER)], [(1,)])
        assert not numbers.bag_equal(other)

    def test_distinct(self, numbers):
        assert len(numbers.distinct()) == 3

    def test_distinct_preserves_first_occurrence_order(self, numbers):
        assert numbers.distinct().rows[0] == (1, "a")


class TestAccess:
    def test_column(self, numbers):
        assert numbers.column("k") == [1, 2, 1, 3]

    def test_sorted_by_nulls_first(self, numbers):
        ordered = numbers.sorted_by("v")
        assert ordered.rows[0] == (3, None)

    def test_sorted_by_multiple_keys(self, numbers):
        ordered = numbers.sorted_by("k", "v")
        assert [row[0] for row in ordered.rows] == [1, 1, 2, 3]

    def test_filter_rows(self, numbers):
        assert len(numbers.filter_rows(lambda r: r[0] == 1)) == 2

    def test_rename_view_keeps_rows(self, numbers):
        renamed = numbers.rename("N")
        assert renamed.schema.names == ("N.k", "N.v")
        assert renamed.rows == numbers.rows

    def test_scan_charges_iostats(self, numbers):
        with collect() as stats:
            list(numbers.scan())
        assert stats.relation_scans == 1
        assert stats.tuples_scanned == 4
        assert stats.pages_read == 1


class TestPretty:
    def test_pretty_renders_null(self, numbers):
        assert "NULL" in numbers.pretty()

    def test_pretty_limit(self, numbers):
        text = numbers.pretty(limit=2)
        assert "2 more rows" in text

    def test_pretty_empty(self):
        relation = Relation.from_columns([("k", DataType.INTEGER)], [])
        assert "k" in relation.pretty()

    def test_repr(self, numbers):
        assert "4 rows" in repr(numbers)


class TestCopy:
    def test_copy_is_row_independent(self, numbers):
        snapshot = numbers.copy()
        assert snapshot.rows == numbers.rows
        assert snapshot.schema is numbers.schema
        assert snapshot.name == numbers.name
        snapshot.rows.append((99, "z"))
        assert len(numbers.rows) == 4

    def test_copy_of_copy_is_independent(self, numbers):
        first = numbers.copy()
        second = first.copy()
        first.rows.clear()
        assert second.rows == numbers.rows
