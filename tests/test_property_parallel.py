"""Property tests: multi-worker evaluation is invisible to semantics.

For every Table-1 subquery form the grammar generates — EXISTS / NOT
EXISTS, quantified SOME/ALL comparisons, scalar aggregate comparisons,
and boolean combinations — evaluating the translated GMDJ plan on a
worker pool with 1, 2, or 4 workers must return exactly the same bag as
the sequential single-scan evaluation.  A second property drives the
fuzzer's NULL-heavy data generator through the same check, so
three-valued logic inside partial aggregates stays covered.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.nested import NestedSelect
from repro.algebra.operators import ScanTable
from repro.fuzz.datagen import random_database
from repro.gmdj.modes import evaluate_plan_partitioned
from repro.storage import Catalog, DataType, Relation
from repro.unnesting import subquery_to_gmdj
from tests.test_property_equivalence import databases, predicates

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

worker_counts = st.sampled_from([1, 2, 4])


class TestParallelEquivalence:
    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           partitions=st.integers(min_value=1, max_value=6),
           workers=worker_counts)
    def test_workers_match_sequential(self, catalog, predicate,
                                      partitions, workers):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog)
        sequential = plan.evaluate(catalog)
        pooled = evaluate_plan_partitioned(
            plan, catalog, partitions, workers=workers, executor="thread",
        )
        assert sequential.bag_equal(pooled)

    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           workers=worker_counts)
    def test_workers_match_on_optimized_plans(self, catalog, predicate,
                                              workers):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog, optimize=True)
        sequential = plan.evaluate(catalog)
        pooled = evaluate_plan_partitioned(
            plan, catalog, 3, workers=workers, executor="thread",
        )
        assert sequential.bag_equal(pooled)


class TestNullHeavyData:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           predicate=predicates(),
           workers=worker_counts)
    def test_fuzzer_databases_agree(self, seed, predicate, workers):
        # The fuzzer's generator skews keys, duplicates rows, and NULLs
        # 40% of every column — the hard regime for mergeable partials.
        spec = random_database(random.Random(seed), max_rows=12,
                               null_rate=0.4)
        generated = spec.build_catalog()
        # Property-grammar predicates reference B.K/B.X and R.K/R.Y;
        # the fuzzer emits lowercase (k, x/y, s) columns, so rebuild the
        # tables under the grammar's schema, data unchanged.
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(row[0], row[1]) for row in generated.table("B").rows],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
            [(row[0], row[1]) for row in generated.table("R").rows],
        ))
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog)
        sequential = plan.evaluate(catalog)
        pooled = evaluate_plan_partitioned(
            plan, catalog, 4, workers=workers, executor="thread",
        )
        assert sequential.bag_equal(pooled)
