"""Tests for the GMDJ → SQL reduction (conditional aggregation)."""

import pytest

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import Coalesce, IsNull, col, lit
from repro.algebra.nested import Exists, NestedSelect, Subquery
from repro.algebra.operators import ScanTable
from repro.errors import TranslationError
from repro.gmdj import expression_to_sql, gmdj_to_sql, md, plan_to_sql
from repro.storage import Catalog, DataType, Relation
from repro.unnesting import subquery_to_gmdj


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)], [(1, 2)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], [(1, 3)],
    ))
    return cat


class TestExpressionRendering:
    def test_column_and_literal(self):
        assert expression_to_sql(col("b.K") == lit(5)) == "b.K = 5"

    def test_string_escaping(self):
        assert expression_to_sql(lit("it's")) == "'it''s'"

    def test_null_literal(self):
        assert expression_to_sql(lit(None)) == "NULL"

    def test_boolean_connectives(self):
        text = expression_to_sql((col("a") > lit(1)) & ~(col("b") < lit(2)))
        assert text == "(a > 1 AND (NOT b < 2))"

    def test_is_null_and_coalesce(self):
        assert expression_to_sql(IsNull(col("a"))) == "a IS NULL"
        assert expression_to_sql(
            Coalesce(col("a"), lit(0))
        ) == "COALESCE(a, 0)"

    def test_arithmetic(self):
        assert expression_to_sql(col("a") / lit(2)) == "(a / 2)"


class TestGmdjReduction:
    def test_shape(self, catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt"), agg("sum", col("r.Y"), "s")]],
                  [col("b.K") == col("r.K")])
        sql = gmdj_to_sql(plan, catalog)
        assert "COUNT(CASE WHEN b.K = r.K THEN 1 END) AS cnt" in sql
        assert "SUM(CASE WHEN b.K = r.K THEN r.Y END) AS s" in sql
        assert "LEFT OUTER JOIN R AS r" in sql
        assert "GROUP BY b.K, b.X" in sql

    def test_multi_block_join_filter_is_disjunction(self, catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c1")], [count_star("c2")]],
                  [col("b.K") == col("r.K"), col("r.Y") > lit(0)])
        sql = gmdj_to_sql(plan, catalog)
        assert "OR" in sql.split("ON", 1)[1].split("GROUP BY")[0]

    def test_non_scan_operand_rejected(self, catalog):
        from repro.algebra.operators import Select

        plan = md(Select(ScanTable("B", "b"), col("b.X") > lit(0)),
                  ScanTable("R", "r"), [[count_star("c")]],
                  [col("b.K") == col("r.K")])
        with pytest.raises(TranslationError):
            gmdj_to_sql(plan, catalog)


class TestPlanReduction:
    def test_translated_exists_plan(self, catalog):
        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"), col("r.K") == col("b.K"))),
        )
        plan = subquery_to_gmdj(query, catalog)
        sql = plan_to_sql(plan, catalog)
        assert sql.startswith("SELECT K, X")
        assert "b.K AS K" in sql  # inner SELECT aliases base columns bare
        assert "GROUP BY b.K, b.X" in sql
        assert "WHERE" in sql
        assert "COUNT(CASE WHEN" in sql

    def test_optimized_plan_with_completion(self, catalog):
        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"), col("r.K") == col("b.K")),
                   negated=True),
        )
        plan = subquery_to_gmdj(query, catalog, optimize=True)
        sql = plan_to_sql(plan, catalog)
        assert "= 0" in sql  # the NOT EXISTS count condition survives

    def test_unsupported_plan_rejected(self, catalog):
        with pytest.raises(TranslationError):
            plan_to_sql(ScanTable("B", "b"), catalog)
