"""End-to-end tests for the serving tier's batch MQO path.

Covers the ``/batch`` endpoint (shared-scan execution over HTTP, with
fractional per-member attribution that reconciles against the batch
totals — the ``/metrics`` consistency contract) and the opt-in
``batch_window_ms`` coalescing of concurrent ``/query`` requests."""

from __future__ import annotations

import concurrent.futures

import pytest

from tests.test_serve_service import LiveServer

COMPATIBLE = [
    ("SELECT K FROM B b WHERE EXISTS "
     "(SELECT * FROM R r WHERE r.K = b.K)"),
    ("SELECT K FROM B b WHERE EXISTS "
     "(SELECT * FROM R r WHERE r.K = b.K AND r.V > 8)"),
    ("SELECT K FROM B b WHERE EXISTS "
     "(SELECT * FROM R r WHERE r.K = b.K AND r.V < 6)"),
]


@pytest.fixture
def live_server():
    servers = []

    def make(**overrides):
        server = LiveServer(**overrides)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.stop()


class TestBatchEndpoint:
    def test_batch_shares_scans_and_matches_query(self, live_server):
        server = live_server()
        server.create_tables()
        status, payload = server.post("/batch", {"queries": COMPATIBLE})
        assert status == 200
        assert payload["scans_saved"] >= 1
        assert payload["batch"]["mqo"] == "coalesce"
        assert len(payload["results"]) == len(COMPATIBLE)
        for sql, member in zip(COMPATIBLE, payload["results"]):
            q_status, single = server.post(
                "/query", {"sql": sql, "options": {"use_cache": False}})
            assert q_status == 200
            assert member["rows"] == single["rows"]
            assert member["columns"] == single["columns"]

    def test_fractional_attribution_reconciles(self, live_server):
        server = live_server()
        server.create_tables()
        _, payload = server.post("/batch", {"queries": COMPATIBLE})
        members = payload["results"]
        shared = [m for m in members if m["shared"]]
        assert shared, "expected shared members in a compatible batch"
        # Per-member fractional detail scans sum to the trace's total.
        total = sum(m["detail_scans"] for m in members
                    if m["detail_scans"] is not None)
        assert total == pytest.approx(payload["detail_scans"])
        # Per-member io sums reconcile with the batch io totals (the
        # wire payload rounds each fraction to 4 decimals, so allow
        # that much slack per member).
        for key, value in payload["io"].items():
            summed = sum(m["io"].get(key, 0) for m in members)
            assert summed == pytest.approx(
                value, abs=5e-4 * len(members)
            )

    def test_batch_certificate_rides_along(self, live_server):
        server = live_server()
        server.create_tables()
        _, payload = server.post("/batch", {"queries": COMPATIBLE[:2]})
        groups = payload["batch"]["share_groups"]
        assert len(groups) == 1
        assert groups[0]["certified"] is True
        assert groups[0]["runtime_detail_scans"] == 1
        certificate = payload["batch"]["certificate"]
        assert certificate["detail_scan_counts"] == {"R": 1}

    def test_mqo_option_accepted_over_http(self, live_server):
        server = live_server()
        server.create_tables()
        status, payload = server.post("/batch", {
            "queries": COMPATIBLE[:2],
            "options": {"mqo": "fingerprint"},
        })
        assert status == 200
        assert payload["batch"]["mqo"] == "fingerprint"
        assert payload["scans_saved"] == 0

    def test_bad_bodies_are_400(self, live_server):
        server = live_server()
        server.create_tables()
        for body in ({}, {"queries": []}, {"queries": "SELECT 1"},
                     {"queries": [""]}):
            status, _ = server.post("/batch", body)
            assert status == 400

    def test_get_is_405(self, live_server):
        server = live_server()
        status, _ = server.get("/batch")
        assert status == 405


class TestBatchWindow:
    def test_window_coalesces_concurrent_queries(self, live_server):
        server = live_server(batch_window_ms=250.0)
        server.create_tables()

        def post(sql):
            return server.post("/query", {"sql": sql})

        with concurrent.futures.ThreadPoolExecutor(3) as pool:
            futures = [pool.submit(post, sql) for sql in COMPATIBLE]
            responses = [f.result(30) for f in futures]
        payloads = []
        for status, payload in responses:
            assert status == 200
            assert payload["served_by"] == "batch"
            payloads.append(payload)
        # All three landed in one window: each saw the full batch.
        assert {p["batch_queries"] for p in payloads} == {3}
        assert all(p["batch_scans_saved"] >= 1 for p in payloads)
        # Per-member results still correct.
        _, single = server.post(
            "/batch", {"queries": COMPATIBLE,
                       "options": {"use_cache": False}})
        for member, windowed in zip(single["results"], payloads):
            assert windowed["rows"] == member["rows"]

    def test_window_off_by_default(self, live_server):
        server = live_server()
        sql = server.create_tables()
        _, payload = server.post("/query", {"sql": sql})
        assert payload["served_by"] == "execute"

    def test_single_request_window_still_answers(self, live_server):
        server = live_server(batch_window_ms=50.0)
        sql = server.create_tables()
        status, payload = server.post("/query", {"sql": sql})
        assert status == 200
        assert payload["served_by"] == "batch"
        assert payload["batch_queries"] == 1
        assert sorted(payload["rows"]) == [[1], [2]]
