"""Unit tests for cross-query GMDJ scan sharing (repro.gmdj.share)
and the batch MQO planner/report plumbing (repro.engine.mqo)."""

from __future__ import annotations

import pytest

from repro import Database, DataType, QueryOptions
from repro.engine.mqo import plan_batch, resolve_level
from repro.engine.options import MQO_LEVELS
from repro.errors import ConfigurationError
from repro.gmdj.share import (
    block_key,
    fingerprint_plan,
    merge_group,
)
from repro.unnesting import subquery_to_gmdj


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "B", [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(1, 10), (2, 20), (3, 30), (None, 40)],
    )
    database.create_table(
        "R", [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
        [(1, 5), (1, 7), (2, 2), (3, None), (None, 1)],
    )
    database.create_table(
        "S", [("K", DataType.INTEGER), ("Z", DataType.INTEGER)],
        [(1, 1), (2, 2)],
    )
    return database


def translated(db, sql):
    return subquery_to_gmdj(db.sql(sql), db.catalog, optimize=True)


EXISTS_R = ("SELECT K FROM B WHERE EXISTS "
            "(SELECT 1 FROM R WHERE R.K = B.K)")
EXISTS_R_THETA = ("SELECT K FROM B WHERE EXISTS "
                  "(SELECT 1 FROM R WHERE R.K = B.K AND R.Y > 4)")
EXISTS_S = ("SELECT K FROM B WHERE EXISTS "
            "(SELECT 1 FROM S WHERE S.K = B.K)")


class TestFingerprint:
    def test_shareable_plan_fingerprints(self, db):
        candidate = fingerprint_plan(translated(db, EXISTS_R))
        assert candidate is not None
        assert candidate.fingerprint.detail_table == "R"
        assert candidate.detail_alias

    def test_same_base_same_fingerprint(self, db):
        a = fingerprint_plan(translated(db, EXISTS_R))
        b = fingerprint_plan(translated(db, EXISTS_R_THETA))
        assert a.fingerprint == b.fingerprint

    def test_different_detail_tables_differ(self, db):
        a = fingerprint_plan(translated(db, EXISTS_R))
        b = fingerprint_plan(translated(db, EXISTS_S))
        assert a.fingerprint != b.fingerprint

    def test_flat_plan_is_unshareable(self, db):
        assert fingerprint_plan(db.sql("SELECT K FROM B")) is None

    def test_multi_gmdj_plan_is_unshareable(self, db):
        sql = ("SELECT K FROM B b WHERE EXISTS "
               "(SELECT 1 FROM R r WHERE r.K = b.K) "
               "AND EXISTS (SELECT 1 FROM S s WHERE s.K = b.K)")
        plan = subquery_to_gmdj(db.sql(sql), db.catalog, optimize=False)
        assert fingerprint_plan(plan) is None


class TestMergeGroup:
    def group(self, db, *sqls):
        return [fingerprint_plan(translated(db, sql)) for sql in sqls]

    def test_identical_blocks_deduplicate(self, db):
        shared = merge_group(self.group(db, EXISTS_R, EXISTS_R))
        assert shared.consumer_blocks == 2
        assert shared.shared_blocks == 1
        assert len(shared.gmdj.blocks) == 1

    def test_distinct_thetas_stay_separate(self, db):
        shared = merge_group(self.group(db, EXISTS_R, EXISTS_R_THETA))
        assert shared.consumer_blocks == 2
        assert shared.shared_blocks == 2

    def test_slots_route_every_consumer_output(self, db):
        candidates = self.group(db, EXISTS_R, EXISTS_R_THETA)
        shared = merge_group(candidates)
        names = set(shared.gmdj.output_names())
        for slot, candidate in zip(shared.slots, candidates):
            assert len(slot.outputs) == sum(
                len(b.aggregates) for b in candidate.gmdj.blocks
            )
            for shared_name, original in slot.outputs:
                assert shared_name in names
                assert original in candidate.gmdj.output_names()

    def test_fresh_alias_avoids_collision(self, db):
        sql = ("SELECT K FROM B WHERE EXISTS "
               "(SELECT 1 FROM R mqo_r WHERE mqo_r.K = B.K)")
        shared = merge_group(self.group(db, sql, sql))
        alias = shared.gmdj.detail.alias
        assert alias != "mqo_r"
        # The requalified condition must reference the fresh alias.
        assert any(
            alias == ref.rpartition(".")[0]
            for block in shared.gmdj.blocks
            for ref in block.condition.references()
        )

    def test_block_key_is_whole_condition(self, db):
        a, b = (c.gmdj.blocks[0] for c in
                self.group(db, EXISTS_R, EXISTS_R_THETA))
        assert block_key(a) != block_key(b)


class TestPlanBatch:
    def test_groups_compatible_queries(self, db):
        queries = [db.sql(EXISTS_R), db.sql(EXISTS_R_THETA),
                   db.sql(EXISTS_S)]
        plan = plan_batch(queries, db.catalog, QueryOptions())
        assert len(plan.groups) == 1
        assert plan.groups[0].indices == [0, 1]
        assert plan.singletons == [2]

    def test_off_level_disables_grouping(self, db):
        queries = [db.sql(EXISTS_R), db.sql(EXISTS_R)]
        plan = plan_batch(queries, db.catalog, QueryOptions(mqo="off"))
        assert plan.groups == []
        assert plan.singletons == [0, 1]

    def test_batch_of_one_never_groups(self, db):
        plan = plan_batch([db.sql(EXISTS_R)], db.catalog, QueryOptions())
        assert plan.groups == []

    def test_baseline_strategy_never_shares(self, db):
        queries = [db.sql(EXISTS_R), db.sql(EXISTS_R)]
        plan = plan_batch(
            queries, db.catalog, QueryOptions(strategy="naive")
        )
        assert plan.groups == []


class TestMqoOption:
    def test_levels(self):
        assert set(MQO_LEVELS) == {None, "off", "fingerprint", "coalesce"}

    def test_invalid_level_raises(self):
        with pytest.raises(ConfigurationError, match="mqo"):
            QueryOptions(mqo="always")

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MQO", "off")
        assert resolve_level(QueryOptions(mqo="coalesce")) == "coalesce"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MQO", "fingerprint")
        assert resolve_level(QueryOptions()) == "fingerprint"

    def test_environment_off_suppresses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MQO", "off")
        assert resolve_level(QueryOptions()) == "off"

    def test_default_is_coalesce(self, monkeypatch):
        monkeypatch.delenv("REPRO_MQO", raising=False)
        assert resolve_level(QueryOptions()) == "coalesce"

    def test_bad_environment_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_MQO", "nope")
        with pytest.raises(ConfigurationError, match="REPRO_MQO"):
            QueryOptions.environment_mqo()

    def test_cache_key_carries_mqo(self):
        assert (QueryOptions(mqo="fingerprint").cache_key()
                != QueryOptions(mqo="coalesce").cache_key())
        # "off" and unset hash alike: both mean per-query execution.
        assert (QueryOptions(mqo="off").cache_key()
                == QueryOptions().cache_key())


class TestExecuteBatchSurface:
    def test_fingerprint_level_reports_without_sharing(self, db):
        batch = db.execute_sql_batch(
            [EXISTS_R, EXISTS_R_THETA], QueryOptions(mqo="fingerprint")
        )
        assert batch.report.mqo == "fingerprint"
        assert len(batch.report.groups) == 1
        group = batch.report.groups[0]
        assert not group.coalesced
        assert group.scans_saved == 0
        assert batch.report.scans_saved == 0
        assert [sorted(r.rows) for r in batch] == [
            sorted(db.execute_sql(EXISTS_R).rows),
            sorted(db.execute_sql(EXISTS_R_THETA).rows),
        ]

    def test_coalesce_level_saves_scans(self, db):
        batch = db.execute_sql_batch([EXISTS_R, EXISTS_R_THETA])
        assert batch.report.mqo == "coalesce"
        group = batch.report.groups[0]
        assert group.coalesced
        assert group.scans_saved == 1
        assert group.runtime_detail_scans == 1
        assert group.certified is True
        assert batch.report.certificate is not None
        assert "R" in batch.report.certificate.single_scan_tables

    def test_sequence_protocol(self, db):
        batch = db.execute_sql_batch([EXISTS_R, EXISTS_R_THETA, EXISTS_S])
        assert len(batch) == 3
        assert batch[0].rows == batch.results[0].rows
        assert [r.rows for r in batch[1:]] == [
            r.rows for r in batch.results[1:]
        ]
        assert len(list(iter(batch))) == 3

    def test_io_attribution_reconciles(self, db):
        batch = db.execute_sql_batch(
            [EXISTS_R, EXISTS_R_THETA, EXISTS_S],
            QueryOptions(use_cache=False),
        )
        summed: dict[str, float] = {}
        for item in batch.items:
            for key, value in item.io.items():
                summed[key] = summed.get(key, 0) + value
        for key, total in batch.report.io_totals.items():
            assert summed.get(key, 0) == pytest.approx(total)

    def test_string_options_rejected(self, db):
        with pytest.raises(ConfigurationError):
            db.execute_sql_batch([EXISTS_R], "gmdj")

    def test_summary_mentions_savings(self, db):
        batch = db.execute_sql_batch([EXISTS_R, EXISTS_R])
        text = batch.report.summary()
        assert "1 share group" in text
        assert "1 detail scan(s) saved" in text
