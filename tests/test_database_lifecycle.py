"""Database lifecycle: deterministic teardown and copy-on-write inserts.

The serving tier keeps Databases alive across many requests, which is
what turns executor cleanup from a non-issue (per-call pools) into a
real leak class.  ``Database.close()`` / the context-manager protocol
are the deterministic teardown path: they shut down the database's
pooled GMDJ executors, empty its caches, and fail every later call
loudly with :class:`DatabaseClosedError` instead of half-working over
released workers.

``insert`` is the serving tier's only row-level mutation, so its
copy-on-write contract is pinned here too: in-flight readers holding
the old relation keep a consistent snapshot while the catalog moves on.
"""

from __future__ import annotations

import pytest

from repro import Database, DataType, QueryOptions
from repro.engine.database import DatabaseClosedError
from repro.errors import ConfigurationError

SQL = ("SELECT K FROM B b WHERE EXISTS "
       "(SELECT * FROM R r WHERE r.K = b.K)")


def make_db(r_rows=((1,),)) -> Database:
    db = Database()
    db.create_table("B", [("K", DataType.INTEGER)],
                    [(i,) for i in range(4)])
    db.create_table("R", [("K", DataType.INTEGER)], list(r_rows))
    return db


class TestClose:
    def test_close_is_idempotent(self):
        db = make_db()
        assert not db.closed
        db.close()
        db.close()
        assert db.closed

    def test_close_shuts_down_pools(self):
        db = make_db()
        db.execute_sql(SQL, QueryOptions(
            strategy="gmdj", partitions=2, workers=2))
        db.close()
        assert db.pools.closed
        with pytest.raises(ConfigurationError):
            db.pools.get("thread", 2)

    def test_close_empties_caches(self):
        db = make_db()
        db.execute_sql(SQL)
        db.execute_sql(SQL, QueryOptions(
            strategy="gmdj", rollup="subsume", use_cache=False))
        assert db.cache.stats()["results"] >= 1
        assert len(db.rollups) >= 1
        db.close()
        assert db.cache.stats()["results"] == 0
        assert len(db.rollups) == 0

    @pytest.mark.parametrize("call", [
        lambda db: db.execute_sql(SQL),
        lambda db: db.create_table("T", [("K", DataType.INTEGER)], []),
        lambda db: db.insert("R", [(9,)]),
        lambda db: db.create_index("R", "K"),
        lambda db: db.sql(SQL),
    ])
    def test_use_after_close_raises(self, call):
        db = make_db()
        db.close()
        with pytest.raises(DatabaseClosedError):
            call(db)

    def test_context_manager_closes(self):
        with make_db() as db:
            assert db.execute_sql(SQL).rows == [(1,)]
        assert db.closed
        with pytest.raises(DatabaseClosedError):
            db.execute_sql(SQL)

    def test_context_manager_closes_on_error(self):
        db = make_db()
        with pytest.raises(ValueError):
            with db:
                raise ValueError("boom")
        assert db.closed

    def test_reentering_closed_database_raises(self):
        db = make_db()
        db.close()
        with pytest.raises(DatabaseClosedError):
            with db:
                pass  # pragma: no cover


class TestInsert:
    def test_insert_appends_and_queries_see_it(self):
        db = make_db([(1,)])
        assert db.execute_sql(SQL).rows == [(1,)]
        relation = db.insert("R", [(2,), (3,)])
        assert len(relation) == 3
        assert sorted(db.execute_sql(SQL).rows) == [(1,), (2,), (3,)]

    def test_insert_invalidates_cache_and_rollups(self):
        db = make_db([(1,)])
        db.execute_sql(SQL)
        db.execute_sql(SQL, QueryOptions(
            strategy="gmdj", rollup="subsume", use_cache=False))
        assert len(db.rollups) == 1
        db.insert("R", [(2,)])
        assert db.cache.stats()["results"] == 0
        assert len(db.rollups) == 0

    def test_insert_is_copy_on_write(self):
        db = make_db([(1,)])
        snapshot = db.catalog.table("R")
        rows_before = list(snapshot.rows)
        db.insert("R", [(2,)])
        # A reader holding the pre-insert relation still sees exactly
        # the rows it started with; the catalog serves the new version.
        assert snapshot.rows == rows_before
        assert db.catalog.table("R") is not snapshot
        assert len(db.catalog.table("R")) == 2

    def test_insert_unknown_table_raises(self):
        db = make_db()
        with pytest.raises(Exception):
            db.insert("missing", [(1,)])
