"""Tests for the cost model and cost-based strategy selection."""

import pytest
from repro import QueryOptions

from repro.algebra.expressions import col, lit
from repro.algebra.nested import Exists, NestedSelect, Subquery, QuantifiedComparison
from repro.algebra.operators import ScanTable
from repro.engine import Database
from repro.engine.costmodel import choose_strategy, estimate_costs
from repro.storage import DataType


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "small", [("K", DataType.INTEGER)], [(i,) for i in range(20)]
    )
    database.create_table(
        "big", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 20, i) for i in range(2000)],
    )
    return database


def exists_query():
    return NestedSelect(
        ScanTable("small", "b"),
        Exists(Subquery(ScanTable("big", "r"), col("r.K") == col("b.K"))),
    )


def all_diamond_query():
    return NestedSelect(
        ScanTable("small", "b"),
        QuantifiedComparison(
            ">", "all", col("b.K"),
            Subquery(ScanTable("big", "r"), col("r.K") != col("b.K"),
                     item=col("r.V")),
        ),
    )


class TestEstimates:
    def test_every_strategy_estimated(self, db):
        estimate = estimate_costs(exists_query(), db.catalog)
        assert set(estimate.costs) == {
            "naive", "native", "unnest_join", "gmdj", "gmdj_optimized"
        }

    def test_naive_always_worst_on_correlated(self, db):
        estimate = estimate_costs(exists_query(), db.catalog)
        worst = max(estimate.costs.values())
        assert estimate.costs["naive"] == worst

    def test_leaf_profile_detects_equality(self, db):
        estimate = estimate_costs(exists_query(), db.catalog)
        assert estimate.leaves[0].has_equality_correlation
        assert not estimate.leaves[0].correlation_indexed

    def test_leaf_profile_detects_index(self, db):
        db.create_index("big", "K")
        estimate = estimate_costs(exists_query(), db.catalog)
        assert estimate.leaves[0].correlation_indexed

    def test_inequality_correlation_poisons_join(self, db):
        estimate = estimate_costs(all_diamond_query(), db.catalog)
        assert estimate.costs["unnest_join"] > estimate.costs["gmdj_optimized"]
        assert not estimate.leaves[0].has_equality_correlation

    def test_flat_query_trivial_estimate(self, db):
        from repro.algebra.operators import Select

        estimate = estimate_costs(
            Select(ScanTable("small", "b"), col("b.K") > lit(1)), db.catalog
        )
        assert estimate.costs == {"gmdj": 0.0}


class TestChoice:
    def test_indexed_exists_prefers_native(self, db):
        db.create_index("big", "K")
        assert choose_strategy(exists_query(), db.catalog) == "native"

    def test_unindexed_exists_avoids_native_and_naive(self, db):
        choice = choose_strategy(exists_query(), db.catalog)
        assert choice in ("gmdj", "gmdj_optimized", "unnest_join")

    def test_diamond_all_prefers_gmdj_or_native(self, db):
        choice = choose_strategy(all_diamond_query(), db.catalog)
        assert choice in ("gmdj_optimized", "native")
        assert choice != "unnest_join"

    def test_multi_subquery_same_table_prefers_coalesced_gmdj(self, db):
        predicate = (
            Exists(Subquery(ScanTable("big", "r1"),
                            col("r1.K") == col("b.K")))
            & Exists(Subquery(ScanTable("big", "r2"),
                              (col("r2.K") == col("b.K"))
                              & (col("r2.V") > lit(500))), negated=True)
        )
        query = NestedSelect(ScanTable("small", "b"), predicate)
        estimate = estimate_costs(query, db.catalog)
        assert (estimate.costs["gmdj_optimized"]
                < estimate.costs["unnest_join"])
        assert (estimate.costs["gmdj_optimized"] < estimate.costs["gmdj"])


class TestCostBasedStrategy:
    def test_cost_based_executes_correctly(self, db):
        expected = db.execute(exists_query(), QueryOptions("naive"))
        result = db.execute(exists_query(), QueryOptions("cost_based"))
        assert expected.bag_equal(result)

    def test_cost_based_on_flat_query(self, db):
        from repro.algebra.operators import Select

        query = Select(ScanTable("small", "b"), col("b.K") > lit(15))
        assert len(db.execute(query, QueryOptions("cost_based"))) == 4

    def test_cost_based_with_index(self, db):
        db.create_index("big", "K")
        expected = db.execute(exists_query(), QueryOptions("naive"))
        assert expected.bag_equal(db.execute(exists_query(), QueryOptions("cost_based")))
