"""Tests for the benchmark harness itself (runner, reporting, workloads)."""

import pytest

from repro.bench import (
    build_example23,
    build_fig2,
    build_fig3,
    build_fig4,
    build_fig5,
    compare_strategies,
    print_series,
    series_summary,
)
from repro.bench.workloads import bench_scale
from repro.engine import make_executor


@pytest.fixture(scope="module")
def tiny_fig2():
    return build_fig2(600, outer_size=30)


class TestWorkloadBuilders:
    def test_fig2_tables_sized(self, tiny_fig2):
        assert len(tiny_fig2.catalog.table("customer")) == 30
        assert len(tiny_fig2.catalog.table("orders")) == 600

    def test_fig2_indexes_optional(self):
        indexed = build_fig2(600, outer_size=30, indexes=True)
        bare = build_fig2(600, outer_size=30, indexes=False)
        assert indexed.catalog.hash_index("orders", ("custkey",)) is not None
        assert bare.catalog.hash_index("orders", ("custkey",)) is None

    def test_fig3_answer_nontrivial(self):
        workload = build_fig3(30, 600)
        result = make_executor(workload.query, workload.catalog, "gmdj")()
        assert 0 < len(result) < 30

    def test_fig4_diamond_answer_small(self):
        workload = build_fig4(60)
        result = make_executor(workload.query, workload.catalog,
                               "gmdj_optimized")()
        assert 1 <= len(result) <= 5  # only near-maximal prices survive

    def test_fig5_two_subqueries(self):
        workload = build_fig5(600, outer_size=30)
        from repro.algebra.nested import collect_subquery_predicates

        assert len(collect_subquery_predicates(workload.query.predicate)) == 2

    def test_example23_params_recorded(self):
        workload = build_example23(flows=500, sources=10)
        assert workload.params["flows"] == 500

    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5

    def test_bench_scale_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0


class TestRunner:
    def test_reports_for_each_strategy(self, tiny_fig2):
        result = compare_strategies(tiny_fig2, ["native", "gmdj"])
        assert set(result.reports) == {"native", "gmdj"}
        assert not result.failures

    def test_equivalence_enforced(self, tiny_fig2):
        result = compare_strategies(
            tiny_fig2, ["naive", "native", "unnest_join", "gmdj",
                        "gmdj_optimized"]
        )
        sizes = {len(r.result) for r in result.reports.values()}
        assert len(sizes) == 1

    def test_unsupported_strategy_recorded_as_failure(self):
        # Join unnesting rejects disjunctive subquery predicates.
        from repro.algebra.expressions import col, lit
        from repro.algebra.nested import Exists, NestedSelect, Subquery
        from repro.algebra.operators import ScanTable
        from repro.bench.workloads import Workload

        base = build_fig2(300, outer_size=10)
        predicate = Exists(
            Subquery(ScanTable("orders", "o"),
                     col("o.custkey") == col("c.custkey"))
        ) | (col("c.acctbal") > lit(0.0))
        workload = Workload(
            "disjunctive", base.catalog,
            NestedSelect(ScanTable("customer", "c"), predicate), {},
        )
        result = compare_strategies(workload, ["gmdj", "unnest_join"])
        assert "unnest_join" in result.failures
        assert "gmdj" in result.reports

    def test_accessors(self, tiny_fig2):
        result = compare_strategies(tiny_fig2, ["gmdj"])
        assert result.work("gmdj") > 0
        assert result.elapsed_ms("gmdj") >= 0
        assert result.work("missing") is None


class TestReporting:
    def test_print_series_layout(self, tiny_fig2, capsys):
        result = compare_strategies(tiny_fig2, ["native", "gmdj"])
        text = print_series("Test series", [result], ["native", "gmdj"])
        captured = capsys.readouterr().out
        assert "Test series" in text and text in captured
        assert "native" in text and "gmdj" in text

    def test_print_series_marks_infeasible(self, tiny_fig2):
        result = compare_strategies(tiny_fig2, ["gmdj"])
        result.failures["unnest_join"] = "nope"
        text = print_series("x", [result], ["gmdj", "unnest_join"])
        assert "infeasible" in text

    def test_series_summary_metrics(self, tiny_fig2):
        result = compare_strategies(tiny_fig2, ["gmdj"])
        work = series_summary([result], "gmdj", "work")
        pages = series_summary([result], "gmdj", "pages")
        time = series_summary([result], "gmdj", "time")
        missing = series_summary([result], "absent", "work")
        assert work[0] > 0 and pages[0] > 0 and time[0] >= 0
        assert missing[0] == float("inf")
