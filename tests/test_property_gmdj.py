"""Property-based tests for the GMDJ operator itself and Section 4 rules.

The GMDJ evaluator (hash-partitioned, single scan, optional completion) is
checked against a brute-force transcription of Definition 2.1 — for every
base tuple b, aggregate over ``RNG(b, R, θ) = {r | θ(b, r)}`` computed by
direct nested iteration.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import AggregateBlock, agg, count_star
from repro.algebra.expressions import Comparison, TRUE, col, lit
from repro.algebra.operators import Select, TableValue
from repro.gmdj import (
    GMDJ,
    SelectGMDJ,
    ThetaBlock,
    coalesce_plan,
    derive_completion_rule,
    md,
)
from repro.storage import Catalog, DataType, Relation

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_int = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
rows = st.lists(st.tuples(small_int, small_int), min_size=0, max_size=10)
comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


def relations(b_rows, r_rows):
    base = Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)], b_rows,
        qualifier="b",
    )
    detail = Relation.from_columns(
        [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], r_rows,
        qualifier="r",
    )
    return base, detail


@st.composite
def thetas(draw):
    """Random θ over b.* and r.* — with or without an equality conjunct."""
    conjuncts = []
    if draw(st.booleans()):
        conjuncts.append(col("b.K") == col("r.K"))
    if draw(st.booleans()):
        conjuncts.append(
            Comparison(draw(comparison_ops), col("b.X"), col("r.Y"))
        )
    if draw(st.booleans()):
        conjuncts.append(
            Comparison(draw(comparison_ops), col("r.Y"),
                       lit(draw(st.integers(0, 4))))
        )
    if not conjuncts:
        return TRUE
    predicate = conjuncts[0]
    for extra in conjuncts[1:]:
        predicate = predicate & extra
    return predicate


def brute_force(base, detail, blocks):
    """Definition 2.1 by direct nested iteration."""
    combined = base.schema.concat(detail.schema)
    out = []
    for b_row in base.rows:
        values = []
        for block in blocks:
            test = block.condition.bind(combined)
            agg_block = AggregateBlock(block.aggregates, detail.schema)
            state = agg_block.new_state()
            for r_row in detail.rows:
                if test(b_row + r_row).is_true:
                    agg_block.update(state, r_row)
            values.extend(AggregateBlock.finalize(state))
        out.append(b_row + tuple(values))
    return out


class TestDefinition21:
    @SETTINGS
    @given(b_rows=rows, r_rows=rows, theta=thetas())
    def test_single_block_counts_and_sums(self, b_rows, r_rows, theta):
        base, detail = relations(b_rows, r_rows)
        blocks = [ThetaBlock([count_star("cnt"),
                              agg("sum", col("r.Y"), "s")], theta)]
        plan = GMDJ(TableValue(base), TableValue(detail), blocks)
        catalog = Catalog()
        result = plan.evaluate(catalog)
        assert sorted(result.rows, key=repr) == sorted(
            brute_force(base, detail, blocks), key=repr
        )

    @SETTINGS
    @given(b_rows=rows, r_rows=rows, theta1=thetas(), theta2=thetas())
    def test_two_blocks_share_one_scan(self, b_rows, r_rows, theta1, theta2):
        base, detail = relations(b_rows, r_rows)
        blocks = [
            ThetaBlock([count_star("c1")], theta1),
            ThetaBlock([agg("min", col("r.Y"), "m2")], theta2),
        ]
        plan = GMDJ(TableValue(base), TableValue(detail), blocks)
        result = plan.evaluate(Catalog())
        assert sorted(result.rows, key=repr) == sorted(
            brute_force(base, detail, blocks), key=repr
        )


class TestCompletionProperty:
    @SETTINGS
    @given(b_rows=rows, r_rows=rows, theta=thetas())
    def test_fused_doom_equals_unfused(self, b_rows, r_rows, theta):
        base, detail = relations(b_rows, r_rows)
        gmdj = md(TableValue(base), TableValue(detail),
                  [[count_star("cnt")]], [theta])
        selection = Comparison("=", col("cnt"), lit(0))
        rule = derive_completion_rule(selection, gmdj, False)
        fused = SelectGMDJ(gmdj, selection, rule)
        unfused = Select(
            md(TableValue(base), TableValue(detail), [[count_star("cnt")]],
               [theta]),
            selection,
        )
        catalog = Catalog()
        assert fused.evaluate(catalog).bag_equal(unfused.evaluate(catalog))

    @SETTINGS
    @given(b_rows=rows, r_rows=rows, theta=thetas(), op=comparison_ops)
    def test_fused_pair_equal_equals_unfused(self, b_rows, r_rows, theta, op):
        base, detail = relations(b_rows, r_rows)
        phi = Comparison(op, col("b.X"), col("r.Y"))

        def build():
            return md(TableValue(base), TableValue(detail),
                      [[count_star("c1")], [count_star("c2")]],
                      [theta & phi, theta])

        selection = Comparison("=", col("c1"), col("c2"))
        rule = derive_completion_rule(selection, build(), False)
        fused = SelectGMDJ(build(), selection, rule)
        unfused = Select(build(), selection)
        catalog = Catalog()
        assert fused.evaluate(catalog).bag_equal(unfused.evaluate(catalog))


class TestCoalesceProperty:
    @SETTINGS
    @given(b_rows=rows, r_rows=rows, theta1=thetas(), theta2=thetas())
    def test_stacked_equals_coalesced(self, b_rows, r_rows, theta1, theta2):
        base, detail = relations(b_rows, r_rows)
        catalog = Catalog()
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
            detail.rows,
        ))
        from repro.algebra.operators import ScanTable

        def stacked():
            inner = md(TableValue(base), ScanTable("R", "r"),
                       [[count_star("c1")]], [theta1])
            return md(inner, ScanTable("R", "r"),
                      [[count_star("c2")]], [theta2])

        coalesced = coalesce_plan(stacked())
        assert stacked().evaluate(catalog).bag_equal(
            coalesced.evaluate(catalog)
        )
