"""Admission control and request-ordering locks for the query service.

Two invariants carry the serving tier's overload story, and both are
pinned here without any sockets:

* the admission queue is *bounded* — at most ``workers`` requests
  execute, at most ``queue_depth`` wait, and the next one is shed
  synchronously (the 429 path never awaits); a queued request that
  times out withdraws its claim so abandoned waits can never leak a
  worker slot;
* the per-tenant reader-writer lock admits concurrent readers, gives a
  waiting writer preference over new readers (no writer starvation),
  and turns lock-wait timeouts into clean failures.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve.admission import AdmissionController, QueueFull
from repro.serve.locks import LockTimeout, ReadWriteLock


class TestAdmissionController:
    def test_validates_shape(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(workers=0, queue_depth=4)
        with pytest.raises(ConfigurationError):
            AdmissionController(workers=1, queue_depth=-1)

    def test_admit_and_release(self):
        async def go():
            admission = AdmissionController(workers=2, queue_depth=2)
            slot = admission.slot()
            await slot.__aenter__()
            assert admission.executing == 1
            slot.release()
            slot.release()  # idempotent
            assert admission.executing == 0
            assert admission.completed == 1

        asyncio.run(go())

    def test_sheds_when_waiting_room_full(self):
        async def go():
            admission = AdmissionController(workers=1, queue_depth=1)
            holder = admission.slot()
            await holder.__aenter__()

            waiter = admission.slot()
            waiting_task = asyncio.ensure_future(waiter.__aenter__())
            await asyncio.sleep(0)  # let the waiter enqueue
            assert admission.waiting == 1

            with pytest.raises(QueueFull):
                await admission.slot().__aenter__()
            assert admission.shed == 1

            holder.release()  # hands the slot to the waiter
            await waiting_task
            assert admission.waiting == 0
            assert admission.executing == 1
            waiter.release()

        asyncio.run(go())

    def test_queue_timeout_withdraws_claim(self):
        async def go():
            admission = AdmissionController(workers=1, queue_depth=4)
            holder = admission.slot()
            await holder.__aenter__()

            waiter = admission.slot()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(waiter.__aenter__(), timeout=0.05)
            assert admission.waiting == 0
            assert admission.timeouts == 1

            # The abandoned wait must not have consumed the permit.
            holder.release()
            follow_up = admission.slot()
            await asyncio.wait_for(follow_up.__aenter__(), timeout=1.0)
            follow_up.release()

        asyncio.run(go())

    def test_zero_queue_depth_sheds_immediately(self):
        async def go():
            admission = AdmissionController(workers=1, queue_depth=0)
            holder = admission.slot()
            await holder.__aenter__()
            with pytest.raises(QueueFull):
                await admission.slot().__aenter__()
            holder.release()

        asyncio.run(go())

    def test_context_manager_releases(self):
        async def go():
            admission = AdmissionController(workers=1, queue_depth=0)
            async with admission.slot():
                assert admission.executing == 1
            assert admission.executing == 0

        asyncio.run(go())

    def test_quiesce_waits_for_drain(self):
        async def go():
            admission = AdmissionController(workers=1, queue_depth=0)
            slot = admission.slot()
            await slot.__aenter__()
            assert not await admission.quiesce(timeout=0.05)
            slot.release()
            assert await admission.quiesce(timeout=1.0)

        asyncio.run(go())

    def test_snapshot_keys(self):
        admission = AdmissionController(workers=3, queue_depth=5)
        snapshot = admission.snapshot()
        assert snapshot["workers"] == 3
        assert snapshot["queue_depth"] == 5
        for key in ("waiting", "executing", "admitted", "shed",
                    "timeouts", "completed"):
            assert snapshot[key] == 0


class TestReadWriteLock:
    def test_concurrent_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()  # a second reader must not block
        lock.release_read()
        lock.release_read()

    def test_writer_excluded_by_reader(self):
        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(LockTimeout):
                lock.acquire_write(timeout=0.05)
        with lock.write():
            pass  # the withdrawn claim must not wedge the lock

    def test_reader_excluded_by_writer(self):
        lock = ReadWriteLock()
        with lock.write():
            with pytest.raises(LockTimeout):
                lock.acquire_read(timeout=0.05)
        with lock.read():
            pass

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_has_lock = threading.Event()

        def writer():
            lock.acquire_write()
            writer_has_lock.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            # Writer preference: while the writer queues, a *new* reader
            # must wait even though a reader currently holds the lock —
            # otherwise a read-heavy tenant starves its DDL forever.
            deadline_hit = False
            try:
                lock.acquire_read(timeout=0.1)
            except LockTimeout:
                deadline_hit = True
            assert deadline_hit
            lock.release_read()
            assert writer_has_lock.wait(5)
        finally:
            thread.join(5)
        with lock.read():
            pass

    def test_unmatched_release_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_snapshot_reports_holders(self):
        lock = ReadWriteLock()
        with lock.read():
            snapshot = lock.snapshot()
            assert snapshot["readers"] == 1
        assert lock.snapshot()["readers"] == 0

    def test_threaded_counter_consistency(self):
        # Readers observe; writers mutate a two-field invariant
        # (a == b).  Torn reads would show a != b.
        lock = ReadWriteLock()
        state = {"a": 0, "b": 0}
        torn = []

        def reader():
            for _ in range(200):
                with lock.read():
                    if state["a"] != state["b"]:
                        torn.append((state["a"], state["b"]))

        def writer():
            for _ in range(100):
                with lock.write():
                    state["a"] += 1
                    state["b"] += 1

        threads = ([threading.Thread(target=reader) for _ in range(4)]
                   + [threading.Thread(target=writer) for _ in range(2)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert torn == []
        assert state["a"] == state["b"] == 200
