"""Golden plan-shape tests: the optimizer's output structure is pinned.

These are deliberately brittle in a useful way: accidental changes to
what the translator/optimizer emit for the paper's flagship queries show
up here as explicit diffs rather than silent plan regressions.
"""

import pytest

from repro.algebra.expressions import col, lit
from repro.algebra.nested import Exists, NestedSelect, Subquery
from repro.algebra.operators import Project, ScanTable
from repro.algebra.printer import explain
from repro.gmdj import GMDJ, SelectGMDJ
from repro.storage import Catalog, DataType, Relation
from repro.unnesting import subquery_to_gmdj


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("Flow", Relation.from_columns(
        [("SourceIP", DataType.STRING), ("DestIP", DataType.STRING),
         ("NumBytes", DataType.INTEGER)],
        [("a", "x", 1)],
    ))
    return cat


def example23_query():
    base = Project(ScanTable("Flow", "F0"), ["F0.SourceIP"], distinct=True)

    def flows_to(dest, alias):
        return Subquery(
            ScanTable("Flow", alias),
            (col(f"{alias}.SourceIP") == col("F0.SourceIP"))
            & (col(f"{alias}.DestIP") == lit(dest)),
        )

    return NestedSelect(
        base,
        Exists(flows_to("167.167.167.0", "F1"), negated=True)
        & Exists(flows_to("168.168.168.0", "F2"))
        & Exists(flows_to("169.169.169.0", "F3"), negated=True),
    )


class TestExample23Shape:
    def test_unoptimized_stacks_three_gmdjs(self, catalog):
        plan = subquery_to_gmdj(example23_query(), catalog)

        def count_gmdjs(node):
            total = int(isinstance(node, GMDJ))
            for child in getattr(node, "children", lambda: ())():
                total += count_gmdjs(child)
            return total

        assert count_gmdjs(plan) == 3

    def test_optimized_is_single_fused_gmdj(self, catalog):
        plan = subquery_to_gmdj(example23_query(), catalog, optimize=True)
        # Project -> SelectGMDJ(3 blocks) over the distinct projection.
        assert isinstance(plan, Project)
        assert isinstance(plan.child, SelectGMDJ)
        assert len(plan.child.gmdj.blocks) == 3
        rule = plan.child.rule
        assert sorted(rule.must_be_zero) == [0, 2]
        assert rule.need_positive == [1]

    def test_optimized_explain_text(self, catalog):
        text = explain(subquery_to_gmdj(example23_query(), catalog,
                                        optimize=True))
        assert text.count("Scan Flow") == 2  # base projection + one detail
        assert "SelectGMDJ" in text
        assert "theta3" in text  # three coalesced blocks rendered


class TestExistsShape:
    def test_exists_plan_outline(self, catalog):
        query = NestedSelect(
            ScanTable("Flow", "f"),
            Exists(Subquery(ScanTable("Flow", "g"),
                            col("g.SourceIP") == col("f.SourceIP"))),
        )
        text = explain(subquery_to_gmdj(query, catalog, optimize=True))
        lines = [line.strip() for line in text.splitlines()]
        assert lines[0].startswith("Project")
        assert any(line.startswith("SelectGMDJ") for line in lines)
        assert any(line.startswith("l1: [count(*)") for line in lines)
