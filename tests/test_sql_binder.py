"""Unit tests for the SQL binder (AST → algebra)."""

import pytest

from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
)
from repro.algebra.operators import (
    Distinct,
    Join,
    OrderBy,
    Project,
    ScanTable,
    Select,
)
from repro.errors import BindError
from repro.sql import compile_sql
from repro.storage import Catalog, DataType, Relation


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("T", Relation.from_columns(
        [("k", DataType.INTEGER), ("v", DataType.INTEGER),
         ("s", DataType.STRING)],
        [(1, 10, "a"), (2, 20, "b"), (2, 30, "a"), (3, None, "c")],
    ))
    cat.create_table("U", Relation.from_columns(
        [("k", DataType.INTEGER), ("w", DataType.INTEGER)],
        [(1, 5), (2, 6), (9, 7)],
    ))
    return cat


class TestShapes:
    def test_star_without_where_is_scan(self, catalog):
        plan = compile_sql("SELECT * FROM T", catalog)
        assert isinstance(plan, ScanTable)

    def test_star_distinct(self, catalog):
        plan = compile_sql("SELECT DISTINCT * FROM T", catalog)
        assert isinstance(plan, Distinct)

    def test_projection(self, catalog):
        plan = compile_sql("SELECT k FROM T", catalog)
        assert isinstance(plan, Project)

    def test_flat_where_uses_select(self, catalog):
        plan = compile_sql("SELECT k FROM T WHERE v > 10", catalog)
        assert isinstance(plan.child, Select)

    def test_subquery_where_uses_nested_select(self, catalog):
        plan = compile_sql(
            "SELECT k FROM T WHERE EXISTS (SELECT * FROM U WHERE U.k = T.k)",
            catalog,
        )
        assert isinstance(plan.child, NestedSelect)
        assert isinstance(plan.child.predicate, Exists)

    def test_multi_table_from_is_cross_join(self, catalog):
        plan = compile_sql("SELECT * FROM T a, U b", catalog)
        assert isinstance(plan, Join)

    def test_order_by_on_top(self, catalog):
        plan = compile_sql("SELECT k FROM T ORDER BY k", catalog)
        assert isinstance(plan, OrderBy)

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(BindError):
            compile_sql("SELECT * FROM Nope", catalog)


class TestEvaluatedResults:
    def test_simple_filter(self, catalog):
        result = compile_sql("SELECT k FROM T WHERE v >= 20", catalog).evaluate(
            catalog
        )
        assert sorted(row[0] for row in result.rows) == [2, 2]

    def test_null_comparison_dropped(self, catalog):
        result = compile_sql("SELECT k FROM T WHERE v < 100", catalog).evaluate(
            catalog
        )
        assert 3 not in {row[0] for row in result.rows}

    def test_projection_alias(self, catalog):
        result = compile_sql("SELECT v * 2 AS dbl FROM T WHERE k = 1",
                             catalog).evaluate(catalog)
        assert result.schema.names == ("dbl",)
        assert result.rows == [(20,)]

    def test_distinct_projection(self, catalog):
        result = compile_sql("SELECT DISTINCT s FROM T", catalog).evaluate(
            catalog
        )
        assert len(result) == 3

    def test_between(self, catalog):
        result = compile_sql("SELECT k FROM T WHERE v BETWEEN 15 AND 30",
                             catalog).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [2, 2]

    def test_is_null(self, catalog):
        result = compile_sql("SELECT k FROM T WHERE v IS NULL",
                             catalog).evaluate(catalog)
        assert result.rows == [(3,)]

    def test_cross_join_count(self, catalog):
        result = compile_sql("SELECT * FROM T a, U b", catalog).evaluate(
            catalog
        )
        assert len(result) == 12

    def test_implicit_join_with_where(self, catalog):
        result = compile_sql(
            "SELECT a.k, b.w FROM T a, U b WHERE a.k = b.k", catalog
        ).evaluate(catalog)
        assert sorted(result.rows) == [(1, 5), (2, 6), (2, 6)]


class TestGroupingAndHaving:
    def test_group_by(self, catalog):
        result = compile_sql(
            "SELECT s, count(*) AS n FROM T GROUP BY s", catalog
        ).evaluate(catalog)
        assert dict(result.rows)["a"] == 2

    def test_scalar_aggregate(self, catalog):
        result = compile_sql("SELECT count(*) AS n, sum(v) AS t FROM T",
                             catalog).evaluate(catalog)
        assert result.rows == [(4, 60)]

    def test_aggregate_arithmetic(self, catalog):
        result = compile_sql(
            "SELECT sum(v) / count(v) AS avgv FROM T", catalog
        ).evaluate(catalog)
        assert result.rows == [(20.0,)]

    def test_having(self, catalog):
        result = compile_sql(
            "SELECT s, count(*) AS n FROM T GROUP BY s HAVING count(*) > 1",
            catalog,
        ).evaluate(catalog)
        assert result.rows == [("a", 2)]

    def test_having_without_aggregates_rejected(self, catalog):
        with pytest.raises(BindError):
            compile_sql("SELECT k FROM T HAVING k > 1", catalog)

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            compile_sql("SELECT k FROM T WHERE sum(v) > 1", catalog)


class TestSubqueryBinding:
    def test_exists_round_trip(self, catalog):
        result = compile_sql(
            "SELECT T.k FROM T WHERE EXISTS "
            "(SELECT * FROM U WHERE U.k = T.k)", catalog
        ).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 2, 2]

    def test_not_in_round_trip(self, catalog):
        result = compile_sql(
            "SELECT U.k FROM U WHERE U.k NOT IN (SELECT T.k FROM T)",
            catalog,
        ).evaluate(catalog)
        assert result.rows == [(9,)]

    def test_quantified_binding(self, catalog):
        plan = compile_sql(
            "SELECT * FROM U WHERE w < ALL (SELECT v FROM T WHERE T.k = U.k)",
            catalog,
        )
        assert isinstance(plan.predicate, QuantifiedComparison)

    def test_scalar_subquery_binding(self, catalog):
        plan = compile_sql(
            "SELECT k FROM T WHERE v > (SELECT avg(w) FROM U)", catalog
        )
        predicate = plan.child.predicate
        assert isinstance(predicate, ScalarComparison)
        assert predicate.subquery.aggregate is not None

    def test_correlated_scalar_result(self, catalog):
        result = compile_sql(
            "SELECT T.k FROM T WHERE T.v > (SELECT sum(U.w) FROM U "
            "WHERE U.k = T.k)", catalog
        ).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 2, 2]

    def test_multi_item_subquery_rejected(self, catalog):
        with pytest.raises(BindError):
            compile_sql(
                "SELECT k FROM T WHERE v IN (SELECT k, w FROM U)", catalog
            )

    def test_group_by_in_subquery_rejected(self, catalog):
        with pytest.raises(BindError):
            compile_sql(
                "SELECT k FROM T WHERE v IN "
                "(SELECT sum(w) FROM U GROUP BY k)", catalog
            )

    def test_order_by_in_subquery_rejected(self, catalog):
        with pytest.raises(BindError):
            compile_sql(
                "SELECT k FROM T WHERE v IN (SELECT w FROM U ORDER BY w)",
                catalog,
            )


class TestHavingSubqueries:
    def test_having_scalar_subquery(self, catalog):
        sql = ("SELECT s, sum(v) AS total FROM T GROUP BY s "
               "HAVING sum(v) > (SELECT avg(w) FROM U)")
        result = compile_sql(sql, catalog).evaluate(catalog)
        # group sums: a -> 40, b -> 20, c -> NULL; avg(w) = 6.
        assert dict(result.rows) == {"a": 40, "b": 20}

    def test_having_subquery_strategies_agree(self, catalog):
        from repro.engine import execute

        sql = ("SELECT s, count(*) AS n FROM T GROUP BY s "
               "HAVING count(*) >= ALL (SELECT k FROM U WHERE k < 3)")
        plan = compile_sql(sql, catalog)
        reference = execute(plan, catalog, "naive")
        for strategy in ("gmdj", "gmdj_optimized"):
            assert reference.bag_equal(execute(plan, catalog, strategy))

    def test_having_in_subquery(self, catalog):
        sql = ("SELECT s, count(*) AS n FROM T GROUP BY s "
               "HAVING count(*) IN (SELECT k FROM U)")
        result = compile_sql(sql, catalog).evaluate(catalog)
        assert dict(result.rows) == {"a": 2, "b": 1, "c": 1}

    def test_having_exists_uncorrelated(self, catalog):
        sql = ("SELECT s FROM T GROUP BY s "
               "HAVING EXISTS (SELECT * FROM U WHERE U.k > 5)")
        result = compile_sql(sql, catalog).evaluate(catalog)
        assert len(result) == 3  # U has k=9, so every group passes
