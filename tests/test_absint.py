"""Unit coverage for the capability abstract-interpretation pass.

The certificate's three fact families each get direct tests —
nullability lattice transfers, the Gray et al. aggregate taxonomy, and
θ-conjunct classification — plus plan-level tests pinning the ambient
certificate plumbing and the acceptance criterion that every corpus
case certifies.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import Database
from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import (
    TRUE,
    Arithmetic,
    Coalesce,
    Column,
    Comparison,
    IsNull,
    Literal,
)
from repro.errors import TranslationError
from repro.fuzz.datagen import DatabaseSpec
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.lint.absint import (
    ALWAYS,
    MAYBE,
    NEVER,
    Nullability,
    aggregate_nullability,
    capability_scope,
    certify_capabilities,
    classify_aggregate,
    classify_condition,
    classify_conjunct,
    current_capabilities,
    decomposable_aggregates,
    expression_nullability,
    stored_nullability,
)
from repro.storage import DataType, Relation

CORPUS = Path(__file__).parent / "corpus"


def kv_schema():
    return Relation.from_columns(
        [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], [],
    ).schema


class TestStoredNullability:
    def test_empty_relation_is_vacuously_never(self):
        assert stored_nullability([], 3) == [NEVER, NEVER, NEVER]

    def test_mixed_columns(self):
        rows = [(1, None, None), (2, 5, None)]
        assert stored_nullability(rows, 3) == [NEVER, MAYBE, ALWAYS]


class TestExpressionNullability:
    def setup_method(self):
        self.schema = kv_schema()

    def verdict(self, expression, env=(NEVER, MAYBE)):
        return expression_nullability(expression, self.schema, list(env))

    def test_column_reads_environment(self):
        assert self.verdict(Column("K")) is NEVER
        assert self.verdict(Column("Y")) is MAYBE

    def test_literals(self):
        assert self.verdict(Literal(None)) is ALWAYS
        assert self.verdict(Literal(7)) is NEVER

    def test_is_null_is_two_valued(self):
        assert self.verdict(IsNull(Column("Y"))) is NEVER

    def test_coalesce_transfer(self):
        assert self.verdict(Coalesce(Column("Y"), Literal(0))) is NEVER
        assert self.verdict(Coalesce(Column("Y"), Column("Y"))) is MAYBE
        assert self.verdict(Coalesce(Literal(None), Literal(None))) is ALWAYS

    def test_arithmetic_is_null_strict(self):
        plus = Arithmetic("+", Column("K"), Literal(1))
        assert self.verdict(plus) is NEVER
        tainted = Arithmetic("+", Column("K"), Column("Y"))
        assert self.verdict(tainted) is MAYBE

    def test_division_never_certifies(self):
        division = Arithmetic("/", Column("K"), Literal(1))
        assert self.verdict(division) is MAYBE

    def test_comparison_maybe_on_nullable_operand(self):
        assert self.verdict(Comparison("=", Column("K"), Literal(1))) is NEVER
        assert self.verdict(Comparison("=", Column("Y"), Literal(1))) is MAYBE

    def test_join_is_least_upper_bound(self):
        assert Nullability.join(NEVER, NEVER) is NEVER
        assert Nullability.join(NEVER, ALWAYS) is MAYBE
        assert Nullability.join(ALWAYS, ALWAYS) is ALWAYS


class TestAggregateNullability:
    def setup_method(self):
        self.schema = kv_schema()

    def test_count_never_null_even_on_empty_groups(self):
        spec = AggregateSpec("count", None, "cnt")
        verdict = aggregate_nullability(spec, False, self.schema,
                                        [NEVER, NEVER])
        assert verdict is NEVER

    def test_value_aggregate_maybe_over_theta_groups(self):
        # A GMDJ θ-group can be empty, so SUM may be NULL even on a
        # NEVER-null argument.
        spec = AggregateSpec("sum", Column("Y"), "total")
        verdict = aggregate_nullability(spec, False, self.schema,
                                        [NEVER, NEVER])
        assert verdict is MAYBE

    def test_value_aggregate_never_when_keyed_and_argument_never(self):
        spec = AggregateSpec("sum", Column("Y"), "total")
        verdict = aggregate_nullability(spec, True, self.schema,
                                        [NEVER, NEVER])
        assert verdict is NEVER

    def test_all_null_argument_dominates(self):
        spec = AggregateSpec("max", Column("Y"), "top")
        verdict = aggregate_nullability(spec, True, self.schema,
                                        [NEVER, ALWAYS])
        assert verdict is ALWAYS


class TestAggregateClassification:
    @pytest.mark.parametrize("function,merge", [
        ("count", "add"), ("sum", "add"), ("min", "min"), ("max", "max"),
    ])
    def test_distributive(self, function, merge):
        argument = None if function == "count" else Column("Y")
        capability = classify_aggregate(
            AggregateSpec(function, argument, "out")
        )
        assert capability.klass == "distributive"
        assert capability.merge == merge
        assert capability.decomposable

    def test_avg_is_algebraic(self):
        capability = classify_aggregate(AggregateSpec("avg", Column("Y"), "a"))
        assert capability.klass == "algebraic"
        assert "sum" in capability.merge and "count" in capability.merge
        assert capability.decomposable

    def test_distinct_is_holistic(self):
        capability = classify_aggregate(
            AggregateSpec("count", Column("Y"), "c", distinct=True)
        )
        assert capability.klass == "holistic"
        assert capability.merge is None
        assert not capability.decomposable

    def test_decomposable_aggregates_gate(self):
        from repro.algebra.operators import ScanTable

        condition = Comparison("=", Column("B.K"), Column("R.K"))
        plain = GMDJ(ScanTable("B"), ScanTable("R"), [ThetaBlock(
            [AggregateSpec("sum", Column("Y"), "total")], condition,
        )])
        assert decomposable_aggregates(plain)
        holistic = GMDJ(ScanTable("B"), ScanTable("R"), [ThetaBlock(
            [AggregateSpec("count", Column("Y"), "c", distinct=True)],
            condition,
        )])
        assert not decomposable_aggregates(holistic)


class TestThetaClassification:
    def test_conjunct_classes(self):
        cases = [
            (Comparison("=", Column("B.K"), Column("R.K")), "equality"),
            (Comparison("<>", Column("B.K"), Column("R.K")), "inequality"),
            (Comparison(">", Column("R.Y"), Literal(5)), "range"),
            (IsNull(Column("R.Y")), "null-test"),
            (TRUE, "constant"),
            (Comparison(">", Arithmetic("+", Column("R.Y"), Literal(1)),
                        Literal(5)), "opaque"),
        ]
        for conjunct, expected in cases:
            klass, _ = classify_conjunct(conjunct)
            assert klass == expected, conjunct

    def test_range_monotone_facts_are_oriented(self):
        klass, facts = classify_conjunct(
            Comparison("<", Literal(5), Column("R.Y"))
        )
        assert klass == "range"
        assert ("R.Y", ">") in facts

    def test_classify_condition_collects_facts(self):
        from repro.storage import Schema

        schema = Schema.of(
            ("K", DataType.INTEGER), ("Y", DataType.INTEGER), qualifier="R",
        )
        condition = Comparison("=", Column("B.K"), Column("R.K")) \
            & Comparison(">", Column("R.Y"), Literal(5))
        fact = classify_condition(0, condition, schema)
        assert fact.classes == ("equality", "range")
        assert fact.monotone == (("R.Y", ">"),)
        assert not fact.opaque


class TestPlanCertification:
    def make_db(self):
        db = Database()
        db.create_table("B", [("K", DataType.INTEGER)], [(1,), (2,), (3,)])
        db.create_table(
            "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(1, 10), (1, None), (2, 30)],
        )
        return db

    def translate(self, db, sql):
        from repro.unnesting.translate import subquery_to_gmdj

        return subquery_to_gmdj(db.sql(sql), db.catalog, optimize=True)

    def test_exists_plan_certifies_never_null_key(self):
        db = self.make_db()
        plan = self.translate(
            db,
            "SELECT b.K FROM B b WHERE EXISTS "
            "(SELECT * FROM R r WHERE r.K = b.K)",
        )
        certificate = certify_capabilities(plan, db.catalog)
        assert certificate.complete
        assert certificate.never_null_columns == {"b.K"}
        assert certificate.decomposable
        assert len(certificate.entries) == 1
        entry = certificate.entries[0]
        assert entry.relation == "R"
        assert "K" in entry.detail_never_null
        assert "V" not in entry.detail_never_null

    def test_certificate_json_round_trips(self):
        db = self.make_db()
        plan = self.translate(
            db,
            "SELECT b.K FROM B b WHERE 1 <= "
            "(SELECT COUNT(*) FROM R r WHERE r.K = b.K)",
        )
        payload = certify_capabilities(plan, db.catalog).to_json()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["complete"] is True
        assert payload["entries"][0]["aggregates"][0]["class"] == (
            "distributive"
        )

    def test_ambient_scope_installs_and_restores(self):
        db = self.make_db()
        plan = self.translate(
            db,
            "SELECT b.K FROM B b WHERE EXISTS "
            "(SELECT * FROM R r WHERE r.K = b.K)",
        )
        certificate = certify_capabilities(plan, db.catalog)
        assert current_capabilities() is None
        with capability_scope(certificate) as installed:
            assert installed is certificate
            assert current_capabilities() is certificate
        assert current_capabilities() is None


class TestCorpusCoverage:
    """Acceptance criterion: every corpus plan receives a certificate."""

    @pytest.mark.parametrize(
        "path", sorted(CORPUS.glob("*.json")), ids=lambda p: p.stem,
    )
    def test_corpus_case_certifies(self, path):
        data = json.loads(path.read_text())
        spec = DatabaseSpec.from_json(data["tables"])
        db = Database()
        for name, table in spec.tables.items():
            db.create_table(name, list(table.columns), table.rows)
        from repro.unnesting.translate import subquery_to_gmdj

        query = db.sql(data["sql"])
        try:
            plan = subquery_to_gmdj(query, db.catalog, optimize=True)
        except TranslationError:
            plan = query
        certificate = certify_capabilities(plan, db.catalog)
        assert certificate.columns, path.name
        assert all(
            isinstance(column.nullability, Nullability)
            for column in certificate.columns
        )
