"""The deprecated ``repro.engine.stats`` alias warns exactly once."""

from __future__ import annotations

import sys
import warnings

import pytest


def _forget_shim() -> None:
    sys.modules.pop("repro.engine.stats", None)


def test_import_warns_exactly_once():
    _forget_shim()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.engine.stats  # noqa: F401
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "repro.engine.reports" in str(deprecations[0].message)


def test_reimport_is_silent():
    _forget_shim()
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        import repro.engine.stats  # noqa: F401
    # A second import hits sys.modules and must not re-execute the module.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.engine.stats  # noqa: F401
    assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []


def test_shim_reexports_execution_report():
    _forget_shim()
    with pytest.warns(DeprecationWarning):
        import repro.engine.stats as stats
    from repro.engine.reports import ExecutionReport

    assert stats.ExecutionReport is ExecutionReport
    assert stats.__all__ == ["ExecutionReport"]


def test_no_straggler_imports_in_package():
    """No module under repro imports the shim any more."""
    import pathlib

    import repro

    root = pathlib.Path(repro.__file__).parent
    offenders = []
    for path in root.rglob("*.py"):
        if path.name == "stats.py":
            continue
        text = path.read_text()
        if "engine.stats" in text or "engine import stats" in text:
            offenders.append(str(path))
    assert offenders == []
