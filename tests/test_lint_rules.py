"""Fixture coverage for every diagnostic code the static verifier emits.

Each test builds the smallest plan that trips exactly the rule under
test; the final test asserts the fixtures jointly cover the whole
``DIAGNOSTIC_CODES`` registry, so a new code cannot land without a
triggering fixture.
"""

from __future__ import annotations

import pytest

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import (
    TRUE,
    And,
    Column,
    Comparison,
    Literal,
)
from repro.algebra.nested import (
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
)
from repro.algebra.operators import (
    GroupBy,
    Join,
    Project,
    ScanTable,
    Select,
    Union,
)
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.lint import (
    DIAGNOSTIC_CODES,
    PlanDiagnostic,
    Severity,
    lint_plan,
    plan_codes,
    severity_of,
)
from repro.storage import DataType

from .conftest import make_catalog


def count_star(name: str) -> AggregateSpec:
    return AggregateSpec("count", None, name)


@pytest.fixture
def string_catalog():
    return make_catalog(
        Flow=(
            [("Protocol", DataType.STRING), ("NumBytes", DataType.INTEGER)],
            [("HTTP", 12), ("FTP", 48)],
        ),
    )


def _fixture_plans(kv_catalog, string_catalog):
    """``code -> (catalog, plan)`` — the registry-coverage fixtures."""
    B = ScanTable("B")
    R = ScanTable("R")
    plans = {}
    plans["L001"] = (
        kv_catalog,
        Select(B, Comparison("=", Column("B.NOPE"), Literal(1))),
    )
    plans["L002"] = (
        kv_catalog,
        Select(
            Join(B, R, TRUE),
            Comparison("=", Column("K"), Literal(1)),
        ),
    )
    plans["L003"] = (
        string_catalog,
        Select(
            ScanTable("Flow"),
            Comparison("=", Column("Flow.Protocol"), Literal(1)),
        ),
    )
    plans["L004"] = (
        kv_catalog,
        Union(B, Project(R, ["R.K"])),
    )
    plans["L005"] = (
        kv_catalog,
        Project(B, [(Column("B.K"), "K"), (Column("B.X"), "K")]),
    )
    plans["L006"] = (
        kv_catalog,
        GMDJ(B, R, [ThetaBlock(
            [count_star("cnt")],
            Comparison("=", Column("B.K"), Column("Q.Z")),
        )]),
    )
    plans["L007"] = (
        kv_catalog,
        GMDJ(B, ScanTable("B", alias="__p1"), [ThetaBlock(
            [count_star("cnt")],
            And(
                Comparison("=", Column("B.K"), Column("__p1.K")),
                Comparison("=", Column("B.X"), Column("__p1.X")),
            ),
        )]),
    )
    plans["L008"] = (kv_catalog, ScanTable("Nope"))
    plans["L009"] = (
        string_catalog,
        GroupBy(
            ScanTable("Flow"), [],
            [AggregateSpec("sum", Column("Flow.Protocol"), "s")],
        ),
    )
    plans["L010"] = (kv_catalog, Select(B, Column("B.K")))
    plans["W101"] = (
        kv_catalog,
        NestedSelect(B, QuantifiedComparison(
            "<>", "all", Column("B.X"),
            Subquery(R, TRUE, item=Column("R.Y")),
        )),
    )
    plans["W102"] = (
        kv_catalog,
        Select(B, Comparison("=", Column("B.K"), Literal(None))),
    )
    inner = GMDJ(B, ScanTable("R", "__p1"),
                 [ThetaBlock([count_star("c1")], TRUE)])
    plans["A201"] = (
        kv_catalog,
        GMDJ(inner, ScanTable("R", "__p2"),
             [ThetaBlock([count_star("c2")], TRUE)]),
    )
    plans["A202"] = (
        kv_catalog,
        Join(
            ScanTable("B", alias="B2"),
            GMDJ(B, R, [ThetaBlock(
                [count_star("cnt")],
                Comparison("=", Column("B.K"), Column("R.K")),
            )]),
            Comparison("=", Column("B2.K"), Column("B.K")),
        ),
    )
    plans["A203"] = (
        kv_catalog,
        GMDJ(B, R, [ThetaBlock(
            [count_star("cnt")],
            Comparison("<>", Column("B.K"), Column("R.K")),
        )]),
    )
    plans["A204"] = (
        kv_catalog,
        NestedSelect(B, ScalarComparison(
            ">", Column("B.X"),
            Subquery(R, TRUE,
                     aggregate=AggregateSpec("max", Column("R.Y"), "m")),
        )),
    )
    return plans


@pytest.fixture
def fixture_plans(kv_catalog, string_catalog):
    return _fixture_plans(kv_catalog, string_catalog)


class TestEachCodeHasAFixture:
    @pytest.mark.parametrize("code", sorted(plan_codes()))
    def test_fixture_triggers_code(self, code, fixture_plans):
        catalog, plan = fixture_plans[code]
        report = lint_plan(plan, catalog)
        assert code in report.codes(), report.render()

    def test_registry_completeness(self, fixture_plans):
        """The fixtures jointly exercise the whole plan-level registry.

        Source-level ``Cxxx`` codes get the same treatment with source
        fixtures in ``tests/test_concurrency_lint.py``.
        """
        assert set(fixture_plans) == plan_codes()
        triggered = set()
        for catalog, plan in fixture_plans.values():
            triggered |= lint_plan(plan, catalog).codes()
        assert triggered == plan_codes()

    def test_l007_fixture_fires_nothing_else(self, fixture_plans):
        catalog, plan = fixture_plans["L007"]
        report = lint_plan(plan, catalog)
        assert report.codes() == {"L007"}


class TestTargetedBehaviour:
    def test_clean_plan_is_empty(self, kv_catalog):
        plan = Select(
            ScanTable("B"), Comparison(">", Column("B.X"), Literal(2))
        )
        report = lint_plan(plan, kv_catalog)
        assert report.ok
        assert report.diagnostics == []

    def test_null_safe_identity_link_passes(self, kv_catalog):
        """The correct translator output (null-safe links) does not trip L007."""
        from repro.algebra.expressions import IsNull, Or

        def safe(left: str, right: str):
            return Or(
                Comparison("=", Column(left), Column(right)),
                And(IsNull(Column(left)), IsNull(Column(right))),
            )

        plan = GMDJ(
            ScanTable("B"), ScanTable("B", alias="__p1"),
            [ThetaBlock(
                [count_star("cnt")],
                And(safe("B.K", "__p1.K"), safe("B.X", "__p1.X")),
            )],
        )
        report = lint_plan(plan, kv_catalog)
        assert "L007" not in report.codes(), report.render()

    def test_partially_unsafe_link_still_fires(self, kv_catalog):
        """One plain '=' conjunct among null-safe ones is still a bug."""
        from repro.algebra.expressions import IsNull, Or

        safe_k = Or(
            Comparison("=", Column("B.K"), Column("__p1.K")),
            And(IsNull(Column("B.K")), IsNull(Column("__p1.K"))),
        )
        plan = GMDJ(
            ScanTable("B"), ScanTable("B", alias="__p1"),
            [ThetaBlock(
                [count_star("cnt")],
                And(safe_k, Comparison("=", Column("B.X"), Column("__p1.X"))),
            )],
        )
        report = lint_plan(plan, kv_catalog)
        assert "L007" in report.codes()

    def test_base_side_copy_is_exempt(self, kv_catalog):
        """Correlation substitutions put the copy on the *base* side —
        those plain equalities are correlations, not identity links."""
        plan = GMDJ(
            ScanTable("B", alias="__p1"), ScanTable("B", alias="D"),
            [ThetaBlock(
                [count_star("cnt")],
                And(
                    Comparison("=", Column("__p1.K"), Column("D.K")),
                    Comparison("=", Column("__p1.X"), Column("D.X")),
                ),
            )],
        )
        report = lint_plan(plan, kv_catalog)
        assert "L007" not in report.codes(), report.render()

    def test_w101_silent_without_stored_nulls(self):
        """W101 only fires when the traced column demonstrably holds NULLs."""
        catalog = make_catalog(
            B=([("K", DataType.INTEGER), ("X", DataType.INTEGER)],
               [(0, 5), (1, 2)]),
            R=([("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
               [(0, 3), (1, 4)]),
        )
        plan = NestedSelect(ScanTable("B"), QuantifiedComparison(
            "<>", "all", Column("B.X"),
            Subquery(ScanTable("R"), TRUE, item=Column("R.Y")),
        ))
        report = lint_plan(plan, catalog)
        assert "W101" not in report.codes(), report.render()

    def test_advice_false_suppresses_advisories(self, fixture_plans):
        for code in ("A201", "A202", "A203", "A204"):
            catalog, plan = fixture_plans[code]
            report = lint_plan(plan, catalog, advice=False)
            assert code not in report.codes()
            assert report.advice == []

    def test_a203_skips_base_independent_blocks(self, kv_catalog):
        """An uncorrelated quantifier-count block has nothing to hash."""
        plan = GMDJ(ScanTable("B"), ScanTable("R"), [ThetaBlock(
            [count_star("cnt")],
            Comparison(">", Column("R.Y"), Literal(3)),
        )])
        report = lint_plan(plan, kv_catalog)
        assert "A203" not in report.codes(), report.render()


class TestDiagnosticPlumbing:
    def test_severity_bands(self):
        assert severity_of("L007") is Severity.ERROR
        assert severity_of("W101") is Severity.WARNING
        assert severity_of("A201") is Severity.ADVICE
        with pytest.raises(ValueError):
            severity_of("X999")

    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            PlanDiagnostic("L999", "nope", "path")

    def test_render_and_json(self, fixture_plans):
        catalog, plan = fixture_plans["L001"]
        report = lint_plan(plan, catalog)
        (diag,) = report.errors
        assert diag.render().startswith("[L001] ")
        payload = diag.to_json()
        assert payload["code"] == "L001"
        assert payload["severity"] == "error"
        assert report.to_json()["ok"] is False

    def test_report_sorted_worst_first(self, kv_catalog, fixture_plans):
        report = lint_plan(*reversed(fixture_plans["A204"]))
        report.add("L001", "synthetic", "p")
        ordered = report.sorted()
        assert [d.severity for d in ordered] == sorted(
            (d.severity for d in ordered), reverse=True
        )

    def test_summary_counts(self, fixture_plans):
        catalog, plan = fixture_plans["W102"]
        report = lint_plan(plan, catalog)
        assert report.summary() == "0 error(s), 1 warning(s), 0 advisory(ies)"
