"""Tests for partitioned (parallel/distributed) GMDJ evaluation."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import TRUE, col
from repro.algebra.operators import ScanTable
from repro.errors import ConfigurationError, ReproError
from repro.gmdj import evaluate_gmdj_partitioned, md, partition_rows
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER)], [(i,) for i in range(12)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 12, i if i % 7 else None) for i in range(90)],
    ))
    return cat


def full_gmdj():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt"), agg("sum", col("r.V"), "s"),
                agg("avg", col("r.V"), "a"), agg("min", col("r.V"), "lo"),
                agg("max", col("r.V"), "hi")]],
              [col("b.K") == col("r.K")])


class TestPartitionRows:
    def test_fragments_cover_relation(self, catalog):
        relation = catalog.table("R")
        fragments = partition_rows(relation, 4)
        assert sum(len(f) for f in fragments) == len(relation)

    def test_more_partitions_than_rows(self):
        relation = Relation.from_columns([("x", DataType.INTEGER)], [(1,)])
        fragments = partition_rows(relation, 5)
        assert sum(len(f) for f in fragments) == 1

    def test_empty_relation(self):
        relation = Relation.from_columns([("x", DataType.INTEGER)], [])
        assert sum(len(f) for f in partition_rows(relation, 3)) == 0

    def test_invalid_partition_count(self, catalog):
        with pytest.raises(ConfigurationError):
            partition_rows(catalog.table("R"), 0)

    def test_invalid_count_is_both_library_and_value_error(self, catalog):
        # Dual inheritance contract: old ``except ValueError`` callers
        # and library-wide ``except ReproError`` handlers both catch it.
        with pytest.raises(ValueError):
            partition_rows(catalog.table("R"), -1)
        with pytest.raises(ReproError):
            partition_rows(catalog.table("R"), -1)

    def test_evaluate_validates_partitions_up_front(self, catalog):
        with pytest.raises(ConfigurationError):
            evaluate_gmdj_partitioned(full_gmdj(), catalog, 0)


class TestPartitionedEquivalence:
    @pytest.mark.parametrize("partitions", [1, 2, 3, 4, 7, 16])
    def test_matches_single_scan(self, catalog, partitions):
        single = full_gmdj().evaluate(catalog)
        partitioned = evaluate_gmdj_partitioned(full_gmdj(), catalog,
                                                partitions)
        assert single.bag_equal(partitioned)

    def test_avg_reconstructed_exactly(self, catalog):
        single = full_gmdj().evaluate(catalog)
        partitioned = evaluate_gmdj_partitioned(full_gmdj(), catalog, 3)
        schema = single.schema
        index = schema.index_of("a")
        lhs = sorted((row[0], row[index]) for row in single.rows)
        rhs = sorted((row[0], row[index]) for row in partitioned.rows)
        assert lhs == rhs

    def test_empty_detail(self, catalog):
        catalog.replace_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)], [],
        ))
        single = full_gmdj().evaluate(catalog)
        partitioned = evaluate_gmdj_partitioned(full_gmdj(), catalog, 4)
        assert single.bag_equal(partitioned)

    def test_scan_volume_unchanged(self, catalog):
        with collect() as single_stats:
            full_gmdj().evaluate(catalog)
        with collect() as parallel_stats:
            evaluate_gmdj_partitioned(full_gmdj(), catalog, 3)
        # Parallelism must not add data passes: total detail tuples
        # scanned are identical (fragments partition the relation).
        assert (parallel_stats.tuples_scanned
                == single_stats.tuples_scanned)

    def test_multi_block_with_scan_partitioning(self, catalog):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c1")], [count_star("c2")]],
                  [col("b.K") < col("r.V"), TRUE])
        single = plan.evaluate(catalog)
        partitioned = evaluate_gmdj_partitioned(
            md(ScanTable("B", "b"), ScanTable("R", "r"),
               [[count_star("c1")], [count_star("c2")]],
               [col("b.K") < col("r.V"), TRUE]),
            catalog, 5,
        )
        assert single.bag_equal(partitioned)


class TestPartitionedProperty:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 5),
                      st.one_of(st.none(), st.integers(0, 9))),
            min_size=0, max_size=30,
        ),
        partitions=st.integers(min_value=1, max_value=8),
    )
    def test_any_partitioning_is_exact(self, rows, partitions):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(i,) for i in range(6)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)], rows,
        ))
        single = full_gmdj().evaluate(catalog)
        partitioned = evaluate_gmdj_partitioned(full_gmdj(), catalog,
                                                partitions)
        assert single.bag_equal(partitioned)
