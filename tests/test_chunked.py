"""Tests for memory-bounded (base-chunked) GMDJ evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import col
from repro.algebra.operators import ScanTable
from repro.errors import ConfigurationError, ReproError
from repro.gmdj.chunked import detail_scans_required, evaluate_gmdj_chunked
from repro.gmdj import md
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER)], [(i,) for i in range(25)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 25, i) for i in range(150)],
    ))
    return cat


def plan():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt"), agg("sum", col("r.V"), "s")]],
              [col("b.K") == col("r.K")])


class TestEquivalence:
    @pytest.mark.parametrize("budget", [1, 3, 7, 10, 25, 1000])
    def test_matches_in_memory(self, catalog, budget):
        expected = plan().evaluate(catalog)
        chunked = evaluate_gmdj_chunked(plan(), catalog, budget)
        assert expected.bag_equal(chunked)

    def test_invalid_budget(self, catalog):
        with pytest.raises(ConfigurationError):
            evaluate_gmdj_chunked(plan(), catalog, 0)

    def test_invalid_budget_is_both_library_and_value_error(self, catalog):
        # ConfigurationError must stay catchable as either base so old
        # callers (``except ValueError``) and library-wide handlers
        # (``except ReproError``) both keep working.
        with pytest.raises(ValueError):
            evaluate_gmdj_chunked(plan(), catalog, -3)
        with pytest.raises(ReproError):
            evaluate_gmdj_chunked(plan(), catalog, -3)


class TestWellDefinedCost:
    def test_formula(self):
        assert detail_scans_required(25, 10) == 3
        assert detail_scans_required(25, 25) == 1
        assert detail_scans_required(0, 5) == 1
        with pytest.raises(ConfigurationError):
            detail_scans_required(10, 0)

    @pytest.mark.parametrize("budget,expected_scans", [(10, 3), (5, 5),
                                                       (25, 1)])
    def test_measured_scans_match_formula(self, catalog, budget,
                                          expected_scans):
        with collect() as stats:
            evaluate_gmdj_chunked(plan(), catalog, budget)
        # One scan of B plus the predicted number of detail scans.
        assert stats.relation_scans == 1 + expected_scans
        # Detail tuples scanned scale exactly with the formula.
        assert stats.tuples_scanned == 25 + 150 * expected_scans


class TestChunkedProperty:
    @settings(max_examples=40, deadline=None)
    @given(budget=st.integers(min_value=1, max_value=30),
           base_size=st.integers(min_value=0, max_value=20))
    def test_any_budget_exact(self, budget, base_size):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(i,) for i in range(base_size)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(i % 7, i) for i in range(40)],
        ))
        expected = plan().evaluate(catalog)
        chunked = evaluate_gmdj_chunked(plan(), catalog, budget)
        assert expected.bag_equal(chunked)
