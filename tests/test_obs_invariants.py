"""Tests for the runtime invariant checker (repro.obs.invariants)."""

import pytest

from repro.bench.workloads import (
    build_fig5,
    build_table1_catalog,
    table1_queries,
)
from repro.engine import execute
from repro.errors import InvariantViolation
from repro.obs.invariants import check_trace
from repro.obs.tracer import span, tracing
from repro.unnesting import subquery_to_gmdj


@pytest.fixture(scope="module")
def table1_catalog():
    return build_table1_catalog(outer=40, inner=200)


class TestTable1Invariants:
    """Every Table 1 rewrite holds the paper's cost claims at runtime."""

    @pytest.mark.parametrize("form", sorted(table1_queries()))
    def test_single_scan_and_output_bound(self, table1_catalog, form):
        query = table1_queries()[form]
        with tracing() as tracer:
            execute(query, table1_catalog, "gmdj_optimized")
        report = check_trace(
            tracer.trace(), single_scan_tables={"R"}, strict=True
        )
        assert report.ok
        assert report.checked >= 3  # single-scan, |B|-bound, Prop. 4.1

    def test_chunked_run_holds(self, table1_catalog):
        query = table1_queries()["exists"]
        with tracing() as tracer:
            execute(query, table1_catalog, "gmdj_chunked")
        report = check_trace(tracer.trace(), strict=True)
        assert report.ok
        chunked = tracer.trace().find(kind="gmdj_chunked")
        assert chunked and chunked[0].attrs["expected_scans"] >= 1

    def test_partitioned_run_holds(self, table1_catalog):
        query = table1_queries()["exists"]
        with tracing() as tracer:
            execute(query, table1_catalog, "gmdj_parallel")
        report = check_trace(tracer.trace(), strict=True)
        assert report.ok


class TestDecoalescedPlanTripsProp41:
    """A de-coalesced plan scans the shared detail twice — Prop. 4.1."""

    def run_trace(self):
        workload = build_fig5(120, outer_size=20)
        plan = subquery_to_gmdj(
            workload.query, workload.catalog, optimize=False
        )
        with tracing() as tracer:
            plan.evaluate(workload.catalog)
        return tracer.trace()

    def test_non_strict_records_violation(self):
        trace = self.run_trace()
        report = check_trace(trace, single_scan_tables={"orders"})
        assert not report.ok
        assert any("coalesced-single-scan" in violation
                   and "'orders'" in violation
                   for violation in report.violations)
        assert "VIOLATED" in report.summary()

    def test_strict_raises(self):
        trace = self.run_trace()
        with pytest.raises(InvariantViolation, match="Prop. 4.1"):
            check_trace(trace, single_scan_tables={"orders"}, strict=True)

    def test_per_gmdj_single_scan_still_holds(self):
        # Each *individual* GMDJ in the stacked plan is still single-scan;
        # only the query-level Prop. 4.1 claim fails.
        report = check_trace(self.run_trace())
        assert report.ok


def fabricate(builder):
    """Run ``builder`` under a fresh tracer; return the finished trace."""
    with tracing() as tracer:
        builder()
    return tracer.trace()


class TestFabricatedViolations:
    """Synthetic span trees exercising each violation message."""

    def test_multi_scan_gmdj(self):
        def build():
            with span("GMDJ", kind="gmdj", relation="R", completion=False):
                with span("scan", kind="detail_scan", relation="R", rows=5):
                    pass
                with span("scan", kind="detail_scan", relation="R", rows=5):
                    pass

        report = check_trace(fabricate(build))
        assert any(v.startswith("single-scan:") and "2 detail scans" in v
                   for v in report.violations)

    def test_completion_fused_label(self):
        def build():
            with span("GMDJ", kind="gmdj", relation="R", completion=True):
                pass

        report = check_trace(fabricate(build))
        assert any("completion-fused GMDJ" in v for v in report.violations)

    def test_output_bound(self):
        def build():
            with span("GMDJ", kind="gmdj", relation="R") as sp:
                with span("scan", kind="detail_scan", relation="R"):
                    pass
                sp.set(base_rows=3, output_rows=7)

        report = check_trace(fabricate(build))
        assert any(v.startswith("|B|-bound:") and "7 rows" in v
                   for v in report.violations)

    def test_chunked_scan_count(self):
        def build():
            with span("GMDJ(chunked)", kind="gmdj_chunked",
                      budget=10, base_rows=30, expected_scans=3):
                for _ in range(2):
                    with span("scan", kind="detail_scan", rows=5):
                        pass

        report = check_trace(fabricate(build))
        assert any(v.startswith("chunked-cost:") and "saw 2" in v
                   for v in report.violations)

    def test_partition_volume(self):
        def build():
            with span("GMDJ(partitioned)", kind="gmdj_partitioned",
                      detail_rows=10):
                with span("scan", kind="detail_scan", rows=4):
                    pass
                with span("scan", kind="detail_scan", rows=5):
                    pass

        report = check_trace(fabricate(build))
        assert any(v.startswith("partition-volume:")
                   and "9 tuples" in v for v in report.violations)

    def test_nested_gmdj_scans_attributed_to_nearest_owner(self):
        # The inner GMDJ's scan must not count against the outer one.
        def build():
            with span("outer", kind="gmdj", relation="R"):
                with span("scan", kind="detail_scan", relation="R"):
                    pass
                with span("inner", kind="gmdj", relation="S"):
                    with span("scan", kind="detail_scan", relation="S"):
                        pass

        report = check_trace(fabricate(build))
        assert report.ok

    def test_strict_message_lists_every_violation(self):
        def build():
            with span("GMDJ", kind="gmdj", relation="R") as sp:
                sp.set(base_rows=1, output_rows=2)

        with pytest.raises(InvariantViolation) as excinfo:
            check_trace(fabricate(build), strict=True)
        assert "single-scan" in str(excinfo.value)
        assert "|B|-bound" in str(excinfo.value)
