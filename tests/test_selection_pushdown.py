"""Tests for commuting base-only selections below the GMDJ."""

import pytest

from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.nested import Exists, NestedSelect, Subquery
from repro.algebra.operators import ScanTable, Select
from repro.baselines import evaluate_naive
from repro.gmdj import GMDJ, md, push_base_selections
from repro.algebra.aggregates import count_star
from repro.storage import Catalog, DataType, Relation, collect
from repro.unnesting import subquery_to_gmdj


@pytest.fixture
def catalog(kv_catalog) -> Catalog:
    return kv_catalog


def base_gmdj():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt")]], [col("b.K") == col("r.K")])


class TestRewrite:
    def test_base_only_conjunct_sinks(self, catalog):
        plan = Select(base_gmdj(),
                      (col("b.X") > lit(2))
                      & Comparison(">", col("cnt"), lit(0)))
        pushed = push_base_selections(plan, catalog)
        assert isinstance(pushed, Select)           # count condition stays
        assert isinstance(pushed.child, GMDJ)
        assert isinstance(pushed.child.base, Select)  # base filter sank
        assert plan.evaluate(catalog).bag_equal(pushed.evaluate(catalog))

    def test_pure_base_selection_sinks_entirely(self, catalog):
        plan = Select(base_gmdj(), col("b.X") > lit(2))
        pushed = push_base_selections(plan, catalog)
        assert isinstance(pushed, GMDJ)
        assert plan.evaluate(catalog).bag_equal(pushed.evaluate(catalog))

    def test_count_condition_never_sinks(self, catalog):
        plan = Select(base_gmdj(), Comparison("=", col("cnt"), lit(0)))
        pushed = push_base_selections(plan, catalog)
        assert isinstance(pushed, Select)
        assert not isinstance(pushed.child.base, Select)

    def test_detail_referencing_conjunct_stays(self, catalog):
        # A predicate over detail-side attrs cannot sink into the base.
        plan = Select(base_gmdj(), col("b.X") > col("cnt"))
        pushed = push_base_selections(plan, catalog)
        assert isinstance(pushed, Select)


class TestEndToEnd:
    def test_mixed_where_clause_optimized(self, catalog):
        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"), col("r.K") == col("b.K")))
            & (col("b.X") > lit(2)),
        )
        expected = evaluate_naive(query, catalog)
        optimized = subquery_to_gmdj(query, catalog, optimize=True)
        assert expected.bag_equal(optimized.evaluate(catalog))

    def test_pushdown_reduces_base_work(self):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(i, i % 100) for i in range(2000)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER)], [(i % 2000,) for i in range(4000)],
        ))
        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"), col("r.K") == col("b.K")))
            & (col("b.X") < lit(5)),  # keeps 5% of the base
        )
        plain = subquery_to_gmdj(query, catalog, optimize=True,
                                 coalesce=False, completion=False)
        # Without push-down (optimize with everything off except folding):
        unpushed = subquery_to_gmdj(query, catalog)
        with collect() as pushed_stats:
            pushed_result = plain.evaluate(catalog)
        with collect() as unpushed_stats:
            unpushed_result = unpushed.evaluate(catalog)
        assert pushed_result.bag_equal(unpushed_result)
        assert (pushed_stats.aggregate_updates
                < unpushed_stats.aggregate_updates)
