"""Deeper translator coverage: mixed quantifiers, OR forests, aggregate
arguments with arithmetic, randomized nesting shapes."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import agg
from repro.algebra.expressions import Not, TRUE, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
)
from repro.algebra.operators import ScanTable
from repro.baselines import evaluate_naive
from repro.storage import Catalog, DataType, Relation
from repro.unnesting import subquery_to_gmdj


def assert_translates(query, catalog):
    expected = evaluate_naive(query, catalog)
    plain = subquery_to_gmdj(query, catalog).evaluate(catalog)
    optimized = subquery_to_gmdj(query, catalog, optimize=True).evaluate(catalog)
    assert expected.bag_equal(plain)
    assert expected.bag_equal(optimized)
    return expected


@pytest.fixture
def catalog(kv_catalog) -> Catalog:
    return kv_catalog


class TestRicherShapes:
    def test_aggregate_with_arithmetic_argument(self, catalog):
        sub = Subquery(ScanTable("R", "r"), col("r.K") == col("b.K"),
                       aggregate=agg("sum", col("r.Y") * lit(2), "s2"))
        query = NestedSelect(
            ScanTable("B", "b"), ScalarComparison(">", col("b.X"), sub)
        )
        assert_translates(query, catalog)

    def test_arithmetic_outer_operand(self, catalog):
        sub = Subquery(ScanTable("R", "r"), col("r.K") == col("b.K"),
                       item=col("r.Y"))
        query = NestedSelect(
            ScanTable("B", "b"),
            QuantifiedComparison(">", "some", col("b.X") + lit(1), sub),
        )
        assert_translates(query, catalog)

    def test_or_of_three_subqueries(self, catalog):
        def exists(alias, low):
            return Exists(Subquery(
                ScanTable("R", alias),
                (col(f"{alias}.K") == col("b.K"))
                & (col(f"{alias}.Y") > lit(low)),
            ))

        predicate = exists("r1", 1) | exists("r2", 5) | exists("r3", 7)
        assert_translates(NestedSelect(ScanTable("B", "b"), predicate),
                          catalog)

    def test_not_over_and_of_subqueries(self, catalog):
        def exists(alias):
            return Exists(Subquery(ScanTable("R", alias),
                                   col(f"{alias}.K") == col("b.K")))

        predicate = Not(exists("r1") & Not(exists("r2")))
        assert_translates(NestedSelect(ScanTable("B", "b"), predicate),
                          catalog)

    def test_mixed_quantifiers_same_level(self, catalog):
        some = QuantifiedComparison(
            "<", "some", col("b.X"),
            Subquery(ScanTable("R", "r1"), col("r1.K") == col("b.K"),
                     item=col("r1.Y")),
        )
        all_ = QuantifiedComparison(
            "<>", "all", col("b.X"),
            Subquery(ScanTable("R", "r2"), col("r2.K") == col("b.K"),
                     item=col("r2.Y")),
        )
        assert_translates(NestedSelect(ScanTable("B", "b"), some & all_),
                          catalog)

    def test_quantifier_nested_in_quantifier(self, catalog):
        inner = QuantifiedComparison(
            ">", "some", col("r1.Y"),
            Subquery(ScanTable("R", "r2"), col("r2.K") == col("r1.K"),
                     item=col("r2.Y")),
        )
        outer_sub = Subquery(ScanTable("R", "r1"),
                             (col("r1.K") == col("b.K")) & inner,
                             item=col("r1.Y"))
        query = NestedSelect(
            ScanTable("B", "b"),
            QuantifiedComparison("<=", "all", col("b.X"), outer_sub),
        )
        assert_translates(query, catalog)

    def test_uncorrelated_inside_correlated(self, catalog):
        uncorrelated = Exists(Subquery(ScanTable("R", "r2"),
                                       col("r2.Y") > lit(7)))
        outer_sub = Subquery(ScanTable("R", "r1"),
                             (col("r1.K") == col("b.K")) & uncorrelated)
        assert_translates(
            NestedSelect(ScanTable("B", "b"), Exists(outer_sub)), catalog
        )

    def test_fully_uncorrelated_chain(self, catalog):
        inner = Exists(Subquery(ScanTable("R", "r2"), col("r2.Y") > lit(90)))
        outer = Exists(Subquery(ScanTable("R", "r1"), TRUE & inner),
                       negated=True)
        assert_translates(NestedSelect(ScanTable("B", "b"), outer), catalog)


class TestRandomizedNesting:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=st.lists(st.tuples(st.integers(0, 4),
                                st.one_of(st.none(), st.integers(0, 8))),
                      min_size=0, max_size=14),
        ops=st.lists(st.sampled_from(["=", "<>", "<", ">"]), min_size=3,
                     max_size=3),
        negations=st.lists(st.booleans(), min_size=3, max_size=3),
    )
    def test_three_level_chains(self, data, ops, negations):
        from repro.algebra.expressions import Comparison

        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(i, i * 2) for i in range(5)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], data,
        ))
        level3 = Exists(
            Subquery(ScanTable("R", "r3"),
                     Comparison(ops[2], col("r3.Y"), col("r2.Y"))),
            negated=negations[2],
        )
        level2 = Exists(
            Subquery(ScanTable("R", "r2"),
                     Comparison(ops[1], col("r2.K"), col("r1.K")) & level3),
            negated=negations[1],
        )
        level1 = Exists(
            Subquery(ScanTable("R", "r1"),
                     Comparison(ops[0], col("r1.K"), col("b.K")) & level2),
            negated=negations[0],
        )
        query = NestedSelect(ScanTable("B", "b"), level1)
        expected = evaluate_naive(query, catalog)
        translated = subquery_to_gmdj(query, catalog).evaluate(catalog)
        optimized = subquery_to_gmdj(query, catalog,
                                     optimize=True).evaluate(catalog)
        assert expected.bag_equal(translated)
        assert expected.bag_equal(optimized)
