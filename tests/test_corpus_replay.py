"""Replay the committed fuzz corpus as ordinary regression tests.

Every ``tests/corpus/*.json`` file is a shrunk counterexample from a
past fuzzing campaign (or a hand-distilled NULL pitfall), stored in the
exact format ``repro fuzz`` writes.  Replaying one runs its query
through every engine against the SQLite oracle; a clean outcome means
the bug it once witnessed stays fixed.

To add a case: run ``repro fuzz``, take the JSON it writes on a
divergence, fix the bug, confirm the replay is clean, and move the file
here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz import replay_case

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, f"no corpus cases under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=lambda path: path.stem,
)
def test_corpus_case_replays_clean(path):
    data = json.loads(path.read_text())
    outcome = replay_case(data)
    details = "\n".join(
        f"  {d.engine}: {d.kind} ({d.detail})" for d in outcome.divergences
    )
    assert outcome.ok, (
        f"{path.name} regressed — {data.get('description', '')}\n{details}"
    )
    assert outcome.engines_run > 0
