"""Unit tests for repro.algebra.expressions."""

import pytest

from repro.algebra.expressions import (
    And,
    Coalesce,
    Comparison,
    FALSE,
    IsNull,
    Not,
    Or,
    TRUE,
    col,
    conjoin,
    conjuncts_of,
    disjoin,
    lit,
)
from repro.algebra.truth import Truth
from repro.errors import ExpressionError
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

SCHEMA = Schema([
    Field("a", DataType.INTEGER, "T"),
    Field("b", DataType.INTEGER, "T"),
    Field("s", DataType.STRING, "T"),
])
ROW = (3, 7, "x")
NULL_ROW = (None, 7, None)


def run(expr, row=ROW):
    return expr.bind(SCHEMA)(row)


class TestLiterals:
    def test_literal_value(self):
        assert run(lit(42)) == 42

    def test_null_literal(self):
        assert run(lit(None)) is None

    def test_truth_literal(self):
        assert run(TRUE) is Truth.TRUE
        assert run(FALSE) is Truth.FALSE

    def test_references_empty(self):
        assert lit(1).references() == set()


class TestColumns:
    def test_qualified_lookup(self):
        assert run(col("T.b")) == 7

    def test_bare_lookup(self):
        assert run(col("a")) == 3

    def test_qualifier_property(self):
        assert col("T.a").qualifier == "T"
        assert col("a").qualifier is None

    def test_bare_name(self):
        assert col("T.a").bare_name == "a"

    def test_requalified(self):
        assert col("T.a").requalified("U").reference == "U.a"

    def test_references(self):
        assert col("T.a").references() == {"T.a"}


class TestArithmetic:
    def test_add(self):
        assert run(col("a") + col("b")) == 10

    def test_mixed_literal(self):
        assert run(col("a") * lit(2)) == 6

    def test_sub_and_div(self):
        assert run((col("b") - col("a")) / lit(2)) == 2.0

    def test_null_propagates(self):
        assert run(col("a") + col("b"), NULL_ROW) is None

    def test_division_by_zero_yields_null(self):
        assert run(col("a") / lit(0)) is None

    def test_references_union(self):
        assert (col("a") + col("b")).references() == {"a", "b"}


class TestComparisons:
    @pytest.mark.parametrize("op,expected", [
        ("=", Truth.FALSE), ("<>", Truth.TRUE), ("<", Truth.TRUE),
        ("<=", Truth.TRUE), (">", Truth.FALSE), (">=", Truth.FALSE),
    ])
    def test_all_operators(self, op, expected):
        assert run(Comparison(op, col("a"), col("b"))) is expected

    def test_null_operand_unknown(self):
        assert run(col("a") == col("b"), NULL_ROW) is Truth.UNKNOWN
        assert run(col("a") != col("b"), NULL_ROW) is Truth.UNKNOWN

    def test_string_comparison(self):
        assert run(col("s") == lit("x")) is Truth.TRUE

    def test_string_number_mismatch_raises(self):
        with pytest.raises(ExpressionError):
            run(col("s") > lit(1))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", col("a"), col("b"))

    def test_complemented(self):
        comparison = Comparison("<", col("a"), col("b"))
        assert run(comparison.complemented()) is Truth.FALSE
        assert comparison.complemented().op == ">="

    def test_mirrored(self):
        mirrored = Comparison("<", col("a"), col("b")).mirrored()
        assert mirrored.op == ">"
        assert run(mirrored) is Truth.TRUE  # b > a

    def test_complement_involution(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            comparison = Comparison(op, col("a"), col("b"))
            assert comparison.complemented().complemented().op == op


class TestBooleans:
    def test_and_short_circuits_false(self):
        # The right side would raise on evaluation; FALSE on the left must
        # prevent that (mirrors engine short-circuiting).
        bad = col("s") > lit(1)
        assert run(And(FALSE, bad)) is Truth.FALSE

    def test_or_short_circuits_true(self):
        bad = col("s") > lit(1)
        assert run(Or(TRUE, bad)) is Truth.TRUE

    def test_and_unknown(self):
        unknown = col("a") == lit(None)
        assert run(And(TRUE, unknown)) is Truth.UNKNOWN
        assert run(And(unknown, FALSE)) is Truth.FALSE

    def test_not(self):
        assert run(Not(col("a") < col("b"))) is Truth.FALSE

    def test_dsl_operators(self):
        assert run((col("a") < col("b")) & (col("s") == lit("x"))) is Truth.TRUE
        assert run((col("a") > col("b")) | (col("s") == lit("x"))) is Truth.TRUE
        assert run(~(col("a") < col("b"))) is Truth.FALSE

    def test_and_requires_predicates(self):
        with pytest.raises(ExpressionError):
            col("a") & col("b")


class TestIsNull:
    def test_is_null_true(self):
        assert run(IsNull(col("a")), NULL_ROW) is Truth.TRUE

    def test_is_null_false(self):
        assert run(IsNull(col("a"))) is Truth.FALSE

    def test_is_not_null(self):
        assert run(IsNull(col("a"), negated=True)) is Truth.TRUE

    def test_never_unknown(self):
        assert run(IsNull(col("a")), NULL_ROW) in (Truth.TRUE, Truth.FALSE)


class TestCoalesce:
    def test_first_non_null(self):
        assert run(Coalesce(col("a"), lit(0)), NULL_ROW) == 0

    def test_first_wins_when_present(self):
        assert run(Coalesce(col("a"), lit(0))) == 3

    def test_both_null(self):
        assert run(Coalesce(col("a"), lit(None)), NULL_ROW) is None


class TestHelpers:
    def test_conjoin_empty_is_true(self):
        assert run(conjoin([])) is Truth.TRUE

    def test_conjoin_single(self):
        assert run(conjoin([col("a") < col("b")])) is Truth.TRUE

    def test_disjoin_empty_is_false(self):
        assert run(disjoin([])) is Truth.FALSE

    def test_conjuncts_of_flattens(self):
        predicate = conjoin([TRUE, col("a") < col("b"), IsNull(col("s"))])
        assert len(conjuncts_of(predicate)) == 3

    def test_conjuncts_of_leaf(self):
        leaf = col("a") < col("b")
        assert conjuncts_of(leaf) == [leaf]

    def test_same_as(self):
        assert (col("a") < lit(1)).same_as(col("a") < lit(1))
        assert not (col("a") < lit(1)).same_as(col("a") < lit(2))

    def test_expressions_are_not_hashable(self):
        with pytest.raises(TypeError):
            hash(col("a"))


class TestBindMemoization:
    @pytest.fixture(autouse=True)
    def clean_cache(self):
        from repro.algebra.expressions import bind_cache_clear
        from repro.obs.metrics import get_registry

        bind_cache_clear()
        get_registry().reset()
        yield
        bind_cache_clear()

    def test_repeat_bind_returns_same_evaluator(self):
        expr = (col("a") < col("b")) & IsNull(col("s"))
        assert expr.bind(SCHEMA) is expr.bind(SCHEMA)

    def test_distinct_schemas_get_distinct_evaluators(self):
        other = Schema([
            Field("a", DataType.INTEGER, "T"),
            Field("b", DataType.INTEGER, "T"),
            Field("s", DataType.STRING, "T"),
        ])
        expr = col("a") < col("b")
        assert expr.bind(SCHEMA) is not expr.bind(other)

    def test_hit_and_miss_counters(self):
        from repro.obs.metrics import get_registry

        expr = col("a") < col("b")
        expr.bind(SCHEMA)
        expr.bind(SCHEMA)
        expr.bind(SCHEMA)
        registry = get_registry()
        # The first bind misses for the And node plus (recursively) its
        # leaves; the repeats hit on the root alone.
        assert registry.counter("expr_bind_cache_hits").value == 2
        assert registry.counter("expr_bind_cache_misses").value >= 1

    def test_cache_is_lru_capped(self):
        from repro.algebra.expressions import (
            _BIND_CACHE_LIMIT,
            _bind_cache,
        )

        expressions = [col("a") < lit(n)
                       for n in range(_BIND_CACHE_LIMIT + 50)]
        for expr in expressions:
            expr.bind(SCHEMA)
        assert len(_bind_cache) <= _BIND_CACHE_LIMIT

    def test_clear_forces_rebind(self):
        from repro.algebra.expressions import bind_cache_clear

        expr = col("a") < col("b")
        first = expr.bind(SCHEMA)
        bind_cache_clear()
        assert expr.bind(SCHEMA) is not first

    def test_bound_semantics_unchanged(self):
        expr = (col("a") < col("b")) & ~IsNull(col("s"))
        evaluator = expr.bind(SCHEMA)
        assert evaluator(ROW) is Truth.TRUE
        assert evaluator(NULL_ROW) is Truth.FALSE
