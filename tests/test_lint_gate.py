"""The planner's fail-fast lint gate, ``repro lint`` CLI, and tooling config.

``QueryOptions(lint=...)`` threads the static verifier into every
execution path: ``strict`` refuses to run a plan with error-severity
diagnostics (raising :class:`~repro.errors.LintError` *before* any
tuple is touched), ``warn`` downgrades them to :class:`LintWarning`.
The gate re-checks translations served from the plan cache, since the
translation cache key is options-independent.
"""

from __future__ import annotations

import io
import json
import warnings

import pytest

from repro import Database, DataType, LintError, QueryOptions
from repro.algebra.expressions import Comparison
from repro.cli import main
from repro.errors import ConfigurationError
from repro.lint import LintWarning
from repro.storage import Relation, save_csv
from repro.unnesting import translate

CORRELATED_SQL = (
    "SELECT C.CID FROM CUSTOMER C WHERE EXISTS "
    "(SELECT O.OID FROM ORDERS O WHERE O.CID = C.CID AND O.AMT > "
    "(SELECT AVG(P.AMT) FROM PAYMENTS P WHERE P.CID = C.CID))"
)


@pytest.fixture
def typed_db() -> Database:
    db = Database()
    db.create_table(
        "T", [("S", DataType.STRING), ("N", DataType.INTEGER)], []
    )
    return db


@pytest.fixture
def orders_db() -> Database:
    db = Database()
    db.create_table(
        "CUSTOMER",
        [("CID", DataType.INTEGER), ("GRADE", DataType.INTEGER)],
        [(1, 10), (2, None), (3, 30)],
    )
    db.create_table(
        "ORDERS",
        [("OID", DataType.INTEGER), ("CID", DataType.INTEGER),
         ("AMT", DataType.INTEGER)],
        [(1, 1, 5), (2, 2, 7), (3, 3, 9)],
    )
    db.create_table(
        "PAYMENTS",
        [("PID", DataType.INTEGER), ("CID", DataType.INTEGER),
         ("AMT", DataType.INTEGER)],
        [(1, 1, 4), (2, 2, 6)],
    )
    return db


class TestOptions:
    def test_lint_level_validation(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(lint="loud")
        for level in (None, "off", "warn", "strict"):
            QueryOptions(lint=level)

    def test_off_normalizes_to_none_in_cache_key(self):
        assert (QueryOptions(lint="off").cache_key()
                == QueryOptions().cache_key())

    def test_lint_level_partitions_result_cache(self):
        assert (QueryOptions(lint="strict").cache_key()
                != QueryOptions().cache_key())
        assert (QueryOptions(lint="strict").cache_key()
                != QueryOptions(lint="warn").cache_key())


class TestGate:
    BAD_SQL = "SELECT T.S FROM T WHERE T.S = 1"

    def test_off_executes(self, typed_db):
        # Zero rows: the runtime never evaluates the broken predicate.
        result = typed_db.execute_sql(self.BAD_SQL)
        assert len(result) == 0

    def test_strict_raises_before_execution(self, typed_db):
        with pytest.raises(LintError) as excinfo:
            typed_db.execute_sql(
                self.BAD_SQL, QueryOptions(lint="strict")
            )
        assert any(d.code == "L003" for d in excinfo.value.diagnostics)
        assert "static plan verification failed" in str(excinfo.value)

    def test_warn_warns_and_executes(self, typed_db):
        with pytest.warns(LintWarning):
            result = typed_db.execute_sql(
                self.BAD_SQL, QueryOptions(lint="warn")
            )
        assert len(result) == 0

    def test_clean_query_passes_strict(self, typed_db):
        result = typed_db.execute_sql(
            "SELECT T.N FROM T WHERE T.N > 1", QueryOptions(lint="strict")
        )
        assert len(result) == 0

    def test_gate_covers_baseline_strategies(self, typed_db):
        with pytest.raises(LintError):
            typed_db.execute_sql(
                self.BAD_SQL,
                QueryOptions(strategy="naive", lint="strict"),
            )

    def test_strict_catches_seeded_translation_bug(self, orders_db,
                                                   monkeypatch):
        """The query itself is clean; only the translated plan is broken."""
        monkeypatch.setattr(
            translate, "_null_safe_equal",
            lambda left, right: Comparison("=", left, right),
        )
        with pytest.raises(LintError) as excinfo:
            orders_db.execute_sql(
                CORRELATED_SQL,
                QueryOptions(strategy="gmdj", lint="strict"),
            )
        assert any(d.code == "L007" for d in excinfo.value.diagnostics)

    def test_gate_rechecks_cached_translations(self, orders_db, monkeypatch):
        """A buggy plan cached by an unlinted run cannot sneak past."""
        monkeypatch.setattr(
            translate, "_null_safe_equal",
            lambda left, right: Comparison("=", left, right),
        )
        options = QueryOptions(strategy="gmdj")
        # First run translates (and caches) the buggy plan without lint.
        orders_db.execute_sql(CORRELATED_SQL, options)
        with pytest.raises(LintError):
            orders_db.execute_sql(
                CORRELATED_SQL,
                QueryOptions(strategy="gmdj", lint="strict"),
            )

    def test_healthy_translation_passes_strict(self, orders_db):
        result = orders_db.execute_sql(
            CORRELATED_SQL, QueryOptions(strategy="gmdj", lint="strict")
        )
        baseline = orders_db.execute_sql(
            CORRELATED_SQL, QueryOptions(strategy="naive")
        )
        assert sorted(result.rows) == sorted(baseline.rows)

    def test_warn_mode_emits_no_warning_on_clean_plan(self, orders_db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", LintWarning)
            orders_db.execute_sql(
                CORRELATED_SQL, QueryOptions(strategy="gmdj", lint="warn")
            )


@pytest.fixture
def data_dir(tmp_path):
    flow = Relation.from_columns(
        [("SourceIP", DataType.STRING), ("NumBytes", DataType.INTEGER)],
        [("10.0.0.1", 100), ("10.0.0.2", 50)],
    )
    save_csv(flow, tmp_path / "flow.csv")
    return tmp_path


def run_cli(args):
    out = io.StringIO()
    code = main(args, out=out)
    return code, out.getvalue()


class TestLintCLI:
    def test_clean_query_exits_zero(self, data_dir):
        code, out = run_cli([
            "lint", "SELECT SourceIP FROM flow WHERE NumBytes > 30",
            "--data", str(data_dir),
        ])
        assert code == 0
        assert "0 error(s)" in out
        assert "cost certificate" in out

    def test_error_query_exits_one(self, data_dir):
        code, out = run_cli([
            "lint", "SELECT SourceIP FROM flow WHERE SourceIP = 5",
            "--data", str(data_dir),
        ])
        assert code == 1
        assert "[L003]" in out

    def test_json_output(self, data_dir):
        code, out = run_cli([
            "lint", "SELECT SourceIP FROM flow WHERE NumBytes > 30",
            "--data", str(data_dir), "--json",
        ])
        assert code == 0
        payload = json.loads(out)
        assert payload["lint"]["ok"] is True
        assert "certificate" in payload

    def test_usage_errors_exit_two(self, data_dir):
        code, _ = run_cli(["lint"])
        assert code == 2
        code, _ = run_cli([
            "lint", "SELECT 1", "--corpus", str(data_dir),
        ])
        assert code == 2

    def test_corpus_mode(self):
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        code, out = run_cli(["lint", "--corpus", str(corpus)])
        assert code == 0
        assert "0 failing" in out

    def test_corpus_mode_json(self):
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        code, out = run_cli(["lint", "--corpus", str(corpus), "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["failing"] == 0
        assert payload["cases"] == len(payload["results"])

    def test_no_advice_flag(self, data_dir):
        sql = ("SELECT f.SourceIP FROM flow f WHERE f.NumBytes > "
               "(SELECT MAX(g.NumBytes) FROM flow g "
               "WHERE g.SourceIP <> f.SourceIP)")
        code, noisy = run_cli([
            "lint", sql, "--data", str(data_dir), "--strategy", "naive",
        ])
        assert code == 0
        code, quiet = run_cli([
            "lint", sql, "--data", str(data_dir), "--strategy", "naive",
            "--no-advice",
        ])
        assert code == 0
        assert "advisory(ies)" in quiet
        assert "[A" not in quiet
        assert "[A204]" in noisy


class TestToolingConfig:
    """The satellite configs exist and are well-formed (the tools
    themselves run in CI; the image here does not ship them)."""

    @pytest.fixture
    def pyproject(self):
        import pathlib
        import tomllib

        root = pathlib.Path(__file__).resolve().parent.parent
        with open(root / "pyproject.toml", "rb") as handle:
            return tomllib.load(handle)

    def test_ruff_config(self, pyproject):
        ruff = pyproject["tool"]["ruff"]
        assert ruff["target-version"] == "py310"
        assert "F" in ruff["lint"]["select"]

    def test_mypy_strict_core(self, pyproject):
        overrides = pyproject["tool"]["mypy"]["overrides"]
        strict = [o for o in overrides
                  if "repro.lint.*" in o.get("module", [])]
        assert strict, "repro.lint.* must have a strict override"
        assert strict[0]["disallow_untyped_defs"] is True
        assert "repro.algebra.*" in strict[0]["module"]

    def test_ruff_clean_if_available(self):
        ruff = pytest.importorskip("ruff")  # noqa: F841
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, "-m", "ruff", "check", "src"],
            cwd=root, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_mypy_strict_core_if_available(self):
        pytest.importorskip("mypy")
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "src/repro/lint",
             "src/repro/algebra"],
            cwd=root, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
