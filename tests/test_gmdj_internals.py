"""White-box tests for the GMDJ evaluator's access-path machinery."""

import pytest

from repro.algebra.aggregates import count_star
from repro.algebra.expressions import TRUE, col, lit
from repro.algebra.operators import ScanTable
from repro.errors import UnknownAttributeError
from repro.gmdj import md
from repro.gmdj.evaluate import _BlockRuntime, invariant_sharing
from repro.gmdj.operator import ThetaBlock
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def parts():
    base = Relation.from_columns(
        [("K", DataType.INTEGER)], [(i,) for i in range(8)], qualifier="b",
    )
    detail_schema = Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)], [],
        qualifier="r",
    ).schema
    return base, detail_schema


def runtime_for(condition, base, detail_schema, allow_invariant=True):
    block = ThetaBlock([count_star("c")], condition)
    combined = base.schema.concat(detail_schema)
    return _BlockRuntime(0, block, base, detail_schema, combined,
                         allow_invariant)


class TestAccessPathSelection:
    def test_equality_condition_uses_hash(self, parts):
        base, detail_schema = parts
        runtime = runtime_for(col("b.K") == col("r.K"), base, detail_schema)
        assert runtime.uses_hash
        assert not runtime.invariant
        assert runtime.buckets is not None
        assert len(runtime.buckets) == 8

    def test_inequality_condition_scans(self, parts):
        base, detail_schema = parts
        runtime = runtime_for(col("b.K") != col("r.K"), base, detail_schema)
        assert not runtime.uses_hash
        assert not runtime.invariant  # references the base

    def test_detail_only_condition_is_invariant(self, parts):
        base, detail_schema = parts
        runtime = runtime_for(col("r.V") > lit(3), base, detail_schema)
        assert runtime.invariant
        assert runtime.shared_state is not None

    def test_true_condition_is_invariant(self, parts):
        base, detail_schema = parts
        runtime = runtime_for(TRUE, base, detail_schema)
        assert runtime.invariant
        assert runtime.residual_eval is None

    def test_invariant_disabled_by_flag(self, parts):
        base, detail_schema = parts
        runtime = runtime_for(col("r.V") > lit(3), base, detail_schema,
                              allow_invariant=False)
        assert not runtime.invariant

    def test_invariant_disabled_by_context_manager(self, parts):
        base, detail_schema = parts
        with invariant_sharing(False):
            runtime = runtime_for(col("r.V") > lit(3), base, detail_schema)
        assert not runtime.invariant
        # And the flag is restored afterwards.
        restored = runtime_for(col("r.V") > lit(3), base, detail_schema)
        assert restored.invariant

    def test_null_base_keys_not_bucketed(self):
        base = Relation.from_columns(
            [("K", DataType.INTEGER)], [(1,), (None,), (2,)], qualifier="b",
        )
        detail_schema = Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)], [],
            qualifier="r",
        ).schema
        runtime = runtime_for(col("b.K") == col("r.K"), base, detail_schema)
        assert len(runtime.buckets) == 2


class TestErrorPaths:
    def test_unknown_attribute_in_condition(self):
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(1,)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER)], [(1,)],
        ))
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c")]], [col("b.K") == col("z.Q")])
        with pytest.raises(UnknownAttributeError):
            plan.evaluate(catalog)


class TestActiveListShrinks:
    def test_completion_reduces_scan_candidates(self):
        # A no-equality block plus a must-be-zero rule: each doomed base
        # tuple leaves the active list, so total residual evaluations are
        # far below |B| x |R|.
        catalog = Catalog()
        n_base, n_detail = 64, 800
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(i,) for i in range(n_base)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER)], [(i % n_base,) for i in range(n_detail)],
        ))
        from repro.algebra.expressions import Comparison
        from repro.gmdj import SelectGMDJ, derive_completion_rule

        def build():
            return md(ScanTable("B", "b"), ScanTable("R", "r"),
                      [[count_star("cnt")]],
                      [(col("b.K") <= col("r.K"))
                       & (col("b.K") >= col("r.K"))])  # = without hashability

        selection = Comparison("=", col("cnt"), lit(0))
        rule = derive_completion_rule(selection, build(), False)
        with collect() as fused_stats:
            SelectGMDJ(build(), selection, rule).evaluate(catalog)
        with collect() as plain_stats:
            from repro.algebra.operators import Select

            Select(build(), selection).evaluate(catalog)
        assert fused_stats.predicate_evals < plain_stats.predicate_evals / 2
