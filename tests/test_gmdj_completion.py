"""Unit tests for base-tuple completion (rule derivation + fused eval)."""

import pytest

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import Column, Comparison, Literal, col, lit
from repro.algebra.operators import Project, ScanTable, Select
from repro.gmdj import (
    SelectGMDJ,
    derive_completion_rule,
    fuse_completion,
    md,
)
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER)], [(i,) for i in range(20)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 20, i) for i in range(200)],
    ))
    return cat


def exists_gmdj():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt")]], [col("b.K") == col("r.K")])


def all_gmdj():
    theta = col("b.K") != col("r.K")
    phi = col("b.K") > col("r.V")
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt1")], [count_star("cnt2")]],
              [theta & phi, theta])


class TestRuleDerivation:
    def test_need_positive(self):
        rule = derive_completion_rule(
            Comparison(">", Column("cnt"), Literal(0)), exists_gmdj(), True
        )
        assert rule.need_positive == [0]
        assert rule.can_assure

    def test_need_positive_requires_projection(self):
        rule = derive_completion_rule(
            Comparison(">", Column("cnt"), Literal(0)), exists_gmdj(), False
        )
        assert rule.need_positive == [0]
        assert not rule.can_assure

    def test_must_be_zero(self):
        rule = derive_completion_rule(
            Comparison("=", Column("cnt"), Literal(0)), exists_gmdj(), False
        )
        assert rule.must_be_zero == [0]
        assert rule.can_doom

    def test_literal_first_normalized(self):
        rule = derive_completion_rule(
            Comparison("<", Literal(0), Column("cnt")), exists_gmdj(), True
        )
        assert rule.need_positive == [0]

    def test_pair_equal_orients_restrictive_first(self):
        rule = derive_completion_rule(
            Comparison("=", Column("cnt1"), Column("cnt2")), all_gmdj(), True
        )
        assert rule.pair_equal == [(0, 1)]

    def test_pair_equal_reversed_columns(self):
        rule = derive_completion_rule(
            Comparison("=", Column("cnt2"), Column("cnt1")), all_gmdj(), True
        )
        assert rule.pair_equal == [(0, 1)]

    def test_unrecognized_conjunct_disables_assurance(self):
        selection = (Comparison(">", Column("cnt"), Literal(0))
                     & (col("b.K") > lit(3)))
        rule = derive_completion_rule(selection, exists_gmdj(), True)
        assert not rule.exhaustive
        assert not rule.can_assure

    def test_non_count_aggregate_not_matched(self):
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[agg("sum", col("r.V"), "s")]], [col("b.K") == col("r.K")])
        rule = derive_completion_rule(
            Comparison(">", Column("s"), Literal(0)), gmdj, True
        )
        assert not rule.useful

    def test_greater_equal_one_is_need_positive(self):
        rule = derive_completion_rule(
            Comparison(">=", Column("cnt"), Literal(1)), exists_gmdj(), True
        )
        assert rule.need_positive == [0]

    def test_not_equal_zero_is_need_positive(self):
        rule = derive_completion_rule(
            Comparison("<>", Column("cnt"), Literal(0)), exists_gmdj(), True
        )
        assert rule.need_positive == [0]

    def test_pair_equal_requires_subset_conditions(self):
        # Two blocks whose conditions are NOT in a subset relation must
        # not be paired — the doom rule would be unsound.
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt1")], [count_star("cnt2")]],
                  [col("b.K") == col("r.K"), col("b.K") < col("r.V")])
        rule = derive_completion_rule(
            Comparison("=", Column("cnt1"), Column("cnt2")), gmdj, True
        )
        assert rule.pair_equal == []


class TestFusedEvaluation:
    def test_doom_equivalent_to_unfused(self, catalog):
        gmdj = exists_gmdj()
        selection = Comparison("=", Column("cnt"), Literal(0))
        rule = derive_completion_rule(selection, gmdj, False)
        fused = SelectGMDJ(gmdj, selection, rule)
        unfused = Select(exists_gmdj(), selection)
        assert fused.evaluate(catalog).bag_equal(unfused.evaluate(catalog))

    def test_pair_equal_equivalent(self, catalog):
        gmdj = all_gmdj()
        selection = Comparison("=", Column("cnt1"), Column("cnt2"))
        rule = derive_completion_rule(selection, gmdj, False)
        fused = SelectGMDJ(gmdj, selection, rule)
        unfused = Select(all_gmdj(), selection)
        assert fused.evaluate(catalog).bag_equal(unfused.evaluate(catalog))

    def test_assured_rows_need_projection(self, catalog):
        # With assurance active the aggregate columns may be partial, but
        # the projected base attributes must still be exact.
        gmdj = exists_gmdj()
        selection = Comparison(">", Column("cnt"), Literal(0))
        rule = derive_completion_rule(selection, gmdj, True)
        assert rule.can_assure
        fused = Project(SelectGMDJ(gmdj, selection, rule), ["b.K"])
        unfused = Project(Select(exists_gmdj(), selection), ["b.K"])
        assert fused.evaluate(catalog).bag_equal(unfused.evaluate(catalog))

    def test_completion_reduces_predicate_evals(self, catalog):
        gmdj = all_gmdj()
        selection = Comparison("=", Column("cnt1"), Column("cnt2"))
        rule = derive_completion_rule(selection, gmdj, False)
        with collect() as basic_stats:
            Select(all_gmdj(), selection).evaluate(catalog)
        with collect() as fused_stats:
            SelectGMDJ(gmdj, selection, rule).evaluate(catalog)
        assert fused_stats.predicate_evals < basic_stats.predicate_evals
        assert fused_stats.completed_tuples > 0


class TestFuseRewrite:
    def test_select_over_gmdj_fused(self):
        plan = Select(exists_gmdj(),
                      Comparison("=", Column("cnt"), Literal(0)))
        fused = fuse_completion(plan)
        assert isinstance(fused, SelectGMDJ)

    def test_project_select_gmdj_enables_assurance(self):
        plan = Project(
            Select(exists_gmdj(), Comparison(">", Column("cnt"), Literal(0))),
            ["b.K"],
        )
        fused = fuse_completion(plan)
        assert isinstance(fused, Project)
        assert isinstance(fused.child, SelectGMDJ)
        assert fused.child.rule.aggregates_projected

    def test_projection_reading_counts_blocks_assurance(self):
        # When the projection keeps the count column there is nothing a
        # need-positive rule can do (no dooming, no assurance), so the
        # plan must be left unfused.
        plan = Project(
            Select(exists_gmdj(), Comparison(">", Column("cnt"), Literal(0))),
            ["b.K", "cnt"],
        )
        fused = fuse_completion(plan)
        assert isinstance(fused.child, Select)

    def test_useless_rule_leaves_plan_alone(self):
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[agg("sum", col("r.V"), "s")]], [col("b.K") == col("r.K")])
        plan = Select(gmdj, Comparison(">", Column("s"), Literal(10)))
        fused = fuse_completion(plan)
        assert isinstance(fused, Select)


class TestThresholdAtoms:
    """cnt >= k / cnt > k generalizations of Theorem 4.1."""

    def test_ge_k_recognized(self):
        rule = derive_completion_rule(
            Comparison(">=", Column("cnt"), Literal(3)), exists_gmdj(), True
        )
        assert rule.need_at_least == [(0, 3)]
        assert rule.can_assure
        assert rule.thresholds() == {0: 3}

    def test_gt_k_recognized(self):
        rule = derive_completion_rule(
            Comparison(">", Column("cnt"), Literal(2)), exists_gmdj(), True
        )
        assert rule.need_at_least == [(0, 3)]

    def test_threshold_fused_equivalence(self, catalog):
        gmdj = exists_gmdj()
        selection = Comparison(">=", Column("cnt"), Literal(4))
        rule = derive_completion_rule(selection, gmdj, True)
        fused = Project(SelectGMDJ(gmdj, selection, rule), ["b.K"])
        unfused = Project(Select(exists_gmdj(), selection), ["b.K"])
        assert fused.evaluate(catalog).bag_equal(unfused.evaluate(catalog))

    def test_threshold_assures_mid_scan(self, catalog):
        gmdj = exists_gmdj()
        selection = Comparison(">=", Column("cnt"), Literal(2))
        rule = derive_completion_rule(selection, gmdj, True)
        with collect() as stats:
            Project(SelectGMDJ(gmdj, selection, rule), ["b.K"]).evaluate(
                catalog
            )
        assert stats.completed_tuples > 0
