"""Regression tests for SQL name scoping through the rewrites.

A bare column name inside a subquery resolves in the *innermost* scope
that declares it.  The GMDJ translation, join unnesting, and the APPLY
rewrites all lift subquery expressions into conditions over combined
schemas — where a bare name could suddenly capture an outer attribute of
the same name.  These tests pin the inner-wins behaviour (found
originally by the SQL fuzzer).
"""

import pytest
from repro import QueryOptions

from repro.engine import Database
from repro.storage import DataType

STRATEGIES = ("naive", "native", "unnest_join", "gmdj", "gmdj_optimized")


@pytest.fixture
def db() -> Database:
    database = Database()
    # Both tables declare a column named `a` — the capture hazard.
    database.create_table(
        "T", [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
        [(1, 2), (3, 4), (None, 5), (7, 1)],
    )
    database.create_table(
        "U", [("a", DataType.INTEGER)], [(1,), (3,), (9,)],
    )
    return database


def agree(db: Database, sql: str):
    reference = db.execute_sql(sql, QueryOptions("naive"))
    for strategy in STRATEGIES[1:]:
        assert reference.bag_equal(db.execute_sql(sql, QueryOptions(strategy))), strategy
    return reference


class TestBareNameCapture:
    def test_not_in_with_bare_item(self, db):
        result = agree(db, "SELECT a FROM T WHERE T.a NOT IN (SELECT a FROM U)")
        assert sorted(row[0] for row in result.rows) == [7]

    def test_in_with_bare_item(self, db):
        result = agree(db, "SELECT a FROM T WHERE T.a IN (SELECT a FROM U)")
        assert sorted(row[0] for row in result.rows) == [1, 3]

    def test_exists_with_bare_inner_column(self, db):
        result = agree(
            db,
            "SELECT b FROM T WHERE EXISTS (SELECT * FROM U WHERE a = T.a)",
        )
        assert sorted(row[0] for row in result.rows) == [2, 4]

    def test_quantified_with_bare_item(self, db):
        agree(db, "SELECT a FROM T WHERE T.b > ALL (SELECT a FROM U)")

    def test_scalar_aggregate_with_bare_argument(self, db):
        # Non-equality correlation: join unnesting legitimately refuses
        # (aggregate unnesting needs equality groups), so compare the
        # remaining strategies.
        sql = ("SELECT a FROM T WHERE T.b > (SELECT sum(a) FROM U WHERE "
               "a < T.b)")
        reference = db.execute_sql(sql, QueryOptions("naive"))
        for strategy in ("native", "gmdj", "gmdj_optimized"):
            assert reference.bag_equal(db.execute_sql(sql, QueryOptions(strategy)))
        assert len(reference) > 0

    def test_scalar_aggregate_equality_correlation(self, db):
        result = agree(
            db,
            "SELECT a FROM T WHERE T.b > (SELECT sum(a) FROM U WHERE "
            "a = T.a)",
        )
        assert len(result) > 0

    def test_select_list_subquery_with_bare_correlation(self, db):
        sql = ("SELECT T.a, (SELECT count(*) FROM U WHERE a = T.a) AS n "
               "FROM T")
        reference = db.execute_sql(sql, QueryOptions("naive"))
        for strategy in ("gmdj", "gmdj_optimized", "unnest_join"):
            assert reference.bag_equal(db.execute_sql(sql, QueryOptions(strategy)))
        rows = {row[0]: row[1] for row in reference.rows}
        assert rows[1] == 1 and rows[7] == 0 and rows[None] == 0

    def test_outer_bare_name_still_resolves_outer(self, db):
        # `b` exists only in T, so inside the subquery it reaches out.
        result = agree(
            db,
            "SELECT a FROM T WHERE EXISTS (SELECT * FROM U WHERE U.a = b)",
        )
        # b values: 2,4,5,1 — U.a values 1,3,9 — only b=1 matches (a=7).
        assert sorted(row[0] for row in result.rows) == [7]


class TestSegmentedAndApplyScoping:
    def test_segmented_apply_bare_names(self, db):
        from repro.algebra.apply_op import Apply, evaluate_segmented
        from repro.algebra.expressions import col
        from repro.algebra.nested import Subquery
        from repro.algebra.operators import ScanTable

        apply = Apply(
            ScanTable("T", "t"),
            Subquery(ScanTable("U"), col("a") == col("t.a")),
            "semi",
        )
        looped = apply.evaluate(db.catalog)
        segmented = evaluate_segmented(apply, db.catalog)
        assert looped.bag_equal(segmented)

    def test_apply_to_gmdj_bare_names(self, db):
        from repro.algebra.apply_op import Apply, apply_to_gmdj
        from repro.algebra.expressions import col
        from repro.algebra.nested import Subquery
        from repro.algebra.operators import ScanTable

        apply = Apply(
            ScanTable("T", "t"),
            Subquery(ScanTable("U"), col("a") == col("t.a")),
            "anti",
        )
        looped = apply.evaluate(db.catalog)
        rewritten = apply_to_gmdj(apply, db.catalog).evaluate(db.catalog)
        assert looped.bag_equal(rewritten)
