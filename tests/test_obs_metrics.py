"""Tests for the metrics registry (repro.obs.metrics)."""

import json

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("runs")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_json() == 5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 1, 0]
        assert histogram.count == 4
        assert histogram.total == 60.5

    def test_overflow_bucket(self):
        histogram = Histogram("lat", bounds=(1.0, 10.0))
        histogram.observe(999.0)
        assert histogram.bucket_counts == [0, 0, 1]

    def test_bound_is_upper_inclusive(self):
        histogram = Histogram("lat", bounds=(10.0,))
        histogram.observe(10.0)
        assert histogram.bucket_counts == [1, 0]

    def test_mean(self):
        histogram = Histogram("lat")
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0

    def test_default_bounds_cover_latency_range(self):
        histogram = Histogram("lat")
        assert histogram.bounds == DEFAULT_LATENCY_BUCKETS_MS
        assert len(histogram.bucket_counts) == len(histogram.bounds) + 1

    def test_to_json_shape(self):
        histogram = Histogram("lat", bounds=(1.0,))
        histogram.observe(0.5)
        assert histogram.to_json() == {
            "bounds": [1.0], "buckets": [1, 0], "count": 1, "sum": 0.5,
        }


class TestRegistry:
    def test_lazily_creates_and_memoizes(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_bool_reflects_contents(self):
        registry = MetricsRegistry()
        assert not registry
        registry.counter("a")
        assert registry

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert not registry

    def test_render_one_line_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("bench.runs").inc(3)
        registry.histogram("bench.ms").observe(2.0)
        text = registry.render()
        assert "bench.runs = 3" in text
        assert "bench.ms: n=1 mean=2.00 sum=2.00" in text

    def test_write_emits_json_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("fuzz.iterations").inc(7)
        registry.histogram("fuzz.case_ms", bounds=(10.0,)).observe(3.0)
        path = registry.write(tmp_path / "sub" / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["counters"] == {"fuzz.iterations": 7}
        assert payload["histograms"]["fuzz.case_ms"]["count"] == 1

    def test_process_wide_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestRunnerFeeds:
    def test_fuzz_campaign_populates_registry(self):
        from repro.fuzz.runner import FuzzConfig, run_fuzz

        registry = get_registry()
        before = registry.counter("fuzz.iterations").value
        report = run_fuzz(FuzzConfig(seed=3, iterations=2, max_rows=4))
        assert report.iterations_run == 2
        assert registry.counter("fuzz.iterations").value == before + 2
        assert registry.histogram("fuzz.case_ms").count >= 2


class TestMetricsScope:
    """Per-request isolation: scopes never interleave, merges aggregate."""

    def test_scope_isolates_from_default(self):
        from repro.obs.metrics import metrics_scope

        outer = get_registry()
        before = outer.counter("scope.demo").value
        with metrics_scope(merge=False) as scoped:
            get_registry().counter("scope.demo").inc(3)
            assert get_registry() is scoped
            assert scoped.counters["scope.demo"].value == 3
        assert outer.counter("scope.demo").value == before

    def test_scope_merges_on_exit(self):
        from repro.obs.metrics import metrics_scope

        outer = get_registry()
        before = outer.counter("scope.merged").value
        with metrics_scope() as scoped:
            get_registry().counter("scope.merged").inc(2)
            assert outer.counter("scope.merged").value == before
        assert scoped.counters["scope.merged"].value == 2
        assert outer.counter("scope.merged").value == before + 2

    def test_nested_scopes_merge_inward_first(self):
        from repro.obs.metrics import metrics_scope

        default_before = get_registry().counter("scope.nested").value
        with metrics_scope(merge=False) as outer_scope:
            with metrics_scope() as inner_scope:
                get_registry().counter("scope.nested").inc()
            assert inner_scope.counters["scope.nested"].value == 1
            # The inner scope merged into the *enclosing scope*, not the
            # process default.
            assert outer_scope.counters["scope.nested"].value == 1
        assert get_registry().counter("scope.nested").value == default_before

    def test_histograms_merge_bucketwise(self):
        from repro.obs.metrics import metrics_scope

        with metrics_scope(merge=False) as outer_scope:
            with metrics_scope() as inner_scope:
                get_registry().histogram(
                    "scope.ms", bounds=(10.0, 100.0)).observe(5.0)
                get_registry().histogram(
                    "scope.ms", bounds=(10.0, 100.0)).observe(50.0)
            assert inner_scope.histograms["scope.ms"].count == 2
            merged = outer_scope.histograms["scope.ms"]
            assert merged.count == 2
            assert merged.bucket_counts == [1, 1, 0]
            assert merged.total == 55.0

    def test_threads_with_copied_context_stay_isolated(self):
        import threading
        from contextvars import copy_context

        from repro.obs.metrics import metrics_scope

        observed = {}

        def request(name, amount):
            with metrics_scope(merge=False) as scoped:
                for _ in range(amount):
                    get_registry().counter("scope.threaded").inc()
                observed[name] = scoped.counters["scope.threaded"].value

        threads = [
            threading.Thread(
                target=copy_context().run, args=(request, f"r{i}", i + 1))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        # Each simulated request saw exactly its own increments even
        # though all four ran concurrently.
        assert observed == {"r0": 1, "r1": 2, "r2": 3, "r3": 4}

    def test_merge_is_additive_across_scopes(self):
        from repro.obs.metrics import MetricsRegistry

        target = MetricsRegistry()
        source_a, source_b = MetricsRegistry(), MetricsRegistry()
        source_a.counter("hits").inc(2)
        source_b.counter("hits").inc(5)
        target.merge(source_a)
        target.merge(source_b)
        assert target.counters["hits"].value == 7

    def test_merge_with_mismatched_bounds_keeps_totals(self):
        from repro.obs.metrics import MetricsRegistry

        target = MetricsRegistry()
        target.histogram("ms", bounds=(10.0,)).observe(1.0)
        source = MetricsRegistry()
        source.histogram("ms", bounds=(99.0,)).observe(2.0)
        target.merge(source)
        merged = target.histograms["ms"]
        # Count and sum always fold; incomparable buckets are left alone.
        assert merged.count == 2
        assert merged.total == 3.0
        assert merged.bucket_counts == [1, 0]
