"""Tests for the metrics registry (repro.obs.metrics)."""

import json

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("runs")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_json() == 5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 1, 0]
        assert histogram.count == 4
        assert histogram.total == 60.5

    def test_overflow_bucket(self):
        histogram = Histogram("lat", bounds=(1.0, 10.0))
        histogram.observe(999.0)
        assert histogram.bucket_counts == [0, 0, 1]

    def test_bound_is_upper_inclusive(self):
        histogram = Histogram("lat", bounds=(10.0,))
        histogram.observe(10.0)
        assert histogram.bucket_counts == [1, 0]

    def test_mean(self):
        histogram = Histogram("lat")
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0

    def test_default_bounds_cover_latency_range(self):
        histogram = Histogram("lat")
        assert histogram.bounds == DEFAULT_LATENCY_BUCKETS_MS
        assert len(histogram.bucket_counts) == len(histogram.bounds) + 1

    def test_to_json_shape(self):
        histogram = Histogram("lat", bounds=(1.0,))
        histogram.observe(0.5)
        assert histogram.to_json() == {
            "bounds": [1.0], "buckets": [1, 0], "count": 1, "sum": 0.5,
        }


class TestRegistry:
    def test_lazily_creates_and_memoizes(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_bool_reflects_contents(self):
        registry = MetricsRegistry()
        assert not registry
        registry.counter("a")
        assert registry

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert not registry

    def test_render_one_line_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("bench.runs").inc(3)
        registry.histogram("bench.ms").observe(2.0)
        text = registry.render()
        assert "bench.runs = 3" in text
        assert "bench.ms: n=1 mean=2.00 sum=2.00" in text

    def test_write_emits_json_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("fuzz.iterations").inc(7)
        registry.histogram("fuzz.case_ms", bounds=(10.0,)).observe(3.0)
        path = registry.write(tmp_path / "sub" / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["counters"] == {"fuzz.iterations": 7}
        assert payload["histograms"]["fuzz.case_ms"]["count"] == 1

    def test_process_wide_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestRunnerFeeds:
    def test_fuzz_campaign_populates_registry(self):
        from repro.fuzz.runner import FuzzConfig, run_fuzz

        registry = get_registry()
        before = registry.counter("fuzz.iterations").value
        report = run_fuzz(FuzzConfig(seed=3, iterations=2, max_rows=4))
        assert report.iterations_run == 2
        assert registry.counter("fuzz.iterations").value == before + 2
        assert registry.histogram("fuzz.case_ms").count >= 2
