"""Smoke tests: every shipped example must run cleanly end to end.

Examples are executed in-process (importing their ``main``) with stdout
captured, so failures surface as ordinary test failures with tracebacks
rather than rotting silently.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_expected_examples_present():
    assert {"quickstart", "netflow_analysis", "active_users",
            "tpcr_subqueries", "cost_based_planning",
            "distributed_gmdj"} <= set(EXAMPLES)


def test_quickstart_shows_figure1_numbers(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    # Figure 1's exact sums must appear in the rendered table.
    assert "12" in out and "84" in out and "96" in out


def test_active_users_consistency(capsys):
    module = _load("active_users")
    module.main()
    out = capsys.readouterr().out
    assert "pushed-down User join" in out
