"""Certificate-gated optimizations: the gates must open only on a
sound certificate, fall back conservatively without one, and hard-fail
(rather than silently corrupt) when handed an unsound claim."""

from __future__ import annotations

import pytest

from repro import Database, DataType, QueryOptions
from repro.algebra.aggregates import AggregateSpec, agg, count_star
from repro.algebra.expressions import col
from repro.algebra.operators import ScanTable
from repro.errors import CertificateViolation
from repro.gmdj import md
from repro.gmdj.parallel import evaluate_gmdj_partitioned
from repro.gmdj.vectorized import run_gmdj_vectorized
from repro.lint.absint import (
    CapabilityCertificate,
    GMDJCapabilityEntry,
    capability_scope,
    certify_capabilities,
)
from repro.obs.tracer import Tracer, tracing
from repro.storage import Catalog, ColumnarRelation, Relation


def null_heavy_catalog():
    """B(K) NULL-free; R(K, V) with K NULL-free and V NULL-bearing."""
    base = Relation.from_columns(
        [("K", DataType.INTEGER)],
        [(i % 4,) for i in range(8)],
        name="B", qualifier="b",
    )
    detail = Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 4, None if i % 3 == 0 else i * 10) for i in range(60)],
        name="R", qualifier="r",
    )
    catalog = Catalog()
    catalog.create_table("B", base)
    catalog.create_table("R", detail)
    return catalog, base, detail


def exists_gmdj():
    return md(
        ScanTable("B", "b"), ScanTable("R", "r"),
        [[count_star("c")]],
        [col("b.K") == col("r.K")],
    )


def detail_scan_attrs(run):
    tracer = Tracer()
    with tracing(tracer):
        result = run()
    scans = tracer.trace().find(kind="detail_scan")
    assert len(scans) == 1
    return result, scans[0].attrs


class TestVectorizedMaskSkip:
    def test_certificate_enables_mask_free_encoding(self):
        catalog, base, detail = null_heavy_catalog()
        gmdj = exists_gmdj()
        schema = gmdj.schema(catalog)
        certificate = certify_capabilities(gmdj, catalog)
        assert certificate.detail_never_null()["R"] == frozenset({"K"})

        def bare():
            return run_gmdj_vectorized(base, detail, gmdj, schema)

        def certified():
            with capability_scope(certificate):
                return run_gmdj_vectorized(base, detail, gmdj, schema)

        plain, plain_attrs = detail_scan_attrs(bare)
        gated, gated_attrs = detail_scan_attrs(certified)
        # The gate is observable (one mask-free column, K) and must not
        # change a single output row.
        assert plain_attrs["mask_skipped"] == 0
        assert gated_attrs["mask_skipped"] == 1
        assert gated.rows == plain.rows

    def test_claimless_certificate_keeps_masks(self):
        catalog, base, detail = null_heavy_catalog()
        gmdj = exists_gmdj()
        schema = gmdj.schema(catalog)
        claimless = CapabilityCertificate(columns=(), entries=(),
                                          complete=False)

        def run():
            with capability_scope(claimless):
                return run_gmdj_vectorized(base, detail, gmdj, schema)

        _, attrs = detail_scan_attrs(run)
        assert attrs["mask_skipped"] == 0

    def test_engine_installs_certificate_end_to_end(self):
        db = Database()
        db.create_table("B", [("K", DataType.INTEGER)],
                        [(i % 4,) for i in range(8)])
        db.create_table(
            "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(i % 4, None if i % 3 == 0 else i * 10) for i in range(60)],
        )
        sql = ("SELECT b.K FROM B b WHERE EXISTS "
               "(SELECT * FROM R r WHERE r.K = b.K)")
        options = QueryOptions(strategy="gmdj", mode="gmdj_vectorized")
        tracer = Tracer()
        with tracing(tracer):
            db.execute(db.sql(sql), options)
        scans = tracer.trace().find(kind="detail_scan")
        assert scans, "vectorized kernel did not run"
        assert all(span.attrs["mask_skipped"] >= 1 for span in scans)


class TestUnsoundCertificateFailsClosed:
    def test_columnar_encoding_rejects_false_never_null(self):
        _, _, detail = null_heavy_catalog()
        with pytest.raises(CertificateViolation, match="NEVER-null"):
            ColumnarRelation.from_relation(detail, never_null={1})

    def test_forged_ambient_claim_raises_not_corrupts(self):
        catalog, base, detail = null_heavy_catalog()
        gmdj = exists_gmdj()
        schema = gmdj.schema(catalog)
        forged = CapabilityCertificate(
            columns=(),
            entries=(GMDJCapabilityEntry(
                path="GMDJ", relation="R",
                detail_never_null=("K", "V"),  # V is a lie
                aggregates=(), theta=(),
            ),),
            complete=True,
        )
        with capability_scope(forged):
            with pytest.raises(CertificateViolation):
                run_gmdj_vectorized(base, detail, gmdj, schema)


class TestPartitionMergeGate:
    def partitioned_attrs(self, gmdj):
        catalog, _, _ = null_heavy_catalog()
        tracer = Tracer()
        with tracing(tracer):
            result = evaluate_gmdj_partitioned(gmdj, catalog, partitions=4,
                                               workers=1)
        spans = tracer.trace().find(kind="gmdj_partitioned")
        assert len(spans) == 1
        return result, spans[0].attrs

    def test_decomposable_plan_partitions(self):
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[agg("sum", col("r.V"), "total")]],
            [col("b.K") == col("r.K")],
        )
        _, attrs = self.partitioned_attrs(gmdj)
        assert attrs["partitions"] == 4

    def test_holistic_plan_collapses_to_one_scan(self):
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[AggregateSpec("count", col("r.V"), "c", distinct=True)]],
            [col("b.K") == col("r.K")],
        )
        result, attrs = self.partitioned_attrs(gmdj)
        assert attrs["partitions"] == 1

    def test_gated_and_ungated_rows_agree(self):
        catalog, _, _ = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[AggregateSpec("count", col("r.V"), "c", distinct=True)]],
            [col("b.K") == col("r.K")],
        )
        single = evaluate_gmdj_partitioned(gmdj, catalog, partitions=1,
                                           workers=1)
        forced = evaluate_gmdj_partitioned(gmdj, catalog, partitions=4,
                                           workers=1)
        assert forced.rows == single.rows


class TestBatchCoalescingGate:
    def make_db(self):
        db = Database()
        db.create_table("B", [("K", DataType.INTEGER)],
                        [(i % 4,) for i in range(8)])
        db.create_table(
            "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(i % 4, i * 10) for i in range(60)],
        )
        return db

    def test_distinct_member_stays_singleton(self):
        from repro.engine.mqo import plan_batch

        db = self.make_db()
        shareable = ("SELECT b.K FROM B b WHERE EXISTS "
                     "(SELECT * FROM R r WHERE r.K = b.K)")
        holistic = ("SELECT b.K FROM B b WHERE 1 <= "
                    "(SELECT COUNT(DISTINCT r.V) FROM R r "
                    "WHERE r.K = b.K)")
        queries = [db.sql(shareable), db.sql(shareable), db.sql(holistic)]
        planned = plan_batch(queries, db.catalog,
                             QueryOptions(strategy="gmdj"))
        grouped = {index for group in planned.groups
                   for index in group.indices}
        assert grouped == {0, 1}
        assert 2 in planned.singletons
