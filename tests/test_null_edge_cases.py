"""SQL-level NULL regressions: the traps the paper calls out by name.

Two families, both asserted across *every* evaluation strategy so a
rewrite that "simplifies" the counting predicates cannot quietly
reintroduce them:

* **ALL vs MAX (footnote 2).**  ``x >= ALL (SELECT y ...)`` is *not*
  ``x >= (SELECT max(y) ...)``: on an empty subquery ALL is vacuously
  TRUE while MAX yields NULL (comparison UNKNOWN, row dropped), and on
  a NULL-containing subquery ALL can be UNKNOWN while MAX silently
  ignores the NULLs.  The paper's Table 1 counting rewrite exists
  precisely because the MAX shortcut is wrong.
* **Empty-subquery NOT IN.**  ``x NOT IN (empty)`` is TRUE for every
  ``x`` — including ``x IS NULL`` — whereas one NULL in a non-empty
  subquery poisons NOT IN to at-best-UNKNOWN for non-matching rows.
"""

from __future__ import annotations

import pytest
from repro import QueryOptions

from repro.engine import STRATEGIES, Database
from repro.errors import TranslationError
from repro.storage import DataType

#: Strategies that execute real plans (``auto``/``cost_based`` delegate
#: to one of these, but keep them in: delegation bugs count too).
ALL_STRATEGIES = STRATEGIES


def run(db: Database, sql: str, strategy: str):
    """Rows as a sorted list, or None when the strategy can't express it."""
    try:
        result = db.execute_sql(sql, QueryOptions(strategy))
    except TranslationError:
        return None
    return sorted(result.rows, key=repr)


def assert_rows(db: Database, sql: str, expected: list[tuple]):
    expected = sorted(expected, key=repr)
    for strategy in ALL_STRATEGIES:
        actual = run(db, sql, strategy)
        if actual is None:
            continue  # legitimately unsupported (e.g. join unnesting)
        assert actual == expected, (
            f"strategy {strategy!r} returned {actual}, wanted {expected}\n"
            f"  for: {sql}"
        )


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "B", [("k", DataType.INTEGER), ("x", DataType.INTEGER)],
        [(1, 5), (2, None), (3, 0)],
    )
    # R is empty for k=3, NULL-bearing for k=2, plain for k=1.
    database.create_table(
        "R", [("k", DataType.INTEGER), ("y", DataType.INTEGER)],
        [(1, 3), (1, 4), (2, None), (2, 1)],
    )
    database.create_table("E", [("k", DataType.INTEGER), ("y", DataType.INTEGER)], [])
    return database


class TestAllVersusMax:
    def test_all_is_vacuously_true_on_empty(self, db):
        # Every B row passes >= ALL over the empty E — even x IS NULL,
        # because there is no comparison to come out UNKNOWN.
        assert_rows(
            db,
            "SELECT b.k FROM B b WHERE b.x >= ALL (SELECT e.y FROM E e)",
            [(1,), (2,), (3,)],
        )

    def test_max_rewrite_drops_rows_on_empty(self, db):
        # The naive MAX "equivalent" keeps nobody: max over empty is
        # NULL, so the comparison is UNKNOWN for every row.
        assert_rows(
            db,
            "SELECT b.k FROM B b "
            "WHERE b.x >= (SELECT max(e.y) FROM E e)",
            [],
        )

    def test_all_goes_unknown_on_inner_null(self, db):
        # Correlated ALL per group: k=1 compares 5 against {3,4} (TRUE),
        # k=2 has x NULL (UNKNOWN), k=3 has an empty group (TRUE).
        assert_rows(
            db,
            "SELECT b.k FROM B b "
            "WHERE b.x >= ALL (SELECT r.y FROM R r WHERE r.k = b.k)",
            [(1,), (3,)],
        )

    def test_null_in_subquery_blocks_all_but_not_max(self, db):
        database = Database()
        database.create_table("B", [("k", DataType.INTEGER), ("x", DataType.INTEGER)],
                              [(1, 9)])
        database.create_table("R", [("y", DataType.INTEGER)], [(3,), (None,)])
        # 9 >= ALL {3, NULL}: the NULL comparison is UNKNOWN and no
        # comparison is FALSE, so the whole quantifier is UNKNOWN.
        assert_rows(
            database,
            "SELECT b.k FROM B b WHERE b.x >= ALL (SELECT r.y FROM R r)",
            [],
        )
        # ...while MAX ignores the NULL and happily keeps the row.
        assert_rows(
            database,
            "SELECT b.k FROM B b "
            "WHERE b.x >= (SELECT max(r.y) FROM R r)",
            [(1,)],
        )

    def test_strict_less_than_all_on_empty(self, db):
        # Same vacuous-truth edge for a different operator, to make sure
        # the counting rewrite isn't special-casing >=.
        assert_rows(
            db,
            "SELECT b.k FROM B b WHERE b.x < ALL (SELECT e.y FROM E e)",
            [(1,), (2,), (3,)],
        )


class TestNotInEdgeCases:
    def test_not_in_empty_subquery_keeps_everything(self, db):
        # NOT IN over the empty set is TRUE — even for x IS NULL.
        assert_rows(
            db,
            "SELECT b.k FROM B b "
            "WHERE b.x NOT IN (SELECT e.y FROM E e)",
            [(1,), (2,), (3,)],
        )

    def test_in_empty_subquery_keeps_nothing(self, db):
        assert_rows(
            db,
            "SELECT b.k FROM B b WHERE b.x IN (SELECT e.y FROM E e)",
            [],
        )

    def test_null_in_subquery_poisons_not_in(self, db):
        database = Database()
        database.create_table("B", [("k", DataType.INTEGER), ("x", DataType.INTEGER)],
                              [(1, 5), (2, 1)])
        database.create_table("R", [("y", DataType.INTEGER)], [(1,), (None,)])
        # x=5: 5 <> 1 is TRUE but 5 <> NULL is UNKNOWN, so NOT IN is
        # UNKNOWN and the row is dropped.  x=1 matches outright (FALSE).
        assert_rows(
            database,
            "SELECT b.k FROM B b WHERE b.x NOT IN (SELECT r.y FROM R r)",
            [],
        )

    def test_correlated_not_in_empty_group(self, db):
        # k=3's group is empty, so its NOT IN is TRUE; k=1's group is
        # {3,4} with x=5 unmatched (TRUE); k=2 has x NULL vs {NULL,1}
        # (UNKNOWN).
        assert_rows(
            db,
            "SELECT b.k FROM B b "
            "WHERE b.x NOT IN (SELECT r.y FROM R r WHERE r.k = b.k)",
            [(1,), (3,)],
        )
