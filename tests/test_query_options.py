"""Tests for the unified QueryOptions API and the deprecation shims."""

import dataclasses

import pytest

from repro import Database, DataType, QueryOptions
from repro.engine.options import GMDJ_STRATEGIES, STRATEGIES
from repro.errors import ConfigurationError, PlanError
from repro.gmdj.pool import default_workers, resolve_workers


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "B", [("K", DataType.INTEGER)], [(i,) for i in range(4)]
    )
    database.create_table(
        "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 4, i) for i in range(12)],
    )
    return database


SQL = ("SELECT K FROM B b WHERE EXISTS "
       "(SELECT * FROM R r WHERE r.K = b.K AND r.V > 5)")


class TestConstruction:
    def test_defaults(self):
        options = QueryOptions()
        assert options.strategy == "auto"
        assert options.mode is None
        assert options.use_cache is True
        assert options.trace is False

    def test_frozen(self):
        options = QueryOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.strategy = "gmdj"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PlanError):
            QueryOptions(strategy="quantum")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(mode="sharded")

    @pytest.mark.parametrize("field", ["partitions", "workers",
                                       "chunk_budget"])
    def test_nonpositive_knobs_rejected(self, field):
        with pytest.raises(ConfigurationError):
            QueryOptions(**{field: 0})

    def test_of_coerces_none_string_and_options(self):
        assert QueryOptions.of(None) == QueryOptions()
        assert QueryOptions.of("gmdj").strategy == "gmdj"
        options = QueryOptions(strategy="naive")
        assert QueryOptions.of(options) is options

    def test_of_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            QueryOptions.of(42)

    def test_reexported_from_package_root(self):
        import repro

        assert repro.QueryOptions is QueryOptions
        assert "QueryOptions" in repro.__all__


class TestCanonical:
    def test_legacy_chunked_maps_to_mode(self):
        canon = QueryOptions(strategy="gmdj_chunked").canonical()
        assert (canon.strategy, canon.mode) == ("gmdj", "chunked")

    def test_legacy_parallel_maps_to_mode(self):
        canon = QueryOptions(strategy="gmdj_parallel").canonical()
        assert (canon.strategy, canon.mode) == ("gmdj", "partitioned")

    def test_legacy_name_with_conflicting_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(strategy="gmdj_parallel", mode="chunked").canonical()

    def test_workers_imply_partitioned(self):
        canon = QueryOptions(workers=2).canonical()
        assert canon.mode == "partitioned"

    def test_partitions_imply_partitioned(self):
        assert QueryOptions(partitions=3).canonical().mode == "partitioned"

    def test_chunk_budget_implies_chunked(self):
        assert QueryOptions(chunk_budget=10).canonical().mode == "chunked"

    def test_ambiguous_inference_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(workers=2, chunk_budget=10).canonical()

    def test_plain_mode_normalizes_to_none(self):
        assert QueryOptions(mode="plain").canonical().mode is None

    def test_mode_on_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(strategy="naive", mode="partitioned").canonical()

    def test_mixed_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(mode="partitioned", chunk_budget=5).canonical()
        with pytest.raises(ConfigurationError):
            QueryOptions(mode="chunked", workers=2).canonical()

    def test_canonical_is_idempotent_and_cheap(self):
        options = QueryOptions(strategy="gmdj", mode="partitioned",
                               partitions=2)
        assert options.canonical() is options

    def test_every_strategy_is_known(self):
        assert GMDJ_STRATEGIES <= set(STRATEGIES)
        for strategy in STRATEGIES:
            QueryOptions(strategy=strategy)  # must not raise


class TestVectorizedMode:
    def test_alias_normalizes_on_construction(self):
        assert QueryOptions(mode="vectorized").mode == "gmdj_vectorized"

    def test_chunk_size_implies_vectorized(self):
        canon = QueryOptions(chunk_size=16).canonical()
        assert canon.mode == "gmdj_vectorized"
        assert canon.chunk_size == 16

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(chunk_size=0)

    def test_chunk_size_needs_vectorized_mode(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(mode="chunked", chunk_size=4,
                         chunk_budget=8).canonical()

    def test_composes_with_chunk_budget(self):
        canon = QueryOptions(mode="vectorized", chunk_budget=8).canonical()
        assert canon.mode == "gmdj_vectorized"
        assert canon.chunk_budget == 8

    def test_composes_with_partitions_and_workers(self):
        canon = QueryOptions(mode="vectorized", partitions=3,
                             workers=2).canonical()
        assert canon.mode == "gmdj_vectorized"
        assert (canon.partitions, canon.workers) == (3, 2)

    def test_budget_and_partitions_together_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryOptions(mode="vectorized", chunk_budget=8,
                         workers=2).canonical()

    def test_cache_key_includes_chunk_size(self):
        small = QueryOptions(mode="vectorized", chunk_size=4)
        large = QueryOptions(mode="vectorized", chunk_size=64)
        assert small.cache_key() != large.cache_key()

    def test_vectorized_execution_matches_row_mode(self, db):
        expected = db.execute_sql(SQL, QueryOptions(strategy="gmdj"))
        result = db.execute_sql(
            SQL, QueryOptions(strategy="gmdj", mode="vectorized",
                              chunk_size=5)
        )
        assert expected.bag_equal(result)


class TestEnvironmentMode:
    def test_env_supplies_default_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "gmdj_vectorized")
        assert QueryOptions().canonical().mode == "gmdj_vectorized"

    def test_env_accepts_alias(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "vectorized")
        assert QueryOptions().canonical().mode == "gmdj_vectorized"

    def test_explicit_plain_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "gmdj_vectorized")
        assert QueryOptions(mode="plain").canonical().mode is None

    def test_explicit_knobs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "gmdj_vectorized")
        assert QueryOptions(chunk_budget=8).canonical().mode == "chunked"

    def test_baseline_strategies_ignore_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "gmdj_vectorized")
        assert QueryOptions(strategy="naive").canonical().mode is None

    def test_invalid_env_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "warp")
        with pytest.raises(ConfigurationError):
            QueryOptions().canonical()

    def test_env_mode_drives_execution(self, db, monkeypatch):
        expected = db.execute_sql(SQL, QueryOptions(strategy="naive"))
        monkeypatch.setenv("REPRO_MODE", "gmdj_vectorized")
        result = db.execute_sql(SQL, QueryOptions(strategy="gmdj"))
        assert expected.bag_equal(result)


class TestDatabaseAcceptsOptions:
    def test_execute_sql_with_options(self, db):
        plain = db.execute_sql(SQL, QueryOptions(strategy="naive"))
        gmdj = db.execute_sql(
            SQL, QueryOptions(strategy="gmdj", mode="partitioned",
                              partitions=3, workers=2)
        )
        assert plain.bag_equal(gmdj)

    def test_profile_carries_options(self, db):
        options = QueryOptions(strategy="gmdj_optimized")
        report = db.profile(db.sql(SQL), options)
        assert report.options == options
        assert report.counters

    def test_explain_accepts_options(self, db):
        text = db.explain(db.sql(SQL), QueryOptions(strategy="gmdj"))
        assert "GMDJ" in text

    def test_explain_analyze_accepts_options(self, db):
        text = db.explain_analyze(
            db.sql(SQL),
            QueryOptions(strategy="gmdj", mode="partitioned",
                         partitions=2, workers=2),
            strict=True,
        )
        assert "strategy=gmdj mode=partitioned" in text
        assert "all hold" in text


class TestRemovedShims:
    """The PR-3 string-strategy shims completed their deprecation cycle:
    QueryOptions (or None) is now the only options surface, and the old
    forms fail loudly with the migration spelled out."""

    def test_execute_sql_string_raises(self, db):
        with pytest.raises(ConfigurationError, match="QueryOptions"):
            db.execute_sql(SQL, "naive")

    def test_execute_strategy_keyword_is_gone(self, db):
        with pytest.raises(TypeError, match="strategy"):
            db.execute(db.sql(SQL), strategy="gmdj")

    def test_profile_string_raises(self, db):
        with pytest.raises(ConfigurationError, match="Database.profile"):
            db.profile(db.sql(SQL), "gmdj")

    def test_explain_string_raises(self, db):
        with pytest.raises(ConfigurationError, match="removed"):
            db.explain(db.sql(SQL), "gmdj")

    def test_execute_batch_rejects_strings(self, db):
        with pytest.raises(ConfigurationError, match="QueryOptions"):
            db.execute_batch([db.sql(SQL)], "gmdj")

    def test_options_form_is_warning_free(self, db, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db.execute_sql(SQL, QueryOptions(strategy="gmdj"))
            db.profile(db.sql(SQL), QueryOptions(strategy="naive"))

    def test_execute_is_batch_of_one(self, db):
        single = db.execute_sql(SQL, QueryOptions(strategy="gmdj"))
        batch = db.execute_sql_batch([SQL], QueryOptions(strategy="gmdj"))
        assert len(batch) == 1
        assert batch[0].rows == single.rows
        assert batch.report.queries == 1


class TestEnvironmentDefaults:
    def test_default_workers_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1

    def test_default_workers_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        assert resolve_workers(None) == 3

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    @pytest.mark.parametrize("raw", ["zero", "-1", "0"])
    def test_bad_env_values_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_env_workers_drive_execution(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        expected = db.execute_sql(SQL, QueryOptions(strategy="naive"))
        result = db.execute_sql(
            SQL, QueryOptions(strategy="gmdj", mode="partitioned",
                              partitions=4)
        )
        assert expected.bag_equal(result)
