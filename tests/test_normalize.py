"""Unit tests for negation push-down (Algorithm SubqueryToGMDJ, stage 1)."""

from repro.algebra.expressions import (
    And,
    Comparison,
    IsNull,
    Not,
    Or,
    TruthLiteral,
    col,
    lit,
)
from repro.algebra.nested import (
    Exists,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
)
from repro.algebra.operators import ScanTable
from repro.algebra.truth import Truth
from repro.unnesting.normalize import push_down_negations


def sub(item=None):
    return Subquery(ScanTable("R", "r"), col("r.K") == col("b.K"), item=item)


class TestDeMorgan:
    def test_not_and_becomes_or(self):
        predicate = Not(And(col("a") > lit(1), col("b") > lit(2)))
        normalized = push_down_negations(predicate)
        assert isinstance(normalized, Or)
        assert normalized.left.op == "<="

    def test_not_or_becomes_and(self):
        predicate = Not(Or(col("a") > lit(1), col("b") > lit(2)))
        normalized = push_down_negations(predicate)
        assert isinstance(normalized, And)

    def test_double_negation_cancels(self):
        leaf = col("a") > lit(1)
        normalized = push_down_negations(Not(Not(leaf)))
        assert isinstance(normalized, Comparison)
        assert normalized.op == ">"

    def test_triple_negation(self):
        leaf = col("a") > lit(1)
        normalized = push_down_negations(Not(Not(Not(leaf))))
        assert normalized.op == "<="


class TestLeafComplements:
    def test_comparison_complemented(self):
        normalized = push_down_negations(Not(col("a") == lit(1)))
        assert normalized.op == "<>"

    def test_is_null_flips(self):
        normalized = push_down_negations(Not(IsNull(col("a"))))
        assert isinstance(normalized, IsNull)
        assert normalized.negated

    def test_truth_literal_flips(self):
        normalized = push_down_negations(Not(TruthLiteral(Truth.TRUE)))
        assert normalized.value is Truth.FALSE

    def test_not_exists_becomes_exists_negated(self):
        normalized = push_down_negations(Not(Exists(sub())))
        assert isinstance(normalized, Exists)
        assert normalized.negated

    def test_not_not_exists_cancels(self):
        normalized = push_down_negations(Not(Exists(sub(), negated=True)))
        assert isinstance(normalized, Exists)
        assert not normalized.negated

    def test_not_scalar_comparison(self):
        predicate = Not(ScalarComparison("<", col("b.X"), sub(col("r.Y"))))
        normalized = push_down_negations(predicate)
        assert isinstance(normalized, ScalarComparison)
        assert normalized.op == ">="

    def test_not_some_becomes_all(self):
        predicate = Not(
            QuantifiedComparison("=", "some", col("b.X"), sub(col("r.Y")))
        )
        normalized = push_down_negations(predicate)
        assert normalized.quantifier == "all"
        assert normalized.op == "<>"

    def test_not_all_becomes_some(self):
        predicate = Not(
            QuantifiedComparison(">", "all", col("b.X"), sub(col("r.Y")))
        )
        normalized = push_down_negations(predicate)
        assert normalized.quantifier == "some"
        assert normalized.op == "<="


class TestSubqueryBodies:
    def test_negations_inside_subquery_normalized(self):
        inner = Subquery(
            ScanTable("R", "r"),
            Not(And(col("r.K") == col("b.K"), col("r.Y") > lit(1))),
        )
        normalized = push_down_negations(Exists(inner))
        assert isinstance(normalized.subquery.predicate, Or)

    def test_untouched_predicate_returned_as_is(self):
        predicate = Exists(sub())
        assert push_down_negations(predicate) is predicate


class TestSemanticPreservation:
    def test_3vl_equivalence_exhaustive(self):
        """¬ elimination must be exact under three-valued logic."""
        from repro.storage.schema import Field, Schema
        from repro.storage.types import DataType

        schema = Schema([Field("a", DataType.INTEGER),
                         Field("b", DataType.INTEGER)])
        rows = [(1, 2), (2, 1), (1, 1), (None, 1), (1, None), (None, None)]
        forms = [
            Not(col("a") == col("b")),
            Not(And(col("a") < col("b"), col("b") < lit(5))),
            Not(Or(col("a") < col("b"), IsNull(col("a")))),
            Not(Not(col("a") >= col("b"))),
        ]
        for predicate in forms:
            normalized = push_down_negations(predicate)
            before = predicate.bind(schema)
            after = normalized.bind(schema)
            for row in rows:
                assert before(row) is after(row), (predicate, row)
