"""Unit tests for repro.storage.columnar (lossless columnar transpose)."""

from array import array

from repro.storage.columnar import ColumnarRelation, ColumnData
from repro.storage.relation import Relation
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType


def make_relation(fields, rows, name=None, validate=True):
    schema = Schema([Field(n, t, "T") for n, t in fields])
    return Relation(schema, rows, name=name, validate=validate)


def roundtrip(relation):
    return ColumnarRelation.from_relation(relation).to_relation()


class TestRoundTrip:
    def test_exact_rows_in_order(self):
        relation = make_relation(
            [("k", DataType.INTEGER), ("v", DataType.FLOAT),
             ("s", DataType.STRING), ("f", DataType.BOOLEAN)],
            [(1, 2.5, "a", True), (2, -0.5, "b", False),
             (1, 2.5, "a", True)],
        )
        back = roundtrip(relation)
        assert back.rows == relation.rows
        assert back.schema == relation.schema

    def test_duplicates_survive(self):
        relation = make_relation([("k", DataType.INTEGER)],
                                 [(7,)] * 5 + [(3,)] * 2)
        assert roundtrip(relation).rows == relation.rows

    def test_nulls_survive_per_column(self):
        relation = make_relation(
            [("k", DataType.INTEGER), ("s", DataType.STRING)],
            [(None, "x"), (1, None), (None, None), (2, "x")],
        )
        assert roundtrip(relation).rows == relation.rows

    def test_empty_relation(self):
        relation = make_relation(
            [("k", DataType.INTEGER), ("s", DataType.STRING)], []
        )
        back = roundtrip(relation)
        assert back.rows == []
        assert len(back.schema) == 2

    def test_name_preserved(self):
        relation = make_relation([("k", DataType.INTEGER)], [(1,)],
                                 name="detail")
        columnar = ColumnarRelation.from_relation(relation)
        assert columnar.name == "detail"
        assert columnar.to_relation().name == "detail"

    def test_bool_identity_restored(self):
        relation = make_relation([("f", DataType.BOOLEAN)],
                                 [(True,), (False,), (None,)])
        values = [row[0] for row in roundtrip(relation).rows]
        assert values == [True, False, None]
        assert all(v is None or type(v) is bool for v in values)


class TestTypedEncodings:
    def test_integer_column_uses_int64_array(self):
        relation = make_relation([("k", DataType.INTEGER)],
                                 [(1,), (None,), (-5,)])
        column = ColumnarRelation.from_relation(relation).columns[0]
        assert column.kind == "int"
        assert isinstance(column.data, array) and column.data.typecode == "q"
        assert column.null_count() == 1

    def test_float_column_uses_double_array(self):
        relation = make_relation([("v", DataType.FLOAT)], [(0.5,), (None,)])
        column = ColumnarRelation.from_relation(relation).columns[0]
        assert column.kind == "float"
        assert column.data.typecode == "d"

    def test_string_column_dictionary_encodes(self):
        relation = make_relation(
            [("s", DataType.STRING)],
            [("red",), ("blue",), ("red",), (None,), ("red",)],
        )
        column = ColumnarRelation.from_relation(relation).columns[0]
        assert column.kind == "dict"
        assert sorted(column.dictionary) == ["blue", "red"]
        assert column.decode() == ["red", "blue", "red", None, "red"]

    def test_int64_overflow_falls_back_to_objects(self):
        big = 2 ** 70
        relation = make_relation([("k", DataType.INTEGER)], [(big,), (1,)])
        column = ColumnarRelation.from_relation(relation).columns[0]
        assert column.kind == "object"
        assert roundtrip(relation).rows == [(big,), (1,)]

    def test_mistyped_values_fall_back_losslessly(self):
        # Intermediate relations use validate=False, so a declared
        # INTEGER column may actually carry floats; the round trip must
        # still be exact.
        relation = make_relation([("k", DataType.INTEGER)],
                                 [(1,), (2.5,), (None,)], validate=False)
        column = ColumnarRelation.from_relation(relation).columns[0]
        assert column.kind == "object"
        assert roundtrip(relation).rows == relation.rows

    def test_bool_is_not_an_acceptable_integer(self):
        # type(True) is bool, not int: keep the distinction through the
        # round trip rather than silently coercing to 0/1.
        relation = make_relation([("k", DataType.INTEGER)],
                                 [(True,), (1,)], validate=False)
        back = roundtrip(relation)
        assert back.rows[0][0] is True


class TestAccessors:
    def test_values_cached(self):
        relation = make_relation([("k", DataType.INTEGER)], [(1,), (2,)])
        columnar = ColumnarRelation.from_relation(relation)
        assert columnar.values(0) is columnar.values(0)

    def test_value_columns_in_schema_order(self):
        relation = make_relation(
            [("k", DataType.INTEGER), ("s", DataType.STRING)],
            [(1, "a"), (2, "b")],
        )
        cols = ColumnarRelation.from_relation(relation).value_columns()
        assert cols == ([1, 2], ["a", "b"])

    def test_row_materialization(self):
        relation = make_relation(
            [("k", DataType.INTEGER), ("s", DataType.STRING)],
            [(1, "a"), (None, None)],
        )
        columnar = ColumnarRelation.from_relation(relation)
        assert columnar.row(1) == (None, None)

    def test_len_and_null_count(self):
        data = ColumnData("int", array("q", [0, 5]), bytearray([0, 1]))
        assert len(data) == 2
        assert data.null_count() == 1
        assert data.decode() == [None, 5]
