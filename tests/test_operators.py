"""Unit tests for repro.algebra.operators (the flat algebra)."""

import pytest

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import Coalesce, col, lit, TRUE
from repro.algebra.operators import (
    Difference,
    Distinct,
    GroupBy,
    Join,
    OrderBy,
    Project,
    ProjectItem,
    Rename,
    ScanTable,
    Select,
    TableValue,
    Union,
)
from repro.errors import PlanError, SchemaError
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("L", Relation.from_columns(
        [("k", DataType.INTEGER), ("x", DataType.INTEGER)],
        [(1, 10), (2, 20), (2, 20), (3, None), (None, 40)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("k", DataType.INTEGER), ("y", DataType.STRING)],
        [(1, "a"), (2, "b"), (2, "c"), (4, "d"), (None, "e")],
    ))
    return cat


class TestScan:
    def test_scan_renames_with_alias(self, catalog):
        result = ScanTable("L", "t").evaluate(catalog)
        assert result.schema.names == ("t.k", "t.x")

    def test_scan_defaults_to_table_name(self, catalog):
        result = ScanTable("L").evaluate(catalog)
        assert result.schema.names == ("L.k", "L.x")

    def test_schema_matches_evaluate(self, catalog):
        node = ScanTable("L", "t")
        assert node.schema(catalog) == node.evaluate(catalog).schema


class TestTableValue:
    def test_wraps_relation(self, catalog):
        relation = catalog.table("L")
        assert len(TableValue(relation).evaluate(catalog)) == 5

    def test_alias(self, catalog):
        node = TableValue(catalog.table("L"), alias="z")
        assert node.evaluate(catalog).schema.names == ("z.k", "z.x")


class TestSelect:
    def test_keeps_true_rows_only(self, catalog):
        result = Select(ScanTable("L", "t"), col("t.x") > lit(15)).evaluate(catalog)
        assert len(result) == 3

    def test_unknown_rows_discarded(self, catalog):
        # x is NULL for k=3: comparison is UNKNOWN, row dropped.
        result = Select(ScanTable("L", "t"), col("t.x") < lit(100)).evaluate(catalog)
        assert (3, None) not in result.rows

    def test_true_predicate_is_passthrough(self, catalog):
        with collect() as stats:
            result = Select(ScanTable("L", "t"), TRUE).evaluate(catalog)
        assert len(result) == 5
        assert stats.predicate_evals == 0

    def test_charges_predicate_evals(self, catalog):
        with collect() as stats:
            Select(ScanTable("L", "t"), col("t.x") > lit(0)).evaluate(catalog)
        assert stats.predicate_evals == 5


class TestProject:
    def test_column_projection_preserves_field(self, catalog):
        result = Project(ScanTable("L", "t"), ["t.x"]).evaluate(catalog)
        assert result.schema.names == ("t.x",)

    def test_expression_projection(self, catalog):
        result = Project(
            ScanTable("L", "t"), [(col("t.x") * lit(2), "double")]
        ).evaluate(catalog)
        assert result.schema.names == ("double",)
        assert result.rows[0] == (20,)

    def test_distinct_projection(self, catalog):
        result = Project(ScanTable("L", "t"), ["t.k"], distinct=True).evaluate(
            catalog
        )
        assert len(result) == 4  # 1, 2, 3, NULL

    def test_coalesce_in_projection(self, catalog):
        result = Project(
            ScanTable("L", "t"), [(Coalesce(col("t.x"), lit(0)), "x0")]
        ).evaluate(catalog)
        assert (0,) in result.rows

    def test_bad_item_rejected(self):
        with pytest.raises(Exception):
            ProjectItem.of(42)

    def test_schema_agrees_with_evaluate(self, catalog):
        node = Project(ScanTable("L", "t"), ["t.k", (col("t.x"), "v")])
        assert node.schema(catalog) == node.evaluate(catalog).schema


class TestRenameDistinct:
    def test_rename(self, catalog):
        result = Rename(ScanTable("L", "t"), "u").evaluate(catalog)
        assert result.schema.names == ("u.k", "u.x")

    def test_distinct_removes_duplicates(self, catalog):
        result = Distinct(ScanTable("L", "t")).evaluate(catalog)
        assert len(result) == 4


class TestUnionDifference:
    def test_union_all_keeps_duplicates(self, catalog):
        node = Union(ScanTable("L", "a"), ScanTable("L", "b"))
        assert len(node.evaluate(catalog)) == 10

    def test_union_distinct(self, catalog):
        node = Union(ScanTable("L", "a"), ScanTable("L", "b"), distinct=True)
        assert len(node.evaluate(catalog)) == 4

    def test_union_arity_mismatch(self, catalog):
        node = Union(ScanTable("L", "a"), Project(ScanTable("L", "b"), ["b.k"]))
        with pytest.raises(SchemaError):
            node.evaluate(catalog)

    def test_difference_all_is_bag_difference(self, catalog):
        one_two = TableValue(Relation.from_columns(
            [("k", DataType.INTEGER), ("x", DataType.INTEGER)],
            [(2, 20)],
        ))
        node = Difference(ScanTable("L", "t"), one_two)
        result = node.evaluate(catalog)
        # One of the two (2, 20) rows survives under EXCEPT ALL.
        assert result.as_multiset()[(2, 20)] == 1

    def test_difference_distinct(self, catalog):
        node = Difference(ScanTable("L", "t"), ScanTable("L", "u"),
                          distinct=True)
        assert len(node.evaluate(catalog)) == 0


class TestJoins:
    def test_inner_hash_join(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") == col("r.k"))
        result = node.evaluate(catalog)
        # k=1 matches once, each of the two (2,20) rows matches "b" and "c".
        assert len(result) == 5

    def test_null_keys_never_join(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") == col("r.k"))
        result = node.evaluate(catalog)
        assert all(row[0] is not None for row in result.rows)

    def test_methods_agree(self, catalog):
        condition = col("l.k") == col("r.k")
        results = [
            Join(ScanTable("L", "l"), ScanTable("R", "r"), condition,
                 method=method).evaluate(catalog)
            for method in ("nested", "hash", "merge")
        ]
        assert results[0].bag_equal(results[1])
        assert results[0].bag_equal(results[2])

    def test_left_outer_pads_with_nulls(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") == col("r.k"), kind="left")
        result = node.evaluate(catalog)
        padded = [row for row in result.rows if row[2] is None and row[3] is None]
        assert len(padded) == 2  # k=3 and k=NULL have no match

    def test_semi_join(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") == col("r.k"), kind="semi")
        result = node.evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 2, 2]
        assert result.schema.names == ("l.k", "l.x")

    def test_anti_join(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") == col("r.k"), kind="anti")
        result = node.evaluate(catalog)
        assert len(result) == 2  # k=3 and k=NULL

    def test_theta_join_without_equality_uses_nested(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") != col("r.k"))
        result = node.evaluate(catalog)
        nested = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                      col("l.k") != col("r.k"), method="nested").evaluate(catalog)
        assert result.bag_equal(nested)

    def test_hash_join_with_residual(self, catalog):
        condition = (col("l.k") == col("r.k")) & (col("r.y") == lit("b"))
        result = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                      condition).evaluate(catalog)
        assert len(result) == 2

    def test_hash_method_requires_equality(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") != col("r.k"), method="hash")
        with pytest.raises(PlanError):
            node.evaluate(catalog)

    def test_unknown_kind_rejected(self, catalog):
        with pytest.raises(PlanError):
            Join(ScanTable("L", "l"), ScanTable("R", "r"), TRUE, kind="outer")

    def test_merge_join_multi_key(self, catalog):
        condition = (col("l.k") == col("r.k")) & (col("l.x") > lit(5))
        merged = Join(ScanTable("L", "l"), ScanTable("R", "r"), condition,
                      method="merge").evaluate(catalog)
        hashed = Join(ScanTable("L", "l"), ScanTable("R", "r"), condition,
                      method="hash").evaluate(catalog)
        assert merged.bag_equal(hashed)

    def test_semi_schema_excludes_right(self, catalog):
        node = Join(ScanTable("L", "l"), ScanTable("R", "r"),
                    col("l.k") == col("r.k"), kind="semi")
        assert node.schema(catalog).names == ("l.k", "l.x")


class TestGroupBy:
    def test_grouping(self, catalog):
        node = GroupBy(ScanTable("R", "r"), ["r.k"], [count_star("cnt")])
        result = node.evaluate(catalog)
        counts = dict(result.rows)
        assert counts[2] == 2

    def test_group_keys_include_null_group(self, catalog):
        node = GroupBy(ScanTable("R", "r"), ["r.k"], [count_star("cnt")])
        result = node.evaluate(catalog)
        assert (None, 1) in result.rows

    def test_scalar_aggregate_on_empty_input(self, catalog):
        empty = TableValue(Relation.from_columns(
            [("y", DataType.INTEGER)], []
        ))
        node = GroupBy(empty, [], [count_star("cnt"),
                                   agg("sum", col("y"), "total")])
        result = node.evaluate(catalog)
        assert result.rows == [(0, None)]

    def test_grouped_empty_input_is_empty(self, catalog):
        empty = TableValue(Relation.from_columns(
            [("k", DataType.INTEGER), ("y", DataType.INTEGER)], []
        ))
        node = GroupBy(empty, ["k"], [count_star("cnt")])
        assert len(node.evaluate(catalog)) == 0

    def test_multiple_aggregates(self, catalog):
        node = GroupBy(ScanTable("L", "l"), ["l.k"],
                       [count_star("cnt"), agg("max", col("l.x"), "mx")])
        result = node.evaluate(catalog)
        rows = {row[0]: row for row in result.rows}
        assert rows[3] == (3, 1, None)  # count(*)=1, max of NULL = NULL

    def test_schema(self, catalog):
        node = GroupBy(ScanTable("L", "l"), ["l.k"], [count_star("cnt")])
        assert node.schema(catalog).names == ("l.k", "cnt")


class TestOrderBy:
    def test_ascending_nulls_first(self, catalog):
        node = OrderBy(ScanTable("L", "t"), [("t.x", False)])
        result = node.evaluate(catalog)
        assert result.rows[0][1] is None

    def test_descending(self, catalog):
        node = OrderBy(ScanTable("L", "t"), [("t.x", True)])
        result = node.evaluate(catalog)
        assert result.rows[0][1] == 40

    def test_stable_multi_key(self, catalog):
        node = OrderBy(ScanTable("R", "r"), [("r.k", False), ("r.y", True)])
        result = node.evaluate(catalog)
        twos = [row[1] for row in result.rows if row[0] == 2]
        assert twos == ["c", "b"]
