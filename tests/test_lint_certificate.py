"""Static cost certification and its runtime cross-check.

The certificate's claims (output ≤ |B|, one detail scan per GMDJ) are
derived from plan structure alone; these tests pin the derivation and
then drive certified plans through traced execution to confirm
``check_trace`` accepts the real counters and rejects doctored ones.
"""

from __future__ import annotations

import pytest

from repro import Database, QueryOptions
from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import TRUE, Column, Comparison
from repro.algebra.nested import NestedSelect, ScalarComparison, Subquery
from repro.algebra.operators import Project, ScanTable, Select
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.lint import CostCertificate, GMDJCostEntry, certify_plan
from repro.obs.explain import analyze, static_report
from repro.obs.invariants import check_trace


def count_star(name: str) -> AggregateSpec:
    return AggregateSpec("count", None, name)


def simple_gmdj() -> GMDJ:
    return GMDJ(
        ScanTable("B"), ScanTable("R"),
        [ThetaBlock([count_star("cnt")],
                    Comparison("=", Column("B.K"), Column("R.K")))],
    )


class TestCertifyPlan:
    def test_single_gmdj(self):
        certificate = certify_plan(simple_gmdj())
        assert len(certificate.entries) == 1
        (entry,) = certificate.entries
        assert entry.relation == "R"
        assert entry.blocks == 1
        assert entry.completion is False
        assert certificate.scan_counts == {"R": 1}
        assert certificate.single_scan_tables == frozenset({"R"})
        assert certificate.complete is True

    def test_no_gmdj_plan(self):
        certificate = certify_plan(ScanTable("B"))
        assert certificate.entries == ()
        assert "no GMDJ operators" in certificate.summary()

    def test_stacked_gmdjs_count_scans_per_operator(self):
        inner = simple_gmdj()
        outer = GMDJ(inner, ScanTable("R", "__p2"),
                     [ThetaBlock([count_star("c2")], TRUE)])
        certificate = certify_plan(outer)
        assert len(certificate.entries) == 2
        assert certificate.scan_counts == {"R": 2}
        # Scanned twice -> not in the Prop. 4.1 single-scan subset.
        assert certificate.single_scan_tables == frozenset()

    def test_select_gmdj_fuses_into_one_entry(self):
        fused = SelectGMDJ(
            simple_gmdj(), Comparison(">", Column("cnt"), Column("B.X"))
        )
        certificate = certify_plan(fused)
        assert len(certificate.entries) == 1
        assert certificate.entries[0].completion is True
        assert certificate.scan_counts == {"R": 1}

    def test_nested_residue_marks_incomplete(self):
        residue = NestedSelect(
            simple_gmdj(),
            ScalarComparison(
                ">", Column("B.X"),
                Subquery(ScanTable("R"), TRUE,
                         aggregate=AggregateSpec("avg", Column("R.Y"), "a")),
            ),
        )
        certificate = certify_plan(residue)
        assert certificate.complete is False
        assert "incomplete" in certificate.summary()

    def test_derived_detail_has_no_relation(self):
        derived = GMDJ(
            ScanTable("B"),
            Select(ScanTable("R"), Comparison(">", Column("R.Y"), Column("R.K"))),
            [ThetaBlock([count_star("cnt")],
                        Comparison("=", Column("B.K"), Column("R.K")))],
        )
        certificate = certify_plan(derived)
        assert certificate.entries[0].relation is None
        assert certificate.scan_counts == {}

    def test_json_shape(self):
        payload = certify_plan(simple_gmdj()).to_json()
        assert payload["complete"] is True
        assert payload["detail_scan_counts"] == {"R": 1}
        assert payload["single_scan_tables"] == ["R"]
        (entry,) = payload["entries"]
        assert "output_rows <= base_rows" in entry["claims"]
        assert "1 detail scan per evaluation" in entry["claims"]

    def test_summary_mentions_bound_and_scans(self):
        text = certify_plan(simple_gmdj()).summary()
        assert "output ≤ |B|" in text
        assert "R×1" in text


class TestRuntimeCrossCheck:
    @pytest.fixture
    def db(self, kv_catalog) -> Database:
        database = Database()
        for name in kv_catalog.table_names():
            database.register(name, kv_catalog.table(name))
        return database

    SQL = ("SELECT B.K FROM B WHERE B.X > "
           "(SELECT AVG(R.Y) FROM R WHERE R.K = B.K)")

    def test_certificate_holds_on_traced_run(self, db):
        query = db.sql(self.SQL)
        report, invariants, _ = analyze(
            db, query, QueryOptions(strategy="gmdj_optimized")
        )
        assert invariants.violations == []
        assert invariants.checked >= 1

    def test_doctored_certificate_is_rejected(self, db):
        from repro.unnesting.translate import subquery_to_gmdj

        query = db.sql(self.SQL)
        plan = subquery_to_gmdj(query, db.catalog, optimize=True)
        honest = certify_plan(plan)
        report = db.profile(
            query, QueryOptions(strategy="gmdj_optimized", trace=True)
        )
        assert check_trace(report.trace, certificate=honest).violations == []
        doctored = CostCertificate(
            entries=honest.entries + (GMDJCostEntry(
                path="phantom", relation="R", blocks=1, completion=False
            ),),
            detail_scan_counts=(("R", 2),),
            single_scan_tables=frozenset(),
            complete=True,
        )
        violated = check_trace(report.trace, certificate=doctored)
        assert violated.violations
        assert any("certificate" in v for v in violated.violations)

    def test_incomplete_certificate_skips_exact_counts(self, db):
        query = db.sql(self.SQL)
        report = db.profile(
            query, QueryOptions(strategy="gmdj_optimized", trace=True)
        )
        lenient = CostCertificate(
            entries=(GMDJCostEntry("p", "R", 1, False),) * 3,
            detail_scan_counts=(("R", 3),),
            single_scan_tables=frozenset(),
            complete=False,
        )
        # Wrong counts, but incomplete certificates make no exact claim.
        result = check_trace(report.trace, certificate=lenient)
        assert not any("certificate" in v for v in result.violations)


class TestExplainIntegration:
    @pytest.fixture
    def db(self, kv_catalog) -> Database:
        database = Database()
        for name in kv_catalog.table_names():
            database.register(name, kv_catalog.table(name))
        return database

    SQL = ("SELECT B.K FROM B WHERE B.X > "
           "(SELECT AVG(R.Y) FROM R WHERE R.K = B.K)")

    def test_static_report_matches_explain_dispatch(self, db):
        query = db.sql(self.SQL)
        lint, certificate = static_report(db, query, "gmdj_optimized")
        assert lint.ok, lint.render()
        assert len(certificate.entries) >= 1

    def test_explain_analyze_panel(self, db):
        text = db.explain_analyze(
            db.sql(self.SQL), QueryOptions(strategy="gmdj_optimized"),
            strict=True,
        )
        assert "-- lint:" in text
        assert "cost certificate:" in text
        assert "invariants:" in text

    def test_explain_analyze_json_fields(self, db):
        from repro.obs.explain import explain_analyze_json

        payload = explain_analyze_json(
            db, db.sql(self.SQL), QueryOptions(strategy="gmdj_optimized")
        )
        assert payload["lint"]["ok"] is True
        assert payload["certificate"]["complete"] is True
        assert payload["invariants"]["violations"] == []

    def test_baseline_strategy_lints_query_as_is(self, db):
        query = db.sql(self.SQL)
        lint, certificate = static_report(db, query, "naive")
        assert lint.ok
        # The un-translated nested query holds no GMDJ operators.
        assert certificate.entries == ()


def test_project_wrapper_path_labels(kv_catalog):
    plan = Project(simple_gmdj(), ["B.K"])
    certificate = certify_plan(plan)
    (entry,) = certificate.entries
    assert entry.path.startswith("/project[0]")
