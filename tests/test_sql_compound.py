"""Tests for compound SELECTs (UNION/EXCEPT/INTERSECT), LIMIT/OFFSET,
and the Intersect/Limit operators."""

import pytest

from repro.algebra.operators import Intersect, Limit, ScanTable
from repro.errors import PlanError, SQLSyntaxError
from repro.sql import compile_sql, parse_sql
from repro.sql.ast_nodes import CompoundSelect
from repro.storage import Catalog, DataType, Relation


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("T", Relation.from_columns(
        [("k", DataType.INTEGER)], [(1,), (1,), (2,), (3,)],
    ))
    cat.create_table("U", Relation.from_columns(
        [("k", DataType.INTEGER)], [(1,), (3,), (3,), (4,)],
    ))
    return cat


class TestOperators:
    def test_intersect_all_min_multiplicity(self, catalog):
        node = Intersect(ScanTable("T", "t"), ScanTable("U", "u"))
        result = node.evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 3]

    def test_intersect_distinct(self, catalog):
        node = Intersect(ScanTable("T", "t"), ScanTable("U", "u"),
                         distinct=True)
        assert sorted(r[0] for r in node.evaluate(catalog).rows) == [1, 3]

    def test_limit(self, catalog):
        node = Limit(ScanTable("T", "t"), 2)
        assert len(node.evaluate(catalog)) == 2

    def test_limit_with_offset(self, catalog):
        node = Limit(ScanTable("T", "t"), 2, offset=3)
        assert [row[0] for row in node.evaluate(catalog).rows] == [3]

    def test_negative_limit_rejected(self, catalog):
        with pytest.raises(PlanError):
            Limit(ScanTable("T", "t"), -1)


class TestParsing:
    def test_union_parses_to_compound(self):
        statement = parse_sql("SELECT k FROM T UNION SELECT k FROM U")
        assert isinstance(statement, CompoundSelect)
        assert statement.operator == "union" and not statement.all

    def test_union_all(self):
        statement = parse_sql("SELECT k FROM T UNION ALL SELECT k FROM U")
        assert statement.all

    def test_left_associative_chain(self):
        statement = parse_sql(
            "SELECT k FROM T UNION SELECT k FROM U EXCEPT SELECT k FROM T"
        )
        assert statement.operator == "except"
        assert isinstance(statement.left, CompoundSelect)

    def test_limit_clause(self):
        statement = parse_sql("SELECT k FROM T LIMIT 5 OFFSET 2")
        assert statement.limit == 5 and statement.offset == 2

    def test_limit_requires_number(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT k FROM T LIMIT many")


class TestExecution:
    def test_union_distinct(self, catalog):
        result = compile_sql("SELECT k FROM T UNION SELECT k FROM U",
                             catalog).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 2, 3, 4]

    def test_union_all_keeps_duplicates(self, catalog):
        result = compile_sql("SELECT k FROM T UNION ALL SELECT k FROM U",
                             catalog).evaluate(catalog)
        assert len(result) == 8

    def test_except_distinct_is_set_difference(self, catalog):
        result = compile_sql("SELECT k FROM T EXCEPT SELECT k FROM U",
                             catalog).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [2]

    def test_except_all_is_bag_difference(self, catalog):
        result = compile_sql("SELECT k FROM T EXCEPT ALL SELECT k FROM U",
                             catalog).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 2]

    def test_intersect(self, catalog):
        result = compile_sql("SELECT k FROM T INTERSECT SELECT k FROM U",
                             catalog).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 3]

    def test_limit_execution(self, catalog):
        result = compile_sql("SELECT k FROM T ORDER BY k DESC LIMIT 2",
                             catalog).evaluate(catalog)
        assert [row[0] for row in result.rows] == [3, 2]

    def test_compound_with_subqueries(self, catalog):
        sql = (
            "SELECT t.k FROM T t WHERE EXISTS "
            "(SELECT * FROM U u WHERE u.k = t.k) "
            "UNION SELECT u.k FROM U u WHERE u.k NOT IN (SELECT k FROM T)"
        )
        result = compile_sql(sql, catalog).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [1, 3, 4]

    def test_compound_through_strategies(self, catalog):
        from repro.engine import execute

        sql = (
            "SELECT t.k FROM T t WHERE EXISTS "
            "(SELECT * FROM U u WHERE u.k = t.k) "
            "EXCEPT SELECT u.k FROM U u WHERE u.k > 2"
        )
        plan = compile_sql(sql, catalog)
        reference = execute(plan, catalog, "naive")
        for strategy in ("native", "gmdj", "gmdj_optimized"):
            assert reference.bag_equal(execute(plan, catalog, strategy))
