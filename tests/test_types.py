"""Unit tests for repro.storage.types."""

import pytest

from repro.errors import TypeCheckError
from repro.storage.types import DataType, NULL, common_type, comparable


class TestValidate:
    def test_integer_accepts_int(self):
        assert DataType.INTEGER.validate(42) == 42

    def test_integer_rejects_float(self):
        with pytest.raises(TypeCheckError):
            DataType.INTEGER.validate(4.2)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeCheckError):
            DataType.INTEGER.validate(True)

    def test_integer_rejects_string(self):
        with pytest.raises(TypeCheckError):
            DataType.INTEGER.validate("42")

    def test_float_accepts_float(self):
        assert DataType.FLOAT.validate(4.5) == 4.5

    def test_float_widens_int(self):
        value = DataType.FLOAT.validate(4)
        assert value == 4.0
        assert isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeCheckError):
            DataType.FLOAT.validate(False)

    def test_string_accepts_str(self):
        assert DataType.STRING.validate("abc") == "abc"

    def test_string_rejects_int(self):
        with pytest.raises(TypeCheckError):
            DataType.STRING.validate(1)

    def test_boolean_accepts_bool(self):
        assert DataType.BOOLEAN.validate(True) is True

    def test_boolean_rejects_int(self):
        with pytest.raises(TypeCheckError):
            DataType.BOOLEAN.validate(1)

    @pytest.mark.parametrize("dtype", list(DataType))
    def test_null_valid_for_every_type(self, dtype):
        assert dtype.validate(NULL) is None


class TestParse:
    def test_empty_string_is_null(self):
        assert DataType.INTEGER.parse("") is None
        assert DataType.STRING.parse("") is None

    def test_parse_integer(self):
        assert DataType.INTEGER.parse("-17") == -17

    def test_parse_float(self):
        assert DataType.FLOAT.parse("2.5") == 2.5

    def test_parse_string_identity(self):
        assert DataType.STRING.parse("hello world") == "hello world"

    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("T", True), ("1", True),
        ("false", False), ("F", False), ("0", False),
    ])
    def test_parse_boolean(self, text, expected):
        assert DataType.BOOLEAN.parse(text) is expected

    def test_parse_boolean_garbage(self):
        with pytest.raises(TypeCheckError):
            DataType.BOOLEAN.parse("maybe")


class TestInfer:
    def test_infer_bool_before_int(self):
        assert DataType.infer(True) is DataType.BOOLEAN

    def test_infer_int(self):
        assert DataType.infer(3) is DataType.INTEGER

    def test_infer_float(self):
        assert DataType.infer(3.5) is DataType.FLOAT

    def test_infer_string(self):
        assert DataType.infer("x") is DataType.STRING

    def test_infer_none_raises(self):
        with pytest.raises(TypeCheckError):
            DataType.infer(None)


class TestTypeAlgebra:
    def test_common_type_same(self):
        assert common_type(DataType.STRING, DataType.STRING) is DataType.STRING

    def test_common_type_numeric_widens(self):
        assert common_type(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT

    def test_common_type_incompatible(self):
        with pytest.raises(TypeCheckError):
            common_type(DataType.STRING, DataType.INTEGER)

    def test_comparable_numeric_mix(self):
        assert comparable(DataType.INTEGER, DataType.FLOAT)

    def test_comparable_same(self):
        assert comparable(DataType.STRING, DataType.STRING)

    def test_not_comparable_string_number(self):
        assert not comparable(DataType.STRING, DataType.FLOAT)

    def test_is_numeric(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BOOLEAN.is_numeric
