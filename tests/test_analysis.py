"""Unit tests for repro.algebra.analysis (condition factoring)."""

from repro.algebra.analysis import (
    factor_condition,
    is_trivially_true,
    refers_only_to,
)
from repro.algebra.expressions import TRUE, col, lit
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

LEFT = Schema([Field("k", DataType.INTEGER, "B"),
               Field("x", DataType.INTEGER, "B")])
RIGHT = Schema([Field("k", DataType.INTEGER, "R"),
                Field("y", DataType.INTEGER, "R")])


class TestRefersOnlyTo:
    def test_positive(self):
        assert refers_only_to(col("B.k") + col("B.x"), LEFT)

    def test_negative(self):
        assert not refers_only_to(col("B.k") + col("R.y"), LEFT)

    def test_literal_refers_to_nothing(self):
        assert refers_only_to(lit(5), LEFT)


class TestFactorCondition:
    def test_pure_equality(self):
        factored = factor_condition(col("B.k") == col("R.k"), LEFT, RIGHT)
        assert factored.has_equality
        assert factored.residual is None
        assert len(factored.left_keys) == 1

    def test_reversed_equality_orientation(self):
        factored = factor_condition(col("R.k") == col("B.k"), LEFT, RIGHT)
        assert factored.has_equality
        assert factored.left_keys[0].references() == {"B.k"}
        assert factored.right_keys[0].references() == {"R.k"}

    def test_mixed_condition(self):
        condition = (col("B.k") == col("R.k")) & (col("R.y") > lit(5))
        factored = factor_condition(condition, LEFT, RIGHT)
        assert factored.has_equality
        assert factored.residual is not None

    def test_no_equality(self):
        factored = factor_condition(col("B.k") != col("R.k"), LEFT, RIGHT)
        assert not factored.has_equality
        assert factored.residual is not None

    def test_true_literal_dropped(self):
        condition = TRUE & (col("B.k") == col("R.k"))
        factored = factor_condition(condition, LEFT, RIGHT)
        assert factored.has_equality
        assert factored.residual is None

    def test_expression_keys(self):
        condition = (col("B.k") + lit(1)) == col("R.k")
        factored = factor_condition(condition, LEFT, RIGHT)
        assert factored.has_equality

    def test_same_side_equality_stays_residual(self):
        condition = col("B.k") == col("B.x")
        factored = factor_condition(condition, LEFT, RIGHT)
        assert not factored.has_equality
        assert factored.residual is not None

    def test_multiple_equalities(self):
        condition = (col("B.k") == col("R.k")) & (col("B.x") == col("R.y"))
        factored = factor_condition(condition, LEFT, RIGHT)
        assert len(factored.left_keys) == 2


class TestTriviallyTrue:
    def test_true(self):
        assert is_trivially_true(TRUE)

    def test_comparison_is_not(self):
        assert not is_trivially_true(col("B.k") == lit(1))
