"""Unit tests for repro.storage.iostats."""

from repro.storage.iostats import IOStats, TUPLES_PER_PAGE, collect


class TestRecordScan:
    def test_exact_page_boundary(self):
        stats = IOStats()
        stats.record_scan(TUPLES_PER_PAGE * 3)
        assert stats.pages_read == 3
        assert stats.relation_scans == 1
        assert stats.tuples_scanned == TUPLES_PER_PAGE * 3

    def test_partial_page_rounds_up(self):
        stats = IOStats()
        stats.record_scan(1)
        assert stats.pages_read == 1

    def test_empty_scan_reads_nothing(self):
        stats = IOStats()
        stats.record_scan(0)
        assert stats.pages_read == 0
        assert stats.relation_scans == 1


class TestAmbient:
    def test_ambient_is_singleton(self):
        assert IOStats.ambient() is IOStats.ambient()

    def test_collect_swaps_and_restores(self):
        outer = IOStats.ambient()
        with collect() as inner:
            assert IOStats.ambient() is inner
            IOStats.ambient().predicate_evals += 5
        assert IOStats.ambient() is outer
        assert inner.predicate_evals == 5

    def test_collect_nests(self):
        with collect() as first:
            IOStats.ambient().index_probes += 1
            with collect() as second:
                IOStats.ambient().index_probes += 2
            IOStats.ambient().index_probes += 4
        assert first.index_probes == 5
        assert second.index_probes == 2

    def test_single_instance_reentry_restores_correctly(self):
        # Regression: a single collect instance entered while already
        # active used to clobber its saved previous object, so the
        # outermost exit restored the wrong ambient.
        outer = IOStats.ambient()
        cm = collect()
        with cm as stats:
            with cm as again:
                assert again is stats
                assert IOStats.ambient() is stats
            assert IOStats.ambient() is stats
        assert IOStats.ambient() is outer

    def test_single_instance_sequential_reuse(self):
        outer = IOStats.ambient()
        cm = collect()
        with cm as stats:
            IOStats.ambient().predicate_evals += 1
        with cm:
            IOStats.ambient().predicate_evals += 2
        assert IOStats.ambient() is outer
        assert stats.predicate_evals == 3  # same stats object both times

    def test_unbalanced_exit_is_an_error(self):
        cm = collect()
        try:
            cm.__exit__(None, None, None)
        except AssertionError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected AssertionError on bare __exit__")


class TestReset:
    def test_reset_zeroes_counters(self):
        stats = IOStats()
        stats.record_scan(500)
        stats.predicate_evals = 7
        stats.extra["note"] = 1
        stats.reset()
        assert stats.pages_read == 0
        assert stats.predicate_evals == 0
        assert stats.extra == {}

    def test_snapshot_contains_integer_counters(self):
        stats = IOStats()
        stats.record_scan(50)
        snapshot = stats.snapshot()
        assert snapshot["tuples_scanned"] == 50
        assert "extra" not in snapshot

    def test_total_work_weighs_pages(self):
        stats = IOStats()
        stats.pages_read = 2
        stats.predicate_evals = 10
        assert stats.total_work() == 2010
