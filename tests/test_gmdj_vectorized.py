"""Columnar batch GMDJ kernel vs. the row interpreter.

The contract of :mod:`repro.gmdj.vectorized` is strict: for any GMDJ
and any chunk size, ``run_gmdj_vectorized`` must produce the *same rows
in the same order* as ``run_gmdj`` — and perform the same accounted
work, down to identical IOStats counter snapshots (predicate_evals,
aggregate_updates, index_probes, pages, tuples).  These tests pin that
contract on every access path (hash, scan, invariant), on multi-block
coalesced plans, under completion, and composed with the chunked and
partitioned/pooled execution regimes.
"""

import random

import pytest

from repro import Database, DataType, QueryOptions
from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import col, lit
from repro.algebra.operators import ScanTable
from repro.errors import ConfigurationError
from repro.gmdj import md
from repro.gmdj.evaluate import run_gmdj
from repro.gmdj.vectorized import (
    DEFAULT_CHUNK_SIZE,
    resolve_chunk_size,
    run_gmdj_vectorized,
)
from repro.obs.tracer import Tracer, tracing
from repro.storage import Catalog, Relation, collect

DETAIL_ROWS = 157  # not a multiple of any chunk size used below


def null_heavy_catalog(seed=0):
    rng = random.Random(seed)

    def maybe(value, rate=0.25):
        return None if rng.random() < rate else value

    base = Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(maybe(i % 6), maybe(rng.randrange(50))) for i in range(17)],
        name="B", qualifier="b",
    )
    detail = Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER),
         ("S", DataType.STRING)],
        [(maybe(rng.randrange(6)), maybe(rng.randrange(100)),
          maybe(rng.choice(["red", "green", "blue"])))
         for _ in range(DETAIL_ROWS)],
        name="R", qualifier="r",
    )
    catalog = Catalog()
    catalog.create_table("B", base)
    catalog.create_table("R", detail)
    return catalog, base, detail


def assert_kernels_identical(gmdj, catalog, base, detail, chunk_size):
    output_schema = gmdj.schema(catalog)
    with collect() as row_stats:
        expected = run_gmdj(base, detail, gmdj, output_schema)
    with collect() as batch_stats:
        actual = run_gmdj_vectorized(base, detail, gmdj, output_schema,
                                     chunk_size=chunk_size)
    assert actual.rows == expected.rows  # same rows, same order
    assert batch_stats.snapshot() == row_stats.snapshot()
    return expected


class TestKernelEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_hash_block_with_residual(self, chunk_size):
        catalog, base, detail = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c"), agg("sum", col("r.V"), "s"),
              agg("avg", col("r.V"), "a"), agg("min", col("r.V"), "lo")]],
            [(col("b.K") == col("r.K")) & (col("r.V") > lit(10))],
        )
        assert_kernels_identical(gmdj, catalog, base, detail, chunk_size)

    @pytest.mark.parametrize("chunk_size", [7, 64])
    def test_scan_block(self, chunk_size):
        catalog, base, detail = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c"), agg("max", col("r.V"), "hi")]],
            [col("b.K") < col("r.K")],
        )
        assert_kernels_identical(gmdj, catalog, base, detail, chunk_size)

    @pytest.mark.parametrize("chunk_size", [7, 64])
    def test_invariant_block(self, chunk_size):
        catalog, base, detail = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c"), agg("sum", col("r.V"), "s")]],
            [col("r.V") > lit(40)],
        )
        assert_kernels_identical(gmdj, catalog, base, detail, chunk_size)

    def test_multi_block_coalesced_shape(self):
        catalog, base, detail = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c1")],
             [agg("sum", col("r.V"), "s2")],
             [count_star("c3")]],
            [col("b.K") == col("r.K"),
             (col("b.K") == col("r.K")) | (col("r.V") < lit(20)),
             col("r.S") == lit("red")],
        )
        assert_kernels_identical(gmdj, catalog, base, detail, 13)

    def test_distinct_aggregates(self):
        from repro.algebra.aggregates import AggregateSpec

        catalog, base, detail = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[AggregateSpec("count", col("r.S"), "ds", distinct=True),
              count_star("c")]],
            [col("b.K") == col("r.K")],
        )
        assert_kernels_identical(gmdj, catalog, base, detail, 11)

    def test_string_keys_and_predicates(self):
        catalog, base, detail = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c")]],
            [(col("b.K") == col("r.K")) & (col("r.S") == lit("blue"))],
        )
        assert_kernels_identical(gmdj, catalog, base, detail, 10)

    def test_empty_detail(self):
        catalog, base, _ = null_heavy_catalog()
        empty = Relation(catalog.table("R").schema, [], validate=False)
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c")]],
            [col("b.K") == col("r.K")],
        )
        output_schema = gmdj.schema(catalog)
        expected = run_gmdj(base, empty, gmdj, output_schema)
        actual = run_gmdj_vectorized(base, empty, gmdj, output_schema)
        assert actual.rows == expected.rows
        assert len(actual) == len(base)


class TestChunkSize:
    def test_default(self):
        assert resolve_chunk_size(None) == DEFAULT_CHUNK_SIZE

    def test_explicit(self):
        assert resolve_chunk_size(7) == 7

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_chunk_size(bad)


class TestTraceSpans:
    def test_detail_scan_span_carries_chunk_attributes(self):
        catalog, base, detail = null_heavy_catalog()
        gmdj = md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c")]],
            [col("b.K") == col("r.K")],
        )
        output_schema = gmdj.schema(catalog)
        tracer = Tracer()
        with tracing(tracer):
            # Pin the python backend: this test documents its per-chunk
            # span contract (the numpy backend scans whole-array and is
            # covered by tests/test_backend_numpy.py).
            run_gmdj_vectorized(base, detail, gmdj, output_schema,
                                chunk_size=50, backend="python")
        scans = tracer.trace().find(kind="detail_scan")
        assert len(scans) == 1
        attrs = scans[0].attrs
        assert attrs["vectorized"] is True
        assert attrs["chunk_size"] == 50
        assert attrs["chunks"] == -(-DETAIL_ROWS // 50)
        chunk_spans = tracer.trace().find(kind="chunk_batch")
        assert len(chunk_spans) == attrs["chunks"]


SQL_EXISTS = ("SELECT K FROM B b WHERE EXISTS "
              "(SELECT * FROM R r WHERE r.K = b.K AND r.V > 20)")
SQL_NOT_EXISTS = ("SELECT K FROM B b WHERE NOT EXISTS "
                  "(SELECT * FROM R r WHERE r.K = b.K AND r.V > 80)")
SQL_AGG = ("SELECT K FROM B b WHERE "
           "3 < (SELECT COUNT(*) FROM R r WHERE r.K = b.K)")


def fuzzy_database(seed=1):
    rng = random.Random(seed)

    def maybe(value, rate=0.3):
        return None if rng.random() < rate else value

    db = Database()
    db.create_table(
        "B", [("K", DataType.INTEGER)],
        [(maybe(i % 5),) for i in range(12)],
    )
    db.create_table(
        "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(maybe(rng.randrange(5)), maybe(rng.randrange(100)))
         for _ in range(60)],
    )
    return db


class TestEndToEnd:
    @pytest.mark.parametrize("sql", [SQL_EXISTS, SQL_NOT_EXISTS, SQL_AGG])
    @pytest.mark.parametrize("strategy", ["gmdj", "gmdj_optimized",
                                          "gmdj_completion"])
    def test_vectorized_matches_row_mode(self, sql, strategy):
        db = fuzzy_database()
        expected = db.execute_sql(sql, QueryOptions(strategy=strategy))
        actual = db.execute_sql(
            sql, QueryOptions(strategy=strategy, mode="gmdj_vectorized",
                              chunk_size=7)
        )
        assert expected.bag_equal(actual)

    def test_composes_with_chunk_budget(self):
        db = fuzzy_database()
        expected = db.execute_sql(SQL_EXISTS, QueryOptions(strategy="gmdj"))
        actual = db.execute_sql(
            SQL_EXISTS,
            QueryOptions(strategy="gmdj", mode="gmdj_vectorized",
                         chunk_budget=4, chunk_size=9),
        )
        assert expected.bag_equal(actual)

    def test_composes_with_partitions_and_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        db = fuzzy_database()
        expected = db.execute_sql(SQL_EXISTS, QueryOptions(strategy="gmdj"))
        actual = db.execute_sql(
            SQL_EXISTS,
            QueryOptions(strategy="gmdj", mode="gmdj_vectorized",
                         partitions=3, workers=2, chunk_size=9),
        )
        assert expected.bag_equal(actual)

    def test_identical_io_accounting_end_to_end(self):
        # rollup="off": this test compares the raw work both kernels
        # perform, so neither run may be served from the rollup store
        # (the REPRO_ROLLUP CI leg would otherwise serve the second).
        db = fuzzy_database()
        with collect() as row_stats:
            db.execute_sql(SQL_EXISTS,
                           QueryOptions(strategy="gmdj", use_cache=False,
                                        rollup="off"))
        with collect() as batch_stats:
            db.execute_sql(
                SQL_EXISTS,
                QueryOptions(strategy="gmdj", mode="gmdj_vectorized",
                             chunk_size=11, use_cache=False, rollup="off"),
            )
        assert batch_stats.snapshot() == row_stats.snapshot()


class TestExplainAnalyze:
    def test_executed_mode_and_chunks_surfaced(self):
        db = fuzzy_database()
        text = db.explain_analyze(
            db.sql(SQL_EXISTS),
            QueryOptions(strategy="gmdj_optimized", mode="gmdj_vectorized",
                         chunk_size=16),
            strict=True,
        )
        assert "mode=gmdj_vectorized" in text
        assert "-- executed:" in text
        assert "chunks=" in text
        assert "chunk_size=16" in text
        # Single-scan vectorized runs keep the cost certificate check.
        assert "all hold" in text

    def test_executed_summary_in_json(self):
        from repro.obs.explain import explain_analyze_json

        db = fuzzy_database()
        payload = explain_analyze_json(
            db, db.sql(SQL_EXISTS),
            QueryOptions(strategy="gmdj_optimized", mode="gmdj_vectorized",
                         chunk_size=16),
        )
        executed = payload["executed"]
        assert executed["mode"] == "gmdj_vectorized"
        assert executed["chunk_size"] == 16
        assert executed["chunks"] >= 1

    def test_row_mode_has_no_chunk_fields(self):
        from repro.obs.explain import explain_analyze_json

        db = fuzzy_database()
        # mode="plain" pins the row interpreter even when REPRO_MODE
        # would default the run to the vectorized kernel.
        payload = explain_analyze_json(
            db, db.sql(SQL_EXISTS),
            QueryOptions(strategy="gmdj", mode="plain"),
        )
        assert "chunks" not in payload["executed"]
