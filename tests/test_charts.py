"""Tests for the ASCII chart renderer."""

import math

from repro.bench.charts import BAR_WIDTH, ascii_chart


class TestAsciiChart:
    def test_basic_rendering(self):
        text = ascii_chart(
            "Demo", ["n=10", "n=20"],
            {"gmdj": [100.0, 200.0], "naive": [10000.0, 40000.0]},
        )
        assert "Demo" in text
        assert "n=10:" in text and "n=20:" in text
        assert text.count("gmdj") == 2

    def test_log_scaling_orders_bars(self):
        text = ascii_chart(
            "Demo", ["p"],
            {"small": [10.0], "large": [100000.0]},
        )
        lines = {line.split("|")[0].strip(): line.split("|")[1]
                 for line in text.splitlines() if "|" in line}
        assert lines["small"].count("#") < lines["large"].count("#")

    def test_max_value_fills_bar(self):
        text = ascii_chart("Demo", ["p"], {"a": [1.0], "b": [1000.0]})
        big_line = [l for l in text.splitlines() if l.strip().startswith("b")][0]
        assert big_line.count("#") == BAR_WIDTH

    def test_infeasible_marker(self):
        text = ascii_chart(
            "Demo", ["p"], {"a": [5.0], "b": [math.inf]},
        )
        assert "infeasible" in text

    def test_all_equal_values(self):
        text = ascii_chart("Demo", ["p", "q"], {"a": [7.0, 7.0]})
        assert "#" in text

    def test_no_data(self):
        assert "(no data)" in ascii_chart("Demo", ["p"], {"a": [None]})

    def test_values_annotated(self):
        text = ascii_chart("Demo", ["p"], {"a": [1234.0]})
        assert "1,234" in text
