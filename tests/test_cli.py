"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import load_data_directory, main
from repro.engine import Database
from repro.storage import DataType, Relation, save_csv


@pytest.fixture
def data_dir(tmp_path):
    flow = Relation.from_columns(
        [("SourceIP", DataType.STRING), ("NumBytes", DataType.INTEGER)],
        [("10.0.0.1", 100), ("10.0.0.2", 50), ("10.0.0.1", 25)],
    )
    users = Relation.from_columns(
        [("IPAddress", DataType.STRING)], [("10.0.0.1",)],
    )
    save_csv(flow, tmp_path / "flow.csv")
    save_csv(users, tmp_path / "users.csv")
    return tmp_path


def run_cli(args):
    out = io.StringIO()
    code = main(args, out=out)
    return code, out.getvalue()


class TestLoading:
    def test_load_data_directory(self, data_dir):
        db = Database()
        names = load_data_directory(db, data_dir)
        assert names == ["flow", "users"]
        assert len(db.table("flow")) == 3


class TestExecution:
    def test_simple_query(self, data_dir):
        code, out = run_cli(
            ["SELECT SourceIP FROM flow WHERE NumBytes > 30",
             "--data", str(data_dir)]
        )
        assert code == 0
        assert "10.0.0.1" in out and "10.0.0.2" in out

    def test_subquery_with_strategy(self, data_dir):
        code, out = run_cli(
            ["SELECT f.SourceIP FROM flow f WHERE EXISTS "
             "(SELECT * FROM users u WHERE u.IPAddress = f.SourceIP)",
             "--data", str(data_dir), "--strategy", "gmdj_optimized"]
        )
        assert code == 0
        assert out.count("10.0.0.1") == 2
        assert "10.0.0.2" not in out

    def test_profile_output(self, data_dir):
        code, out = run_cli(
            ["SELECT SourceIP FROM flow", "--data", str(data_dir),
             "--profile"]
        )
        assert code == 0
        assert "rows=" in out and "work=" in out

    def test_explain(self, data_dir):
        code, out = run_cli(
            ["SELECT f.SourceIP FROM flow f WHERE EXISTS "
             "(SELECT * FROM users u WHERE u.IPAddress = f.SourceIP)",
             "--data", str(data_dir), "--explain"]
        )
        assert code == 0
        assert "GMDJ" in out

    def test_index_flag(self, data_dir):
        code, out = run_cli(
            ["SELECT f.SourceIP FROM flow f WHERE EXISTS "
             "(SELECT * FROM users u WHERE u.IPAddress = f.SourceIP)",
             "--data", str(data_dir), "--index", "users.IPAddress",
             "--strategy", "native"]
        )
        assert code == 0
        assert "10.0.0.1" in out

    def test_limit(self, data_dir):
        code, out = run_cli(
            ["SELECT SourceIP FROM flow", "--data", str(data_dir),
             "--limit", "1"]
        )
        assert code == 0
        assert "more rows" in out


class TestErrors:
    def test_sql_error_is_exit_1(self, data_dir):
        code, _ = run_cli(["SELECT FROM nothing", "--data", str(data_dir)])
        assert code == 1

    def test_unknown_table_is_exit_1(self, data_dir):
        code, _ = run_cli(["SELECT x FROM missing", "--data", str(data_dir)])
        assert code == 1

    def test_missing_directory_is_exit_2(self, tmp_path):
        code, _ = run_cli(["SELECT 1 FROM x",
                           "--data", str(tmp_path / "nope")])
        assert code == 2

    def test_empty_directory_is_exit_2(self, tmp_path):
        code, _ = run_cli(["SELECT 1 FROM x", "--data", str(tmp_path)])
        assert code == 2

    def test_bad_index_spec_is_exit_2(self, data_dir):
        code, _ = run_cli(["SELECT SourceIP FROM flow",
                           "--data", str(data_dir), "--index", "flow"])
        assert code == 2


class TestExplainSubcommand:
    SQL = ("SELECT f.SourceIP FROM flow f WHERE EXISTS "
           "(SELECT * FROM users u WHERE u.IPAddress = f.SourceIP)")

    def test_plain_explain_prints_plan(self, data_dir):
        code, out = run_cli(["explain", self.SQL, "--data", str(data_dir)])
        assert code == 0
        assert "GMDJ" in out
        assert "EXPLAIN ANALYZE" not in out

    def test_analyze_annotates_with_trace_and_invariants(self, data_dir):
        code, out = run_cli(["explain", self.SQL, "--data", str(data_dir),
                             "--analyze"])
        assert code == 0
        # Prefix only: REPRO_MODE in the environment appends " mode=...".
        assert "-- EXPLAIN ANALYZE (strategy=auto" in out
        assert "detail_scan" not in out  # spans render by name, not kind
        assert "scan [" in out
        assert "tuples_scanned=" in out
        assert "-- single-scan expectation: users" in out
        assert "all hold" in out

    def test_analyze_single_scan_over_coalesced_detail(self, data_dir):
        sql = ("SELECT f.SourceIP FROM flow f WHERE EXISTS "
               "(SELECT * FROM flow g WHERE g.SourceIP = f.SourceIP "
               "AND g.NumBytes > 60) AND EXISTS "
               "(SELECT * FROM flow h WHERE h.SourceIP = f.SourceIP "
               "AND h.NumBytes < 60)")
        code, out = run_cli(["explain", sql, "--data", str(data_dir),
                             "--analyze", "--strategy", "gmdj_optimized",
                             "--strict-invariants"])
        assert code == 0
        # Both subqueries coalesced: the detail is scanned exactly once.
        # (Vectorized runs add chunk attrs to the scan span, so match the
        # line rather than a fixed attr ordering.)
        scans = [line for line in out.splitlines()
                 if line.lstrip().startswith("scan [")
                 and "relation=flow" in line]
        assert len(scans) == 1

    def test_json_trace_export(self, data_dir):
        import json

        code, out = run_cli(["explain", self.SQL, "--data", str(data_dir),
                             "--analyze", "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["strategy"] == "auto"
        assert payload["invariants"]["violations"] == []
        assert payload["trace"]["spans"][0]["kind"] == "query"

    def test_json_without_analyze_is_static_payload(self, data_dir):
        import json

        code, out = run_cli(["explain", self.SQL, "--data", str(data_dir),
                             "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["strategy"] == "auto"
        assert "plan" in payload and "certificate" in payload
        assert "trace" not in payload  # nothing executed

    def test_sql_error_is_exit_1(self, data_dir):
        code, _ = run_cli(["explain", "SELECT FROM nothing",
                           "--data", str(data_dir)])
        assert code == 1

    def test_missing_directory_is_exit_2(self, tmp_path):
        code, _ = run_cli(["explain", "SELECT 1 FROM x",
                           "--data", str(tmp_path / "nope")])
        assert code == 2


class TestEmitSql:
    def test_emit_sql_outputs_case_aggregation(self, data_dir):
        code, out = run_cli(
            ["SELECT f.SourceIP FROM flow f WHERE EXISTS "
             "(SELECT * FROM users u WHERE u.IPAddress = f.SourceIP)",
             "--data", str(data_dir), "--emit-sql"]
        )
        assert code == 0
        assert "COUNT(CASE WHEN" in out
        assert "LEFT OUTER JOIN" in out


class TestServeSubcommand:
    def test_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port is None
        assert args.workers == 4
        assert args.queue_depth == 64
        assert args.deadline_ms == 30_000.0
        assert args.strategy == "auto"
        assert args.rollup is None

    def test_data_must_be_directory(self, tmp_path):
        code, _ = run_cli(["serve", "--data", str(tmp_path / "missing")])
        assert code == 2

    def test_serve_boots_answers_and_drains(self, data_dir):
        import json
        import re
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--data", str(data_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            # The banner carries the ephemeral port.
            pattern = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")
            port = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                match = pattern.search(line or "")
                if match:
                    port = int(match.group(1))
                    break
            assert port, "serve banner with port never appeared"
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/query",
                data=json.dumps({
                    "sql": "SELECT SourceIP FROM flow WHERE NumBytes > 60",
                }).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read())
            assert payload["rows"] == [["10.0.0.1"]]
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
