"""Unit tests for repro.storage.catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage import Catalog, DataType, Relation


def _table(n: int = 3) -> Relation:
    return Relation.from_columns(
        [("k", DataType.INTEGER), ("v", DataType.INTEGER)],
        [(i, i * 10) for i in range(n)],
    )


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("T", _table())
    return cat


class TestTables:
    def test_create_and_lookup(self, catalog):
        assert len(catalog.table("T")) == 3

    def test_create_sets_name(self, catalog):
        assert catalog.table("T").name == "T"

    def test_duplicate_create_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_table("T", _table())

    def test_missing_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_has_table(self, catalog):
        assert catalog.has_table("T")
        assert not catalog.has_table("U")

    def test_table_names_sorted(self, catalog):
        catalog.create_table("A", _table())
        assert catalog.table_names() == ["A", "T"]

    def test_drop_table(self, catalog):
        catalog.drop_table("T")
        assert not catalog.has_table("T")

    def test_drop_missing_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")

    def test_replace_table_overwrites(self, catalog):
        catalog.replace_table("T", _table(7))
        assert len(catalog.table("T")) == 7


class TestIndexes:
    def test_create_and_fetch_hash_index(self, catalog):
        catalog.create_hash_index("T", ["k"])
        assert catalog.hash_index("T", ["k"]) is not None

    def test_missing_hash_index_is_none(self, catalog):
        assert catalog.hash_index("T", ["k"]) is None

    def test_duplicate_hash_index_rejected(self, catalog):
        catalog.create_hash_index("T", ["k"])
        with pytest.raises(CatalogError):
            catalog.create_hash_index("T", ["k"])

    def test_sorted_index(self, catalog):
        catalog.create_sorted_index("T", "v")
        assert catalog.sorted_index("T", "v") is not None

    def test_indexed_attributes(self, catalog):
        catalog.create_hash_index("T", ["k"])
        catalog.create_sorted_index("T", "v")
        catalog.create_hash_index("T", ["k", "v"])  # composite: not single
        assert catalog.indexed_attributes("T") == {"k", "v"}

    def test_drop_all_indexes(self, catalog):
        catalog.create_hash_index("T", ["k"])
        catalog.create_sorted_index("T", "v")
        assert catalog.drop_all_indexes() == 2
        assert catalog.hash_index("T", ["k"]) is None

    def test_drop_indexes_of_one_table(self, catalog):
        catalog.create_table("U", _table())
        catalog.create_hash_index("T", ["k"])
        catalog.create_hash_index("U", ["k"])
        assert catalog.drop_all_indexes("T") == 1
        assert catalog.hash_index("U", ["k"]) is not None

    def test_replace_table_invalidates_indexes(self, catalog):
        catalog.create_hash_index("T", ["k"])
        catalog.replace_table("T", _table(5))
        assert catalog.hash_index("T", ["k"]) is None

    def test_drop_table_drops_indexes(self, catalog):
        catalog.create_hash_index("T", ["k"])
        catalog.drop_table("T")
        catalog.create_table("T", _table())
        assert catalog.hash_index("T", ["k"]) is None
