"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def texts(text):
    return [token.text for token in tokenize(text)][:-1]  # drop EOF


class TestBasics:
    def test_keywords_uppercased(self):
        assert texts("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        assert texts("Flow customer_Name") == ["Flow", "customer_Name"]

    def test_eof_token_appended(self):
        assert tokenize("x")[-1].kind == "EOF"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].text == "42"
        assert tokens[1].text == "3.14"

    def test_qualified_reference_is_three_tokens(self):
        assert texts("t.col") == ["t", ".", "col"]


class TestStrings:
    def test_string_literal(self):
        token = tokenize("'hello'")[0]
        assert token.kind == "STRING"
        assert token.text == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")


class TestOperators:
    def test_maximal_munch(self):
        assert texts("a <= b <> c >= d") == ["a", "<=", "b", "<>", "c", ">=", "d"]

    def test_bang_equals_normalized(self):
        assert "<>" in texts("a != b")

    def test_arithmetic_symbols(self):
        assert texts("( a + b ) * c / d - e") == [
            "(", "a", "+", "b", ")", "*", "c", "/", "d", "-", "e"
        ]


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a -- a comment\nb") == ["a", "b"]

    def test_comment_at_end(self):
        assert texts("a -- trailing") == ["a"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as info:
            tokenize("a @ b")
        assert info.value.position == 2

    def test_is_keyword_helper(self):
        token = Token("KEYWORD", "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")

    def test_is_op_helper(self):
        token = Token("OP", "(", 0)
        assert token.is_op("(")
