"""Differential proof that batch MQO execution is invisible.

``execute_batch`` must be a pure scheduling change: for every batch,
each member's result is row- AND order-identical to what ``execute``
returns for it alone — across all six Table 1 subquery forms over
NULL-heavy data, with the lint certificates proving one detail scan per
detail table per share group and the runtime trace confirming it.

The seeded-bug test demonstrates the suite has teeth: an over-eager
fingerprint that ignores θ conjuncts referencing only the base relation
(a classic MQO over-merge) makes the differential comparison fail.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, DataType, QueryOptions
from repro.algebra.aggregates import agg
from repro.algebra.expressions import TRUE, Comparison, col, conjuncts_of, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    in_predicate,
    not_in_predicate,
)
from repro.algebra.operators import ScanTable

NO_CACHE = QueryOptions(use_cache=False)

#: NULL-heavy fixed data: NULLs in join keys, outer columns, and the
#: subquery item/aggregate column, so three-valued logic is exercised
#: on every form.
B_ROWS = [(1, 10), (2, None), (3, 30), (None, 40), (2, 20), (None, None)]
R_ROWS = [(1, 5), (1, None), (2, 2), (3, None), (None, 1), (None, None),
          (2, 7), (3, 3)]


def make_db():
    db = Database()
    db.create_table(
        "B", [("K", DataType.INTEGER), ("X", DataType.INTEGER)], B_ROWS
    )
    db.create_table(
        "R", [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], R_ROWS
    )
    return db


def subquery(theta, **kwargs):
    return Subquery(ScanTable("R", "r"), theta, **kwargs)


def form_query(form: str, bound: int) -> NestedSelect:
    """One Table 1 subquery form, parameterized so same-form queries are
    share-compatible (same base, different θ constants)."""
    theta = (col("r.K") == col("b.K")) & (col("r.Y") > lit(bound))
    if form == "exists":
        predicate = Exists(subquery(theta))
    elif form == "not_exists":
        predicate = Exists(subquery(theta), negated=True)
    elif form == "in":
        predicate = in_predicate(
            col("b.X"), subquery(theta, item=col("r.Y"))
        )
    elif form == "not_in":
        predicate = not_in_predicate(
            col("b.X"), subquery(theta, item=col("r.Y"))
        )
    elif form == "quantified":
        predicate = QuantifiedComparison(
            ">", "all", col("b.X"), subquery(theta, item=col("r.Y"))
        )
    elif form == "agg":
        predicate = ScalarComparison(
            ">=", col("b.X"),
            subquery(theta, aggregate=agg("sum", col("r.Y"), "v")),
        )
    else:  # pragma: no cover - guarded by FORMS
        raise AssertionError(form)
    return NestedSelect(ScanTable("B", "b"), predicate)


FORMS = ("exists", "not_exists", "in", "not_in", "quantified", "agg")


class TestSixFormsDifferential:
    @pytest.mark.parametrize("form", FORMS)
    def test_batch_identical_to_sequential(self, form):
        db = make_db()
        queries = [form_query(form, bound) for bound in (0, 2, 4, 6)]
        batch = db.execute_batch(queries, NO_CACHE)
        for query, result in zip(queries, batch):
            expected = db.execute(query, NO_CACHE)
            assert result.schema.names == expected.schema.names
            assert result.rows == expected.rows  # row- AND order-identical

    @pytest.mark.parametrize("form", FORMS)
    def test_group_certificate_single_scan(self, form):
        db = make_db()
        queries = [form_query(form, bound) for bound in (1, 3, 5)]
        batch = db.execute_batch(queries, NO_CACHE)
        groups = [g for g in batch.report.groups if g.coalesced]
        assert groups, f"{form}: expected a coalesced share group"
        for group in groups:
            # Static claim: one detail scan per detail table per group.
            assert group.certificate.scan_counts == {"R": 1}
            assert group.certificate.single_scan_tables == {"R"}
            # Runtime cross-check against the trace's detail_scan spans.
            assert group.runtime_detail_scans == 1
            assert group.certified is True
            assert group.scans_saved == len(group.members) - 1

    def test_mixed_form_mega_batch(self):
        db = make_db()
        queries = [form_query(form, bound)
                   for form in FORMS for bound in (1, 4)]
        batch = db.execute_batch(queries, NO_CACHE)
        assert batch.report.scans_saved >= 1
        for query, result in zip(queries, batch):
            expected = db.execute(query, NO_CACHE)
            assert result.rows == expected.rows

    @pytest.mark.parametrize("mode_options", [
        QueryOptions(use_cache=False, mode="gmdj_vectorized"),
        QueryOptions(use_cache=False, mode="chunked", chunk_budget=4),
        QueryOptions(use_cache=False, mode="partitioned", partitions=2,
                     workers=2),
    ])
    def test_batch_identical_under_execution_modes(self, mode_options):
        db = make_db()
        queries = [form_query("exists", bound) for bound in (0, 3)]
        batch = db.execute_batch(queries, mode_options)
        for query, result in zip(queries, batch):
            expected = db.execute(query, mode_options)
            assert result.rows == expected.rows


# -- property: random compatible/incompatible mixes ---------------------------

small_int = st.one_of(st.none(), st.integers(min_value=0, max_value=6))
comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def batch_members(draw):
    theta = TRUE
    if draw(st.booleans()):
        theta = col("r.K") == col("b.K")
    if draw(st.booleans()):
        extra = Comparison(draw(comparison_ops), col("r.Y"),
                           lit(draw(st.integers(0, 6))))
        theta = extra if theta is TRUE else theta & extra
    form = draw(st.sampled_from(FORMS))
    if form == "exists":
        predicate = Exists(subquery(theta),
                           negated=draw(st.booleans()))
    elif form == "not_exists":
        predicate = Exists(subquery(theta), negated=True)
    elif form == "in":
        predicate = in_predicate(col("b.X"),
                                 subquery(theta, item=col("r.Y")))
    elif form == "not_in":
        predicate = not_in_predicate(col("b.X"),
                                     subquery(theta, item=col("r.Y")))
    elif form == "quantified":
        predicate = QuantifiedComparison(
            draw(comparison_ops), draw(st.sampled_from(["some", "all"])),
            col("b.X"), subquery(theta, item=col("r.Y")),
        )
    else:
        function = draw(st.sampled_from(["count", "sum", "min", "max"]))
        argument = None if function == "count" else col("r.Y")
        predicate = ScalarComparison(
            draw(comparison_ops), col("b.X"),
            subquery(theta, aggregate=agg(function, argument, "v")),
        )
    # Flat members (no subquery) are share-incompatible by construction.
    if draw(st.integers(0, 4)) == 0:
        return NestedSelect(ScanTable("B", "b"),
                            col("b.X") > lit(draw(st.integers(0, 6))))
    return NestedSelect(ScanTable("B", "b"), predicate)


class TestBatchProperty:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        b_rows=st.lists(st.tuples(small_int, small_int), max_size=8),
        r_rows=st.lists(st.tuples(small_int, small_int), max_size=10),
        queries=st.lists(batch_members(), min_size=2, max_size=5),
    )
    def test_batch_bag_equal_to_sequential(self, b_rows, r_rows, queries):
        db = Database()
        db.create_table(
            "B", [("K", DataType.INTEGER), ("X", DataType.INTEGER)], b_rows
        )
        db.create_table(
            "R", [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], r_rows
        )
        batch = db.execute_batch(queries, NO_CACHE)
        for query, result in zip(queries, batch):
            expected = db.execute(query, NO_CACHE)
            assert result.rows == expected.rows
            assert expected.bag_equal(result)


# -- the seeded bug: over-eager fingerprint ignoring base-only conjuncts ------


class TestSeededOverMerge:
    """An MQO merge keyed only on detail-referencing θ conjuncts merges
    blocks that differ in base-only conjuncts — routing one consumer's
    aggregates through another consumer's θ.  The differential suite
    must catch it."""

    @staticmethod
    def buggy_block_key(block):
        def touches_detail(conjunct):
            return any(
                ref.rpartition(".")[0].startswith("mqo_")
                for ref in conjunct.references()
            )

        kept = [c for c in conjuncts_of(block.condition)
                if touches_detail(c)]
        return repr([repr(c) for c in kept])

    def queries(self):
        # Same detail θ; the *base-only* conjunct (b.X > bound) differs.
        def query(bound):
            theta = ((col("r.K") == col("b.K"))
                     & (col("b.X") > lit(bound)))
            return NestedSelect(ScanTable("B", "b"),
                                Exists(subquery(theta)))

        return [query(5), query(35)]

    def test_blocks_do_merge_under_the_bug(self, monkeypatch):
        import repro.gmdj.share as share

        monkeypatch.setattr(share, "block_key", self.buggy_block_key)
        db = make_db()
        from repro.engine.mqo import plan_batch

        plan = plan_batch(self.queries(), db.catalog, NO_CACHE)
        assert len(plan.groups) == 1
        assert plan.groups[0].shared.shared_blocks == 1  # over-merged

    def test_differential_catches_the_over_merge(self, monkeypatch):
        import repro.gmdj.share as share

        monkeypatch.setattr(share, "block_key", self.buggy_block_key)
        db = make_db()
        queries = self.queries()
        batch = db.execute_batch(queries, NO_CACHE)
        diverged = any(
            batch[i].rows != db.execute(queries[i], NO_CACHE).rows
            for i in range(len(queries))
        )
        assert diverged, (
            "the seeded over-merge produced identical results; the "
            "differential suite would not catch this bug class"
        )

    def test_correct_key_passes_the_same_comparison(self):
        db = make_db()
        queries = self.queries()
        batch = db.execute_batch(queries, NO_CACHE)
        for query, result in zip(queries, batch):
            assert result.rows == db.execute(query, NO_CACHE).rows
