"""Property-based equivalence: row kernel vs. columnar batch kernel.

The vectorized mode must be a pure physical-execution change: for any
random NULL-heavy database and any subquery predicate from the paper's
Table 1 repertoire (EXISTS, NOT EXISTS, IN, NOT IN, quantified
SOME/ALL, scalar aggregate comparison), evaluating the translated GMDJ
plan with ``evaluate_plan_vectorized`` — at any chunk size, and also
composed with partitioned/pooled execution — returns exactly the bag
the row interpreter returns.  A companion property pins the columnar
round trip itself.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import agg
from repro.algebra.expressions import TRUE, Comparison, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    in_predicate,
    not_in_predicate,
)
from repro.algebra.operators import ScanTable
from repro.gmdj.modes import evaluate_plan_partitioned, evaluate_plan_vectorized
from repro.storage import Catalog, DataType, Relation
from repro.storage.columnar import ColumnarRelation
from repro.unnesting import subquery_to_gmdj

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_int = st.one_of(st.none(), st.integers(min_value=0, max_value=6))


@st.composite
def databases(draw):
    catalog = Catalog()
    b_rows = draw(st.lists(st.tuples(small_int, small_int), min_size=0,
                           max_size=8))
    r_rows = draw(st.lists(st.tuples(small_int, small_int), min_size=0,
                           max_size=12))
    catalog.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)], b_rows,
    ))
    catalog.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("Y", DataType.INTEGER)], r_rows,
    ))
    return catalog


comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
agg_functions = st.sampled_from(["count", "sum", "avg", "min", "max"])


@st.composite
def inner_conditions(draw, alias="r"):
    conjuncts = []
    if draw(st.booleans()):
        conjuncts.append(col(f"{alias}.K") == col("b.K"))
    if draw(st.booleans()):
        op = draw(comparison_ops)
        conjuncts.append(Comparison(op, col(f"{alias}.Y"),
                                    lit(draw(st.integers(0, 6)))))
    if not conjuncts:
        return TRUE
    predicate = conjuncts[0]
    for extra in conjuncts[1:]:
        predicate = predicate & extra
    return predicate


#: All six Table 1 subquery forms.
FORMS = ("exists", "not_exists", "in", "not_in", "quantified", "agg")


@st.composite
def subquery_leaves(draw, alias="r"):
    theta = draw(inner_conditions(alias))
    kind = draw(st.sampled_from(FORMS))
    subquery = Subquery(ScanTable("R", alias), theta)
    if kind == "exists":
        return Exists(subquery)
    if kind == "not_exists":
        return Exists(subquery, negated=True)
    if kind == "in":
        return in_predicate(
            col("b.X"),
            Subquery(ScanTable("R", alias), theta, item=col(f"{alias}.Y")),
        )
    if kind == "not_in":
        return not_in_predicate(
            col("b.X"),
            Subquery(ScanTable("R", alias), theta, item=col(f"{alias}.Y")),
        )
    if kind == "agg":
        function = draw(agg_functions)
        argument = None if function == "count" else col(f"{alias}.Y")
        return ScalarComparison(
            draw(comparison_ops), col("b.X"),
            Subquery(ScanTable("R", alias), theta,
                     aggregate=agg(function, argument, "v")),
        )
    return QuantifiedComparison(
        draw(comparison_ops), draw(st.sampled_from(["some", "all"])),
        col("b.X"),
        Subquery(ScanTable("R", alias), theta, item=col(f"{alias}.Y")),
    )


@st.composite
def predicates(draw):
    first = draw(subquery_leaves("r1"))
    shape = draw(st.sampled_from(["single", "and", "or", "not"]))
    if shape == "single":
        return first
    if shape == "not":
        from repro.algebra.expressions import Not

        return Not(first)
    second = draw(
        st.one_of(
            subquery_leaves("r2"),
            st.builds(lambda v: col("b.X") > lit(v), st.integers(0, 6)),
        )
    )
    if shape == "and":
        return first & second
    return first | second


class TestVectorizedEquivalence:
    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           optimize=st.booleans(),
           chunk_size=st.integers(min_value=1, max_value=6))
    def test_vectorized_matches_row_kernel(self, catalog, predicate,
                                           optimize, chunk_size):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog, optimize=optimize)
        expected = plan.evaluate(catalog)
        vectorized = evaluate_plan_vectorized(plan, catalog, chunk_size)
        assert expected.bag_equal(vectorized)

    @SETTINGS
    @given(catalog=databases(), predicate=predicates(),
           partitions=st.integers(min_value=1, max_value=4),
           chunk_size=st.integers(min_value=1, max_value=5))
    def test_vectorized_pool_matches_row_kernel(self, catalog, predicate,
                                                partitions, chunk_size):
        query = NestedSelect(ScanTable("B", "b"), predicate)
        plan = subquery_to_gmdj(query, catalog)
        expected = plan.evaluate(catalog)
        pooled = evaluate_plan_partitioned(
            plan, catalog, partitions, workers=2, executor="thread",
            vectorized=True, chunk_size=chunk_size,
        )
        assert expected.bag_equal(pooled)


typed_value = st.one_of(
    st.none(),
    st.integers(min_value=-(2 ** 80), max_value=2 ** 80),
    st.floats(allow_nan=False),
    st.booleans(),
    st.text(max_size=6),
)


class TestColumnarRoundTripProperty:
    @SETTINGS
    @given(
        k=st.lists(st.one_of(st.none(),
                             st.integers(min_value=-10, max_value=10)),
                   max_size=20),
        s=st.lists(st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
                   max_size=20),
    )
    def test_typed_columns_round_trip(self, k, s):
        n = min(len(k), len(s))
        relation = Relation.from_columns(
            [("K", DataType.INTEGER), ("S", DataType.STRING)],
            list(zip(k[:n], s[:n])),
        )
        back = ColumnarRelation.from_relation(relation).to_relation()
        assert back.rows == relation.rows

    @SETTINGS
    @given(values=st.lists(typed_value, max_size=20))
    def test_mistyped_values_round_trip(self, values):
        # Declared INTEGER but carrying arbitrary values, as intermediate
        # relations built with validate=False legitimately do.
        relation = Relation(
            Relation.from_columns([("K", DataType.INTEGER)]).schema,
            [(v,) for v in values], validate=False,
        )
        back = ColumnarRelation.from_relation(relation).to_relation()
        assert back.rows == relation.rows
        for original, restored in zip(relation.rows, back.rows):
            assert type(original[0]) is type(restored[0])
