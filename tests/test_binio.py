"""Binary columnar persistence: NPY-per-column + manifest round trips.

The format contract: ``load_binary(save_binary(r)) `` reproduces the
relation's rows exactly — values, duplicates, order, NULLs, and value
*types* — for every column kind (int64, float64, bool, dictionary
string, object fallback), with or without numpy installed (the
pure-python reader memory-maps the same files), and the loaded relation
arrives with its columnar encoding cache pre-seeded so vectorized
queries scan the mapped buffers.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.engine.database import Database
from repro.errors import ConfigurationError, SchemaError
from repro.storage import (
    Catalog,
    DataType,
    Relation,
    load_binary,
    load_catalog_binary,
    save_binary,
    save_catalog_binary,
)
from repro.storage import binio
from repro.storage.npcolumns import HAVE_NUMPY


def sample_relation(rows=120, seed=9):
    rng = random.Random(seed)

    def maybe(value, rate=0.3):
        return None if rng.random() < rate else value

    return Relation.from_columns(
        [("K", DataType.INTEGER), ("S", DataType.STRING),
         ("F", DataType.FLOAT), ("B", DataType.BOOLEAN)],
        [(maybe(rng.randrange(-50, 50)),
          maybe(rng.choice(["", "aa", "b,b", "ünïcode"])),
          maybe(rng.choice([0.0, -0.0, 1.5, 2.25])),
          maybe(rng.random() < 0.5))
         for _ in range(rows)],
        name="t", qualifier="t",
    )


def assert_round_trip(relation, path):
    back = load_binary(save_binary(relation, path))
    assert back.rows == relation.rows
    for original, restored in zip(relation.rows, back.rows):
        for a, b in zip(original, restored):
            assert type(a) is type(b)
    assert ([f.full_name for f in back.schema.fields]
            == [f.full_name for f in relation.schema.fields])
    assert ([f.dtype for f in back.schema.fields]
            == [f.dtype for f in relation.schema.fields])
    return back


class TestRoundTrip:
    def test_all_kinds(self, tmp_path):
        assert_round_trip(sample_relation(), tmp_path / "t")

    def test_empty_relation(self, tmp_path):
        relation = Relation.from_columns(
            [("K", DataType.INTEGER), ("S", DataType.STRING)], [],
            name="empty")
        assert_round_trip(relation, tmp_path / "empty")

    def test_object_column_big_ints(self, tmp_path):
        relation = Relation.from_columns(
            [("K", DataType.INTEGER)],
            [(2 ** 70,), (None,), (-(2 ** 90),), (3,)], name="big")
        back = assert_round_trip(relation, tmp_path / "big")
        assert back.rows[0][0] == 2 ** 70  # arbitrary precision survives

    def test_mask_free_columns_stay_mask_free(self, tmp_path):
        relation = Relation.from_columns(
            [("K", DataType.INTEGER), ("S", DataType.STRING)],
            [(i, str(i % 3)) for i in range(40)], name="nn")
        path = save_binary(relation, tmp_path / "nn", never_null={0, 1})
        assert not list(path.glob("*.mask.npy"))
        back = load_binary(path)
        assert back.rows == relation.rows
        seeded = back._columnar[frozenset({0, 1})]
        assert all(column.mask_free for column in seeded.columns)

    def test_suffix_appended(self, tmp_path):
        path = save_binary(sample_relation(rows=3), tmp_path / "plain")
        assert path.name == "plain.cols"

    def test_catalog_round_trip(self, tmp_path):
        catalog = Catalog()
        catalog.create_table("a", sample_relation(rows=10, seed=1))
        catalog.create_table("b", sample_relation(rows=7, seed=2))
        written = save_catalog_binary(catalog, tmp_path)
        assert [p.name for p in written] == ["a.cols", "b.cols"]
        back = load_catalog_binary(tmp_path)
        for name in ("a", "b"):
            assert back.table(name).rows == catalog.table(name).rows


class TestLoadedEncodingCache:
    def test_cache_preseeded_and_used(self, tmp_path):
        from repro.obs.metrics import metrics_scope
        from repro.storage.columnar import cached_columnar

        back = load_binary(save_binary(sample_relation(), tmp_path / "t"))
        with metrics_scope() as registry:
            columnar = cached_columnar(back)
            assert registry.counter("columnar.cache_hits").value == 1
            assert registry.counter("columnar.cache_misses").value == 0
        assert columnar.to_relation().rows == back.rows

    def test_vectorized_query_over_loaded_table(self, tmp_path):
        from repro.algebra.expressions import col, lit
        from repro.algebra.nested import Exists, NestedSelect, Subquery
        from repro.algebra.operators import ScanTable
        from repro.gmdj.modes import evaluate_plan_vectorized
        from repro.unnesting import subquery_to_gmdj

        database = Database()
        detail = sample_relation()
        save_binary(detail, tmp_path / "r")
        database.load_binary("R", tmp_path / "r.cols")
        database.create_table("B", [("K", DataType.INTEGER)],
                              [(k,) for k in range(-2, 6)])
        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"),
                            (col("r.K") == col("b.K"))
                            & (col("r.F") > lit(0.0)))),
        )
        plan = subquery_to_gmdj(query, database.catalog, optimize=True)
        expected = plan.evaluate(database.catalog)
        for backend in (["python", "numpy"] if HAVE_NUMPY else ["python"]):
            result = evaluate_plan_vectorized(
                plan, database.catalog, None, backend=backend)
            assert expected.bag_equal(result)


class TestPurePythonReader:
    def test_reader_without_numpy(self, tmp_path, monkeypatch):
        relation = sample_relation()
        path = save_binary(relation, tmp_path / "t")
        monkeypatch.setattr(binio, "HAVE_NUMPY", False)
        back = load_binary(path)
        assert back.rows == relation.rows

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy to cross-read")
    def test_numpy_reads_pure_python_files(self, tmp_path, monkeypatch):
        import numpy as np

        relation = sample_relation()
        monkeypatch.setattr(binio, "HAVE_NUMPY", False)
        path = save_binary(relation, tmp_path / "t")
        values = np.load(path / "c0.npy")
        assert values.dtype == np.int64
        assert len(values) == len(relation)
        mask = np.load(path / "c0.mask.npy")
        decoded = [int(v) if ok else None for v, ok in zip(values, mask)]
        assert decoded == [row[0] for row in relation.rows]


class TestManifestErrors:
    def test_missing_manifest(self, tmp_path):
        (tmp_path / "x.cols").mkdir()
        with pytest.raises(SchemaError, match="manifest"):
            load_binary(tmp_path / "x.cols")

    def test_unknown_format(self, tmp_path):
        directory = tmp_path / "x.cols"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            json.dumps({"format": "other", "version": 1}))
        with pytest.raises(SchemaError, match="format"):
            load_binary(directory)

    def test_unsupported_version(self, tmp_path):
        directory = tmp_path / "x.cols"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            json.dumps({"format": "repro-columnar", "version": 99}))
        with pytest.raises(SchemaError, match="version"):
            load_binary(directory)

    def test_row_count_mismatch(self, tmp_path):
        relation = sample_relation(rows=10)
        path = save_binary(relation, tmp_path / "t")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["rows"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SchemaError, match="99-row"):
            load_binary(path)

    def test_corrupt_npy_magic(self, tmp_path):
        path = save_binary(sample_relation(rows=4), tmp_path / "t")
        target = path / "c0.npy"
        target.write_bytes(b"not an npy file at all")
        with pytest.raises(Exception):
            load_binary(path)


class TestParquetGate:
    def test_parquet_requires_pyarrow(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
            pytest.skip("pyarrow installed; gate cannot fire")
        except ImportError:
            pass
        with pytest.raises(ConfigurationError, match="pyarrow"):
            binio.save_parquet(sample_relation(rows=2), tmp_path / "t.parquet")
        with pytest.raises(ConfigurationError, match="pyarrow"):
            binio.load_parquet(tmp_path / "t.parquet",
                               sample_relation(rows=1).schema)
