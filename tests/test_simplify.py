"""Tests for predicate simplification (constant folding)."""

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import (
    And,
    Coalesce,
    Comparison,
    FALSE,
    IsNull,
    Literal,
    Not,
    Or,
    TRUE,
    TruthLiteral,
    col,
    lit,
)
from repro.algebra.simplify import simplify, simplify_plan
from repro.algebra.truth import Truth
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

SCHEMA = Schema([Field("a", DataType.INTEGER), Field("b", DataType.INTEGER)])


class TestFolding:
    def test_literal_comparison_folds(self):
        folded = simplify(lit(3) < lit(5))
        assert isinstance(folded, TruthLiteral)
        assert folded.value is Truth.TRUE

    def test_null_comparison_folds_to_unknown(self):
        folded = simplify(lit(None) == lit(5))
        assert folded.value is Truth.UNKNOWN

    def test_true_and_p(self):
        predicate = col("a") > lit(1)
        assert simplify(TRUE & predicate).same_as(predicate)
        assert simplify(predicate & TRUE).same_as(predicate)

    def test_false_and_anything(self):
        assert simplify(FALSE & (col("a") > lit(1))).value is Truth.FALSE

    def test_true_or_anything(self):
        assert simplify(TRUE | (col("a") > lit(1))).value is Truth.TRUE

    def test_false_or_p(self):
        predicate = col("a") > lit(1)
        assert simplify(FALSE | predicate).same_as(predicate)

    def test_unknown_not_collapsed_in_and(self):
        unknown = TruthLiteral(Truth.UNKNOWN)
        folded = simplify(And(unknown, col("a") > lit(1)))
        assert isinstance(folded, And)

    def test_not_folds_literal(self):
        assert simplify(Not(TRUE)).value is Truth.FALSE

    def test_not_complements_comparison(self):
        folded = simplify(Not(col("a") < col("b")))
        assert isinstance(folded, Comparison)
        assert folded.op == ">="

    def test_double_not_cancels(self):
        predicate = IsNull(col("a"))
        assert simplify(Not(Not(predicate))).same_as(predicate)

    def test_arithmetic_folds(self):
        folded = simplify(lit(2) + lit(3))
        assert isinstance(folded, Literal) and folded.value == 5

    def test_is_null_of_literal(self):
        assert simplify(IsNull(lit(None))).value is Truth.TRUE
        assert simplify(IsNull(lit(1))).value is Truth.FALSE
        assert simplify(IsNull(lit(1), negated=True)).value is Truth.TRUE

    def test_coalesce_folds(self):
        assert simplify(Coalesce(lit(None), col("a"))).same_as(col("a"))
        folded = simplify(Coalesce(lit(7), col("a")))
        assert isinstance(folded, Literal) and folded.value == 7

    def test_string_numeric_mismatch_left_unfolded(self):
        weird = Comparison(">", lit("x"), lit(1))
        assert isinstance(simplify(weird), Comparison)


class TestSemanticPreservation:
    values = st.one_of(st.none(), st.integers(-3, 3))

    @settings(max_examples=80, deadline=None)
    @given(a=values, b=values, c=st.integers(-3, 3))
    def test_simplified_agrees_on_all_rows(self, a, b, c):
        forms = [
            TRUE & (col("a") > lit(c)),
            (col("a") > lit(c)) | FALSE,
            Not(Not(col("a") <= col("b"))),
            Not((col("a") == col("b")) ),
            And(Or(FALSE, col("a") < lit(c)), TRUE),
            IsNull(col("a")) | (lit(c) >= lit(0)),
        ]
        row = (a, b)
        for predicate in forms:
            before = predicate.bind(SCHEMA)(row)
            after = simplify(predicate).bind(SCHEMA)(row)
            assert before is after, predicate


class TestPlanSimplification:
    def test_select_predicate_simplified(self, kv_catalog):
        from repro.algebra.operators import ScanTable, Select

        plan = Select(ScanTable("B", "b"), TRUE & (col("b.X") > lit(3)))
        simplified = simplify_plan(plan)
        assert isinstance(simplified.predicate, Comparison)
        assert plan.evaluate(kv_catalog).bag_equal(
            simplified.evaluate(kv_catalog)
        )

    def test_gmdj_block_conditions_simplified(self, kv_catalog):
        from repro.algebra.aggregates import count_star
        from repro.algebra.operators import ScanTable
        from repro.gmdj import md

        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c")]],
                  [TRUE & (col("b.K") == col("r.K"))])
        simplified = simplify_plan(plan)
        assert isinstance(simplified.blocks[0].condition, Comparison)
        assert plan.evaluate(kv_catalog).bag_equal(
            simplified.evaluate(kv_catalog)
        )

    def test_optimizer_runs_folding(self, kv_catalog):
        from repro.algebra.nested import Exists, NestedSelect, Subquery
        from repro.algebra.operators import ScanTable
        from repro.unnesting import subquery_to_gmdj

        # An EXISTS block with a TRUE predicate (uncorrelated) folds away
        # its TruthLiteral conjunct during optimization.
        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"), TRUE & (col("r.Y") > lit(3)))),
        )
        expected = query.evaluate(kv_catalog)
        optimized = subquery_to_gmdj(query, kv_catalog, optimize=True)
        assert expected.bag_equal(optimized.evaluate(kv_catalog))
