"""Tests for table statistics and catalog persistence."""

import pytest

from repro.engine.statistics import analyze_catalog, analyze_table
from repro.storage import (
    Catalog,
    DataType,
    Relation,
    load_catalog,
    save_catalog,
)


@pytest.fixture
def relation() -> Relation:
    return Relation.from_columns(
        [("k", DataType.INTEGER), ("v", DataType.STRING)],
        [(1, "a"), (1, "b"), (2, "a"), (None, None), (3, "a")],
    )


class TestAnalyzeTable:
    def test_row_count(self, relation):
        assert analyze_table(relation).row_count == 5

    def test_distinct_counts(self, relation):
        stats = analyze_table(relation)
        assert stats.columns["k"].distinct_count == 3
        assert stats.columns["v"].distinct_count == 2

    def test_null_counts(self, relation):
        stats = analyze_table(relation)
        assert stats.columns["k"].null_count == 1

    def test_min_max(self, relation):
        stats = analyze_table(relation)
        assert stats.columns["k"].minimum == 1
        assert stats.columns["k"].maximum == 3

    def test_matches_per_key(self, relation):
        stats = analyze_table(relation)
        assert stats.matches_per_key("k") == pytest.approx(4 / 3)

    def test_matches_per_key_unknown_column(self, relation):
        stats = analyze_table(relation)
        assert stats.matches_per_key("nope") == 5.0

    def test_equality_selectivity(self, relation):
        stats = analyze_table(relation)
        assert stats.columns["k"].selectivity_of_equality(5) == pytest.approx(
            1 / 3
        )

    def test_empty_table(self):
        empty = Relation.from_columns([("x", DataType.INTEGER)], [])
        stats = analyze_table(empty)
        assert stats.row_count == 0
        assert stats.columns["x"].distinct_count == 0
        assert stats.columns["x"].selectivity_of_equality(0) == 0.0


class TestAnalyzeCatalog:
    def test_all_tables_profiled(self, relation):
        catalog = Catalog()
        catalog.create_table("A", relation)
        catalog.create_table("B", Relation.from_columns(
            [("x", DataType.INTEGER)], [(1,)],
        ))
        stats = analyze_catalog(catalog)
        assert set(stats) == {"A", "B"}
        assert stats["B"].row_count == 1

    def test_statistics_sharpen_cost_model(self):
        # A skewed correlation column (few distinct values) makes native
        # probes expensive; statistics must surface that.
        from repro.algebra.expressions import col
        from repro.algebra.nested import Exists, NestedSelect, Subquery
        from repro.algebra.operators import ScanTable
        from repro.engine.costmodel import estimate_costs

        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER)], [(i,) for i in range(10)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER)], [(i % 2,) for i in range(1000)],
        ))
        catalog.create_hash_index("R", ["K"])
        query = NestedSelect(
            ScanTable("B", "b"),
            Exists(Subquery(ScanTable("R", "r"), col("r.K") == col("b.K"))),
        )
        without = estimate_costs(query, catalog)
        stats = analyze_catalog(catalog)
        with_stats = estimate_costs(query, catalog, statistics=stats)
        assert with_stats.costs["native"] > without.costs["native"]


class TestCatalogPersistence:
    def test_round_trip(self, relation, tmp_path):
        catalog = Catalog()
        catalog.create_table("A", relation)
        catalog.create_table("B", Relation.from_columns(
            [("x", DataType.FLOAT)], [(1.5,), (None,)],
        ))
        save_catalog(catalog, tmp_path / "db")
        loaded = load_catalog(tmp_path / "db")
        assert loaded.table_names() == ["A", "B"]
        assert loaded.table("A").bag_equal(catalog.table("A"))
        assert loaded.table("B").bag_equal(catalog.table("B"))

    def test_save_returns_paths(self, relation, tmp_path):
        catalog = Catalog()
        catalog.create_table("A", relation)
        written = save_catalog(catalog, tmp_path)
        assert [p.name for p in written] == ["A.csv"]

    def test_indexes_not_persisted(self, relation, tmp_path):
        catalog = Catalog()
        catalog.create_table("A", relation)
        catalog.create_hash_index("A", ["k"])
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.hash_index("A", ["k"]) is None
