"""Unit tests for GMDJ coalescing (Proposition 4.1)."""

import pytest

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import Column, Comparison, Literal, col, lit
from repro.algebra.operators import Project, ScanTable, Select
from repro.gmdj import (
    GMDJ,
    coalesce_plan,
    md,
    merge_stacked,
    pull_up_base_selection,
)
from repro.storage import Catalog, DataType, Relation, collect


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER)], [(i,) for i in range(10)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(i % 10, i) for i in range(60)],
    ))
    return cat


def stacked():
    inner = md(ScanTable("B", "b"), ScanTable("R", "r1"),
               [[count_star("c1")]],
               [(col("b.K") == col("r1.K")) & (col("r1.V") < lit(30))])
    return md(inner, ScanTable("R", "r2"), [[count_star("c2")]],
              [(col("b.K") == col("r2.K")) & (col("r2.V") >= lit(30))])


class TestMergeStacked:
    def test_merges_same_table(self, catalog):
        merged = merge_stacked(stacked())
        assert merged is not None
        assert len(merged.blocks) == 2
        assert isinstance(merged.base, ScanTable)

    def test_merged_equivalent(self, catalog):
        original = stacked().evaluate(catalog)
        merged = merge_stacked(stacked()).evaluate(catalog)
        assert original.bag_equal(merged)

    def test_merge_requalifies_conditions(self, catalog):
        merged = merge_stacked(stacked())
        # The moved block's condition must now reference r1, not r2.
        refs = merged.blocks[1].condition.references()
        assert "r2.K" not in refs and "r2.V" not in refs

    def test_merge_requalifies_aggregate_arguments(self, catalog):
        inner = md(ScanTable("B", "b"), ScanTable("R", "r1"),
                   [[count_star("c1")]], [col("b.K") == col("r1.K")])
        outer = md(inner, ScanTable("R", "r2"),
                   [[agg("sum", col("r2.V"), "s2")]],
                   [col("b.K") == col("r2.K")])
        merged = merge_stacked(outer)
        assert merged is not None
        spec = merged.blocks[1].aggregates[0]
        assert spec.argument.references() == {"r1.V"}
        assert outer.evaluate(catalog).bag_equal(merged.evaluate(catalog))

    def test_different_tables_not_merged(self):
        inner = md(ScanTable("B", "b"), ScanTable("R", "r"),
                   [[count_star("c1")]], [col("b.K") == col("r.K")])
        outer = md(inner, ScanTable("B", "b2"), [[count_star("c2")]],
                   [col("b.K") == col("b2.K")])
        assert merge_stacked(outer) is None

    def test_dependent_condition_not_merged(self):
        inner = md(ScanTable("B", "b"), ScanTable("R", "r1"),
                   [[count_star("c1")]], [col("b.K") == col("r1.K")])
        outer = md(inner, ScanTable("R", "r2"), [[count_star("c2")]],
                   [(col("b.K") == col("r2.K")) & (col("c1") > lit(0))])
        assert merge_stacked(outer) is None

    def test_non_gmdj_base_not_merged(self):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c")]], [col("b.K") == col("r.K")])
        assert merge_stacked(plan) is None


class TestPullUpSelection:
    def test_pull_up(self, catalog):
        inner = md(ScanTable("B", "b"), ScanTable("R", "r1"),
                   [[count_star("c1")]], [col("b.K") == col("r1.K")])
        filtered = Select(inner, Comparison(">", Column("c1"), Literal(2)))
        outer = md(filtered, ScanTable("R", "r2"), [[count_star("c2")]],
                   [col("b.K") == col("r2.K")])
        lifted = pull_up_base_selection(outer)
        assert isinstance(lifted, Select)
        assert isinstance(lifted.child, GMDJ)
        assert outer.evaluate(catalog).bag_equal(lifted.evaluate(catalog))

    def test_no_selection_returns_none(self):
        plan = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("c")]], [col("b.K") == col("r.K")])
        assert pull_up_base_selection(plan) is None


class TestCoalescePlan:
    def test_full_pipeline_single_scan(self, catalog):
        # Three stacked GMDJs over R collapse into one: 1 scan of B + 1 of R.
        plan = stacked()
        third = md(plan, ScanTable("R", "r3"), [[count_star("c3")]],
                   [col("b.K") == col("r3.K")])
        coalesced = coalesce_plan(third)
        assert isinstance(coalesced, GMDJ)
        assert len(coalesced.blocks) == 3
        with collect() as stats:
            result = coalesced.evaluate(catalog)
        assert stats.relation_scans == 2
        assert result.bag_equal(third.evaluate(catalog))

    def test_selection_between_gmdjs_pulled_and_merged(self, catalog):
        inner = md(ScanTable("B", "b"), ScanTable("R", "r1"),
                   [[count_star("c1")]], [col("b.K") == col("r1.K")])
        filtered = Select(inner, Comparison(">", Column("c1"), Literal(0)))
        outer = md(filtered, ScanTable("R", "r2"), [[count_star("c2")]],
                   [col("b.K") == col("r2.K")])
        coalesced = coalesce_plan(outer)
        assert isinstance(coalesced, Select)
        assert isinstance(coalesced.child, GMDJ)
        assert len(coalesced.child.blocks) == 2
        assert outer.evaluate(catalog).bag_equal(coalesced.evaluate(catalog))

    def test_stacked_selects_collapse(self, catalog):
        plan = Select(
            Select(ScanTable("B", "b"), col("b.K") > lit(2)),
            col("b.K") < lit(8),
        )
        collapsed = coalesce_plan(plan)
        assert isinstance(collapsed, Select)
        assert isinstance(collapsed.child, ScanTable)
        assert plan.evaluate(catalog).bag_equal(collapsed.evaluate(catalog))

    def test_rewrites_under_project(self, catalog):
        plan = Project(stacked(), ["b.K"])
        coalesced = coalesce_plan(plan)
        assert isinstance(coalesced, Project)
        assert isinstance(coalesced.child, GMDJ)
