"""The serve-tier concurrency lint: one firing and one quiet fixture
per diagnostic code, plus the invariant that the shipped serve/pool
sources stay clean."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_concurrency_paths, lint_concurrency_source
from repro.lint.diagnostics import DIAGNOSTIC_CODES

SRC = Path(__file__).parent.parent / "src" / "repro"


def codes_of(source: str) -> set[str]:
    report = lint_concurrency_source(source, filename="fixture.py")
    return {diagnostic.code for diagnostic in report.diagnostics}


# -- C301: mutation under a reader lock ---------------------------------------

C301_FIRING = """
def refresh(tenant, lock):
    with lock.read():
        tenant.create_table("t", [], [])
"""

C301_OK = """
def refresh(tenant, lock):
    with lock.write():
        tenant.create_table("t", [], [])
"""


def test_c301_mutation_under_read_region():
    assert "C301" in codes_of(C301_FIRING)


def test_c301_quiet_under_writer_lock():
    assert "C301" not in codes_of(C301_OK)


def test_c301_explicit_acquire_release_pair():
    source = """
def refresh(tenant, lock):
    lock.acquire_read()
    tenant.drop_table("t")
    lock.release_read()
"""
    assert "C301" in codes_of(source)


# -- C302: apply_ddl without the writer lock ----------------------------------

C302_FIRING = """
def run_ddl(tenant, statement):
    apply_ddl(tenant, statement)
"""

C302_OK = """
def run_ddl(tenant, lock, statement):
    lock.acquire_write()
    apply_ddl(tenant, statement)
    lock.release_write()
"""


def test_c302_ddl_without_writer_lock():
    assert "C302" in codes_of(C302_FIRING)


def test_c302_quiet_when_writer_lock_held():
    assert "C302" not in codes_of(C302_OK)


def test_c302_apply_helpers_are_the_lock_free_layer():
    source = """
def apply_statement(tenant, statement):
    apply_ddl(tenant, statement)
"""
    assert "C302" not in codes_of(source)


# -- C303: pool submission without ContextVar isolation -----------------------

C303_FIRING = """
def fan_out(pool, fragments):
    def worker(fragment):
        return evaluate(fragment)
    return [pool.submit(worker, f) for f in fragments]
"""

C303_OK_ISOLATOR = """
def fan_out(pool, fragments):
    def worker(fragment):
        with collect() as spans:
            return evaluate(fragment), spans
    return [pool.submit(worker, f) for f in fragments]
"""

C303_OK_COPY_CONTEXT = """
def fan_out(pool, fragments):
    def worker(fragment):
        return evaluate(fragment)
    context = copy_context()
    return [pool.submit(context.run, worker, f) for f in fragments]
"""


def test_c303_unisolated_worker():
    assert "C303" in codes_of(C303_FIRING)


def test_c303_quiet_with_isolator():
    assert "C303" not in codes_of(C303_OK_ISOLATOR)


def test_c303_quiet_with_copied_context():
    assert "C303" not in codes_of(C303_OK_COPY_CONTEXT)


# -- C304: shared mutable capture ---------------------------------------------

C304_FIRING = """
def fan_out(pool, fragments):
    results = []
    def worker(fragment):
        with collect():
            results.append(evaluate(fragment))
    for f in fragments:
        pool.submit(worker, f)
    return results
"""

C304_OK = """
def fan_out(pool, fragments):
    def worker(fragment):
        with collect():
            return evaluate(fragment)
    futures = [pool.submit(worker, f) for f in fragments]
    return [f.result() for f in futures]
"""


def test_c304_shared_mutable_capture():
    assert "C304" in codes_of(C304_FIRING)


def test_c304_quiet_when_results_merge_on_coordinator():
    assert "C304" not in codes_of(C304_OK)


# -- cross-cutting ------------------------------------------------------------

def test_syntax_error_reports_instead_of_raising():
    report = lint_concurrency_source("def broken(:\n", filename="bad.py")
    assert not report.ok


def test_every_concurrency_code_has_a_firing_fixture():
    fired = (
        codes_of(C301_FIRING) | codes_of(C302_FIRING)
        | codes_of(C303_FIRING) | codes_of(C304_FIRING)
    )
    concurrency_codes = {
        code for code in DIAGNOSTIC_CODES if code.startswith("C3")
    }
    assert concurrency_codes <= fired


@pytest.mark.parametrize("target", ["serve", "gmdj/pool.py"])
def test_shipped_serve_tier_is_clean(target):
    report = lint_concurrency_paths([SRC / target])
    assert report.ok, [d.code for d in report.diagnostics]
    assert not report.diagnostics, [
        (d.code, d.path) for d in report.diagnostics
    ]
