"""Tests for the engine: Database façade, planner, executor, reports."""

import pytest
from repro import QueryOptions

from repro.algebra.expressions import col, lit
from repro.algebra.nested import Exists, NestedSelect, Subquery
from repro.algebra.operators import ScanTable, Select
from repro.engine import (
    Database,
    STRATEGIES,
    contains_nested_select,
    execute,
    make_executor,
    profile,
)
from repro.errors import BindError, CatalogError, PlanError
from repro.storage import DataType


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "B", [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(0, 5), (1, 2), (2, 9), (3, 1)],
    )
    database.create_table(
        "R", [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
        [(0, 3), (0, 8), (2, 2), (5, 4)],
    )
    return database


def nested_query():
    return NestedSelect(
        ScanTable("B", "b"),
        Exists(Subquery(ScanTable("R", "r"), col("r.K") == col("b.K"))),
    )


class TestDatabaseDDL:
    def test_create_table(self, db):
        assert len(db.table("B")) == 4

    def test_create_index_and_drop(self, db):
        db.create_index("R", "K")
        assert db.catalog.hash_index("R", ["K"]) is not None
        assert db.drop_indexes() == 1

    def test_register_replaces(self, db):
        from repro.storage import Relation

        db.register("B", Relation.from_columns([("Z", DataType.INTEGER)],
                                                [(1,)]))
        assert db.table("B").schema.names == ("Z",)

    def test_load_csv(self, db, tmp_path):
        from repro.storage import save_csv

        path = tmp_path / "t.csv"
        save_csv(db.table("B"), path)
        loaded = db.load_csv("B2", path)
        assert loaded.bag_equal(db.table("B"))

    def test_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.table("missing")


class TestStrategies:
    @pytest.mark.parametrize("strategy", [s for s in STRATEGIES if s != "auto"])
    def test_every_strategy_agrees(self, db, strategy):
        expected = db.execute(nested_query(), QueryOptions("naive"))
        assert expected.bag_equal(db.execute(nested_query(), QueryOptions(strategy)))

    def test_auto_on_nested(self, db):
        expected = db.execute(nested_query(), QueryOptions("naive"))
        assert expected.bag_equal(db.execute(nested_query(), QueryOptions("auto")))

    def test_auto_on_flat(self, db):
        query = Select(ScanTable("B", "b"), col("b.X") > lit(2))
        assert len(db.execute(query, QueryOptions("auto"))) == 2

    def test_unknown_strategy(self, db):
        with pytest.raises(PlanError):
            db.execute(nested_query(), QueryOptions("quantum"))

    def test_contains_nested_select(self):
        assert contains_nested_select(nested_query())
        assert not contains_nested_select(ScanTable("B", "b"))

    def test_module_level_execute(self, db):
        result = execute(nested_query(), db.catalog, "gmdj")
        assert len(result) == 2


class TestProfile:
    def test_profile_report_fields(self, db):
        report = db.profile(nested_query(), QueryOptions("gmdj"))
        assert report.strategy == "gmdj"
        assert report.row_count == 2
        assert report.elapsed_seconds >= 0
        assert report.pages_read > 0

    def test_profile_counters_isolated(self, db):
        first = db.profile(nested_query(), QueryOptions("gmdj"))
        second = db.profile(nested_query(), QueryOptions("gmdj"))
        assert first.counters["pages_read"] == second.counters["pages_read"]

    def test_summary_string(self, db):
        text = db.profile(nested_query(), QueryOptions("gmdj")).summary()
        assert "gmdj" in text and "rows=" in text

    def test_total_work_positive(self, db):
        assert db.profile(nested_query(), QueryOptions("naive")).total_work > 0

    def test_module_level_profile(self, db):
        report = profile(nested_query(), db.catalog, "native")
        assert report.result is not None


class TestExplain:
    def test_explain_optimized_mentions_gmdj(self, db):
        text = db.explain(nested_query())
        assert "GMDJ" in text or "SelectGMDJ" in text

    def test_explain_plain_strategy_shows_nested(self, db):
        text = db.explain(nested_query(), QueryOptions("naive"))
        assert "NestedSelect" in text

    def test_explain_gmdj(self, db):
        text = db.explain(nested_query(), QueryOptions("gmdj"))
        assert "GMDJ" in text

    def test_explain_unknown_strategy(self, db):
        with pytest.raises(PlanError):
            db.explain(nested_query(), QueryOptions("nope"))


class TestSQLIntegration:
    def test_execute_sql(self, db):
        result = db.execute_sql(
            "SELECT b.K FROM B b WHERE EXISTS "
            "(SELECT * FROM R r WHERE r.K = b.K)"
        )
        assert sorted(row[0] for row in result.rows) == [0, 2]

    def test_execute_sql_strategy(self, db):
        sql = ("SELECT b.K FROM B b WHERE b.X > "
               "(SELECT AVG(r.Y) FROM R r WHERE r.K = b.K)")
        for strategy in ("naive", "unnest_join", "gmdj_optimized"):
            assert sorted(
                row[0] for row in db.execute_sql(sql, QueryOptions(strategy)).rows
            ) == [2]

    def test_profile_sql(self, db):
        report = db.profile_sql("SELECT K FROM B WHERE K > 1")
        assert report.row_count == 2

    def test_sql_bind_error(self, db):
        with pytest.raises(BindError):
            db.execute_sql("SELECT * FROM nonexistent")

    def test_make_executor_returns_callable(self, db):
        runner = make_executor(nested_query(), db.catalog, "gmdj")
        assert len(runner()) == 2
