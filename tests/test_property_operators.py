"""Property-based tests for the flat algebra operators.

Join methods must agree with each other; bag set-operations must satisfy
the multiset identities; GroupBy must match a dictionary-based oracle.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import Comparison, col
from repro.algebra.operators import (
    Difference,
    GroupBy,
    Intersect,
    Join,
    TableValue,
    Union,
)
from repro.storage import Catalog, DataType, Relation

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

small_int = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
pair_rows = st.lists(st.tuples(small_int, small_int), min_size=0, max_size=12)
comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


def rel(rows, qualifier):
    return Relation.from_columns(
        [("k", DataType.INTEGER), ("v", DataType.INTEGER)], rows,
        qualifier=qualifier,
    )


CATALOG = Catalog()


class TestJoinMethodAgreement:
    @SETTINGS
    @given(left=pair_rows, right=pair_rows, op=comparison_ops)
    def test_all_methods_agree_with_equality_present(self, left, right, op):
        condition = (col("a.k") == col("b.k")) & Comparison(
            op, col("a.v"), col("b.v")
        )
        results = []
        for method in ("nested", "hash", "merge"):
            node = Join(TableValue(rel(left, "a")), TableValue(rel(right, "b")),
                        condition, method=method)
            results.append(node.evaluate(CATALOG))
        assert results[0].bag_equal(results[1])
        assert results[0].bag_equal(results[2])

    @SETTINGS
    @given(left=pair_rows, right=pair_rows,
           kind=st.sampled_from(["inner", "left", "semi", "anti"]))
    def test_hash_equals_nested_per_kind(self, left, right, kind):
        condition = col("a.k") == col("b.k")
        hashed = Join(TableValue(rel(left, "a")), TableValue(rel(right, "b")),
                      condition, kind=kind, method="hash").evaluate(CATALOG)
        nested = Join(TableValue(rel(left, "a")), TableValue(rel(right, "b")),
                      condition, kind=kind, method="nested").evaluate(CATALOG)
        assert hashed.bag_equal(nested)

    @SETTINGS
    @given(left=pair_rows, right=pair_rows)
    def test_left_join_covers_all_left_rows(self, left, right):
        condition = col("a.k") == col("b.k")
        joined = Join(TableValue(rel(left, "a")), TableValue(rel(right, "b")),
                      condition, kind="left").evaluate(CATALOG)
        # Every left row appears at least once (padded or matched).
        prefix_counts = Counter(row[:2] for row in joined.rows)
        for row in left:
            assert prefix_counts[row] >= 1

    @SETTINGS
    @given(left=pair_rows, right=pair_rows)
    def test_semi_plus_anti_partitions_left(self, left, right):
        condition = col("a.k") == col("b.k")
        semi = Join(TableValue(rel(left, "a")), TableValue(rel(right, "b")),
                    condition, kind="semi").evaluate(CATALOG)
        anti = Join(TableValue(rel(left, "a")), TableValue(rel(right, "b")),
                    condition, kind="anti").evaluate(CATALOG)
        together = Counter(semi.rows) + Counter(anti.rows)
        assert together == Counter(tuple(row) for row in left)


class TestBagAlgebra:
    @SETTINGS
    @given(a=pair_rows, b=pair_rows)
    def test_union_all_cardinality(self, a, b):
        node = Union(TableValue(rel(a, "a")), TableValue(rel(b, "a")))
        assert len(node.evaluate(CATALOG)) == len(a) + len(b)

    @SETTINGS
    @given(a=pair_rows, b=pair_rows)
    def test_intersect_plus_difference_is_left(self, a, b):
        intersect = Intersect(TableValue(rel(a, "a")),
                              TableValue(rel(b, "a"))).evaluate(CATALOG)
        difference = Difference(TableValue(rel(a, "a")),
                                TableValue(rel(b, "a"))).evaluate(CATALOG)
        combined = Counter(intersect.rows) + Counter(difference.rows)
        assert combined == Counter(tuple(row) for row in a)

    @SETTINGS
    @given(a=pair_rows, b=pair_rows)
    def test_intersect_commutes(self, a, b):
        ab = Intersect(TableValue(rel(a, "a")),
                       TableValue(rel(b, "a"))).evaluate(CATALOG)
        ba = Intersect(TableValue(rel(b, "a")),
                       TableValue(rel(a, "a"))).evaluate(CATALOG)
        assert ab.bag_equal(ba)

    @SETTINGS
    @given(a=pair_rows, b=pair_rows)
    def test_except_distinct_is_set_difference(self, a, b):
        node = Difference(TableValue(rel(a, "a")), TableValue(rel(b, "a")),
                          distinct=True)
        result = node.evaluate(CATALOG)
        expected = set(map(tuple, a)) - set(map(tuple, b))
        assert set(result.rows) == expected
        assert len(result) == len(expected)


class TestGroupByOracle:
    @SETTINGS
    @given(rows=pair_rows)
    def test_groupby_matches_dict_oracle(self, rows):
        node = GroupBy(TableValue(rel(rows, "a")), ["a.k"],
                       [count_star("cnt"), agg("sum", col("a.v"), "s"),
                        agg("min", col("a.v"), "lo")])
        result = node.evaluate(CATALOG)
        oracle = defaultdict(list)
        for k, v in rows:
            oracle[k].append(v)
        expected = set()
        for key, values in oracle.items():
            non_null = [v for v in values if v is not None]
            expected.add((
                key,
                len(values),
                sum(non_null) if non_null else None,
                min(non_null) if non_null else None,
            ))
        assert set(result.rows) == expected
