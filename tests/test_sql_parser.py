"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_sql


class TestSelectClause:
    def test_star(self):
        statement = parse_sql("SELECT * FROM T")
        assert statement.is_star

    def test_items_with_aliases(self):
        statement = parse_sql("SELECT a AS x, b y, c FROM T")
        assert [item.alias for item in statement.items] == ["x", "y", None]

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM T").distinct

    def test_qualified_columns(self):
        statement = parse_sql("SELECT t.a FROM T t")
        ref = statement.items[0].expression
        assert isinstance(ref, ast.ColumnRef)
        assert ref.qualifier == "t" and ref.name == "a"

    def test_aggregates(self):
        statement = parse_sql("SELECT count(*), sum(x) FROM T")
        count, total = (item.expression for item in statement.items)
        assert isinstance(count, ast.FunctionCall) and count.argument is None
        assert isinstance(total, ast.FunctionCall) and total.name == "sum"

    def test_unknown_function_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT median(x) FROM T")

    def test_arithmetic_precedence(self):
        statement = parse_sql("SELECT a + b * c FROM T")
        expr = statement.items[0].expression
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_unary_minus(self):
        statement = parse_sql("SELECT -5 FROM T")
        expr = statement.items[0].expression
        assert isinstance(expr, ast.BinaryOp) and expr.op == "-"


class TestFromClause:
    def test_single_table(self):
        statement = parse_sql("SELECT * FROM Flow")
        assert statement.tables == (ast.TableRef("Flow", None),)

    def test_alias_forms(self):
        statement = parse_sql("SELECT * FROM Flow f, Hours AS h")
        assert statement.tables == (
            ast.TableRef("Flow", "f"), ast.TableRef("Hours", "h")
        )

    def test_missing_from(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a")


class TestWhereClause:
    def test_comparison(self):
        statement = parse_sql("SELECT * FROM T WHERE a >= 3")
        assert isinstance(statement.where, ast.Comparison)
        assert statement.where.op == ">="

    def test_boolean_precedence_and_binds_tighter(self):
        statement = parse_sql("SELECT * FROM T WHERE a=1 OR b=2 AND c=3")
        assert isinstance(statement.where, ast.OrPredicate)
        assert isinstance(statement.where.right, ast.AndPredicate)

    def test_parenthesized_predicate(self):
        statement = parse_sql("SELECT * FROM T WHERE (a=1 OR b=2) AND c=3")
        assert isinstance(statement.where, ast.AndPredicate)
        assert isinstance(statement.where.left, ast.OrPredicate)

    def test_not(self):
        statement = parse_sql("SELECT * FROM T WHERE NOT a = 1")
        assert isinstance(statement.where, ast.NotPredicate)

    def test_is_null(self):
        statement = parse_sql("SELECT * FROM T WHERE a IS NULL")
        assert isinstance(statement.where, ast.IsNullPredicate)
        assert not statement.where.negated

    def test_is_not_null(self):
        statement = parse_sql("SELECT * FROM T WHERE a IS NOT NULL")
        assert statement.where.negated

    def test_between(self):
        statement = parse_sql("SELECT * FROM T WHERE a BETWEEN 1 AND 5")
        assert isinstance(statement.where, ast.BetweenPredicate)

    def test_not_between(self):
        statement = parse_sql("SELECT * FROM T WHERE a NOT BETWEEN 1 AND 5")
        assert statement.where.negated


class TestSubqueries:
    def test_exists(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE EXISTS (SELECT * FROM U WHERE U.k = T.k)"
        )
        assert isinstance(statement.where, ast.ExistsPredicate)

    def test_not_exists(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE NOT EXISTS (SELECT * FROM U)"
        )
        assert isinstance(statement.where, ast.NotPredicate)
        assert isinstance(statement.where.operand, ast.ExistsPredicate)

    def test_in(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE a IN (SELECT b FROM U)"
        )
        assert isinstance(statement.where, ast.InPredicate)
        assert not statement.where.negated

    def test_not_in(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE a NOT IN (SELECT b FROM U)"
        )
        assert statement.where.negated

    def test_quantified_all(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE a > ALL (SELECT b FROM U)"
        )
        assert isinstance(statement.where, ast.Comparison)
        assert statement.where.quantifier == "all"

    def test_any_is_some(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE a = ANY (SELECT b FROM U)"
        )
        assert statement.where.quantifier == "some"

    def test_scalar_subquery(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE a > (SELECT max(b) FROM U)"
        )
        assert isinstance(statement.where.right, ast.ScalarSubquery)
        assert isinstance(statement.where.right.query, ast.SelectStatement)
        assert statement.where.quantifier is None

    def test_scalar_subquery_in_select_list(self):
        statement = parse_sql(
            "SELECT a, (SELECT max(b) FROM U) AS top FROM T"
        )
        assert isinstance(statement.items[1].expression, ast.ScalarSubquery)

    def test_parenthesized_expression_not_subquery(self):
        statement = parse_sql("SELECT * FROM T WHERE a > (b + 1)")
        assert isinstance(statement.where.right, ast.BinaryOp)


class TestTrailingClauses:
    def test_group_by(self):
        statement = parse_sql("SELECT k, count(*) FROM T GROUP BY k")
        assert statement.group_by == (ast.ColumnRef(None, "k"),)

    def test_group_by_qualified(self):
        statement = parse_sql("SELECT t.k FROM T t GROUP BY t.k")
        assert statement.group_by[0].qualifier == "t"

    def test_having(self):
        statement = parse_sql(
            "SELECT k, count(*) FROM T GROUP BY k HAVING count(*) > 2"
        )
        assert statement.having is not None

    def test_order_by(self):
        statement = parse_sql("SELECT k FROM T ORDER BY k DESC, v")
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT k FROM T extra nonsense ,")

    def test_empty_input_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("")


class TestBetweenPrecedence:
    def test_between_and_then_conjunction(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE a BETWEEN 1 AND 5 AND b = 3"
        )
        assert isinstance(statement.where, ast.AndPredicate)
        assert isinstance(statement.where.left, ast.BetweenPredicate)

    def test_between_with_arithmetic_bounds(self):
        statement = parse_sql(
            "SELECT * FROM T WHERE a BETWEEN 1 + 1 AND 5 * 2"
        )
        where = statement.where
        assert isinstance(where, ast.BetweenPredicate)
        assert isinstance(where.low, ast.BinaryOp)
        assert isinstance(where.high, ast.BinaryOp)
