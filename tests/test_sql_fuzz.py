"""Robustness fuzzing of the SQL frontend.

The parser/lexer must reject malformed input with SQLSyntaxError — never
crash with an internal exception — and valid generated queries must bind
and evaluate without internal errors.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ReproError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_sql
from repro.storage import Catalog, DataType, Relation

SETTINGS = settings(max_examples=200, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

_catalog = Catalog()
_catalog.create_table("T", Relation.from_columns(
    [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
    [(1, 2), (3, 4), (None, 5)],
))
_catalog.create_table("U", Relation.from_columns(
    [("a", DataType.INTEGER)], [(1,), (3,)],
))


class TestGarbageInput:
    @SETTINGS
    @given(text=st.text(max_size=80))
    def test_lexer_never_crashes_unexpectedly(self, text):
        try:
            tokenize(text)
        except ReproError:
            pass  # SQLSyntaxError is the contract

    @SETTINGS
    @given(text=st.text(
        alphabet=st.sampled_from(list("SELECTFROMWHERE()*,.<>=' abt01")),
        max_size=60,
    ))
    def test_parser_never_crashes_unexpectedly(self, text):
        try:
            parse_sql(text)
        except ReproError:
            pass
        except RecursionError:
            pass  # pathological nesting depth is acceptable to refuse


@st.composite
def valid_queries(draw):
    column = draw(st.sampled_from(["a", "b", "T.a", "T.b"]))
    value = draw(st.integers(-5, 5))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    shape = draw(st.sampled_from(["plain", "exists", "in", "scalar",
                                  "compound"]))
    if shape == "plain":
        return f"SELECT {column} FROM T WHERE {column} {op} {value}"
    if shape == "exists":
        return (f"SELECT {column} FROM T WHERE EXISTS "
                f"(SELECT * FROM U WHERE U.a {op} T.a)")
    if shape == "in":
        negated = draw(st.sampled_from(["", "NOT "]))
        return (f"SELECT {column} FROM T WHERE T.a {negated}IN "
                f"(SELECT a FROM U)")
    if shape == "scalar":
        func = draw(st.sampled_from(["count(*)", "min(a)", "max(a)"]))
        return (f"SELECT {column} FROM T WHERE T.a {op} "
                f"(SELECT {func} FROM U)")
    return (f"SELECT a FROM T UNION SELECT a FROM U "
            f"EXCEPT SELECT a FROM U WHERE a {op} {value}")


class TestGeneratedQueries:
    @SETTINGS
    @given(sql=valid_queries())
    def test_valid_queries_execute_under_all_strategies(self, sql):
        from repro.engine import execute
        from repro.sql import compile_sql

        plan = compile_sql(sql, _catalog)
        reference = execute(plan, _catalog, "naive")
        for strategy in ("native", "gmdj", "gmdj_optimized"):
            assert reference.bag_equal(execute(plan, _catalog, strategy)), (
                sql, strategy,
            )
