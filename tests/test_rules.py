"""Unit tests for the Table 1 leaf-mapping rules."""

import pytest

from repro.algebra.aggregates import agg
from repro.algebra.expressions import Column, Comparison, Literal, col
from repro.algebra.nested import (
    Exists,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
)
from repro.algebra.operators import ScanTable
from repro.errors import TranslationError
from repro.unnesting.rules import NameGenerator, map_leaf

THETA = col("r.K") == col("b.K")


def sub(item=None, aggregate=None):
    return Subquery(ScanTable("R", "r"), THETA, item=item, aggregate=aggregate)


@pytest.fixture
def names() -> NameGenerator:
    return NameGenerator()


class TestExistsRules:
    def test_exists_maps_to_count_gt_zero(self, names):
        mapping = map_leaf(Exists(sub()), THETA, names)
        assert len(mapping.blocks) == 1
        assert mapping.blocks[0].aggregates[0].is_count_star
        assert isinstance(mapping.replacement, Comparison)
        assert mapping.replacement.op == ">"
        assert isinstance(mapping.replacement.right, Literal)
        assert mapping.replacement.right.value == 0

    def test_not_exists_maps_to_count_eq_zero(self, names):
        mapping = map_leaf(Exists(sub(), negated=True), THETA, names)
        assert mapping.replacement.op == "="

    def test_condition_is_inner_theta(self, names):
        mapping = map_leaf(Exists(sub()), THETA, names)
        assert mapping.blocks[0].condition.same_as(THETA)


class TestScalarRules:
    def test_plain_scalar_counts_theta_and_phi(self, names):
        leaf = ScalarComparison("<", col("b.X"), sub(item=col("r.Y")))
        mapping = map_leaf(leaf, THETA, names)
        assert mapping.replacement.op == "="
        assert mapping.replacement.right.value == 1
        condition_refs = mapping.blocks[0].condition.references()
        assert "b.X" in condition_refs and "r.Y" in condition_refs

    def test_aggregate_scalar_keeps_comparison_outside(self, names):
        leaf = ScalarComparison(
            ">", col("b.X"), sub(aggregate=agg("sum", col("r.Y"), "s"))
        )
        mapping = map_leaf(leaf, THETA, names)
        # Table 1 row 2: the aggregate is computed over theta only and the
        # comparison happens in the replacement condition.
        assert mapping.blocks[0].condition.same_as(THETA)
        assert mapping.blocks[0].aggregates[0].function == "sum"
        assert mapping.replacement.op == ">"
        assert isinstance(mapping.replacement.right, Column)

    def test_scalar_without_item_rejected(self, names):
        with pytest.raises(TranslationError):
            map_leaf(ScalarComparison("=", col("b.X"), sub()), THETA, names)


class TestQuantifiedRules:
    def test_some_single_count_block(self, names):
        leaf = QuantifiedComparison(">", "some", col("b.X"), sub(col("r.Y")))
        mapping = map_leaf(leaf, THETA, names)
        assert len(mapping.blocks) == 1
        assert mapping.replacement.op == ">"

    def test_all_two_count_blocks(self, names):
        leaf = QuantifiedComparison(">", "all", col("b.X"), sub(col("r.Y")))
        mapping = map_leaf(leaf, THETA, names)
        assert len(mapping.blocks) == 2
        # Restrictive block carries theta AND phi; weak block theta only.
        restrictive = mapping.blocks[0].condition.references()
        weak = mapping.blocks[1].condition.references()
        assert "b.X" in restrictive
        assert "b.X" not in weak
        assert mapping.replacement.op == "="
        assert isinstance(mapping.replacement.left, Column)
        assert isinstance(mapping.replacement.right, Column)

    def test_quantified_without_item_rejected(self, names):
        with pytest.raises(TranslationError):
            map_leaf(QuantifiedComparison(">", "some", col("b.X"), sub()),
                     THETA, names)


class TestNameGenerator:
    def test_fresh_names_unique(self):
        names = NameGenerator()
        generated = {names.fresh("cnt") for _ in range(10)}
        assert len(generated) == 10

    def test_output_names_recorded(self, names):
        leaf = QuantifiedComparison(">", "all", col("b.X"), sub(col("r.Y")))
        mapping = map_leaf(leaf, THETA, names)
        assert len(mapping.output_names) == 2
