"""Exhaustive truth tables for SQL three-valued logic."""

import pytest

from repro.algebra.truth import Truth

T, F, U = Truth.TRUE, Truth.FALSE, Truth.UNKNOWN


class TestAnd:
    @pytest.mark.parametrize("a,b,expected", [
        (T, T, T), (T, F, F), (T, U, U),
        (F, T, F), (F, F, F), (F, U, F),
        (U, T, U), (U, F, F), (U, U, U),
    ])
    def test_and_table(self, a, b, expected):
        assert a.and_(b) is expected


class TestOr:
    @pytest.mark.parametrize("a,b,expected", [
        (T, T, T), (T, F, T), (T, U, T),
        (F, T, T), (F, F, F), (F, U, U),
        (U, T, T), (U, F, U), (U, U, U),
    ])
    def test_or_table(self, a, b, expected):
        assert a.or_(b) is expected


class TestNot:
    @pytest.mark.parametrize("a,expected", [(T, F), (F, T), (U, U)])
    def test_not_table(self, a, expected):
        assert a.not_() is expected


class TestTruncation:
    def test_only_true_is_true(self):
        assert T.is_true
        assert not F.is_true
        assert not U.is_true  # where-clause truncation discards UNKNOWN

    def test_of(self):
        assert Truth.of(True) is T
        assert Truth.of(False) is F

    def test_de_morgan_holds_in_3vl(self):
        for a in (T, F, U):
            for b in (T, F, U):
                assert a.and_(b).not_() is a.not_().or_(b.not_())
                assert a.or_(b).not_() is a.not_().and_(b.not_())

    def test_double_negation(self):
        for a in (T, F, U):
            assert a.not_().not_() is a
