"""Unit tests for repro.algebra.aggregates — SQL NULL semantics included."""

import pytest

from repro.algebra.aggregates import (
    AggregateBlock,
    AggregateSpec,
    agg,
    count_star,
)
from repro.algebra.expressions import col
from repro.errors import ExpressionError
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

SCHEMA = Schema([Field("y", DataType.INTEGER, "R")])


def feed(spec: AggregateSpec, values):
    accumulator = spec.make_accumulator()
    for value in values:
        accumulator.add(value)
    return accumulator.result()


class TestCount:
    def test_count_star_counts_everything(self):
        assert feed(count_star(), [1, None, 3]) == 3

    def test_count_star_empty_is_zero(self):
        assert feed(count_star(), []) == 0

    def test_count_value_skips_nulls(self):
        assert feed(agg("count", col("y"), "c"), [1, None, 3]) == 2

    def test_count_value_empty_is_zero(self):
        assert feed(agg("count", col("y"), "c"), []) == 0


class TestSum:
    def test_sum(self):
        assert feed(agg("sum", col("y"), "s"), [1, 2, 3]) == 6

    def test_sum_skips_nulls(self):
        assert feed(agg("sum", col("y"), "s"), [1, None, 3]) == 4

    def test_sum_of_nothing_is_null(self):
        # The footnote-2 pitfall: SUM/MAX of an empty range is NULL, which
        # is why ALL cannot be reduced to an aggregate comparison.
        assert feed(agg("sum", col("y"), "s"), []) is None

    def test_sum_of_all_nulls_is_null(self):
        assert feed(agg("sum", col("y"), "s"), [None, None]) is None


class TestAvg:
    def test_avg(self):
        assert feed(agg("avg", col("y"), "a"), [2, 4]) == 3.0

    def test_avg_skips_nulls(self):
        assert feed(agg("avg", col("y"), "a"), [2, None, 4]) == 3.0

    def test_avg_empty_is_null(self):
        assert feed(agg("avg", col("y"), "a"), []) is None


class TestMinMax:
    def test_min(self):
        assert feed(agg("min", col("y"), "m"), [5, 2, 9]) == 2

    def test_max(self):
        assert feed(agg("max", col("y"), "m"), [5, 2, 9]) == 9

    def test_min_ignores_nulls(self):
        assert feed(agg("min", col("y"), "m"), [None, 4]) == 4

    def test_max_empty_is_null(self):
        assert feed(agg("max", col("y"), "m"), []) is None


class TestSpec:
    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("median", col("y"), "m")

    def test_star_only_for_count(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("sum", None, "s")

    def test_is_count_star(self):
        assert count_star().is_count_star
        assert not agg("count", col("y"), "c").is_count_star

    def test_output_field_count_is_integer(self):
        assert count_star().output_field(SCHEMA).dtype is DataType.INTEGER

    def test_output_field_avg_is_float(self):
        spec = agg("avg", col("y"), "a")
        assert spec.output_field(SCHEMA).dtype is DataType.FLOAT

    def test_output_field_sum_follows_argument(self):
        spec = agg("sum", col("R.y"), "s")
        assert spec.output_field(SCHEMA).dtype is DataType.INTEGER

    def test_output_field_name(self):
        assert count_star("cnt1").output_field(SCHEMA).name == "cnt1"

    def test_repr(self):
        assert "count(*)" in repr(count_star())


class TestAggregateBlock:
    def test_updates_all_specs_together(self):
        block = AggregateBlock(
            [count_star("c"), agg("sum", col("R.y"), "s")], SCHEMA
        )
        state = block.new_state()
        block.update(state, (4,))
        block.update(state, (None,))
        assert AggregateBlock.finalize(state) == (2, 4)

    def test_empty_state(self):
        block = AggregateBlock([count_star("c"), agg("max", col("R.y"), "m")],
                               SCHEMA)
        assert AggregateBlock.finalize(block.new_state()) == (0, None)
