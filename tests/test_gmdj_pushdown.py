"""Unit tests for Theorems 3.3 and 3.4 (base-table push-down rules)."""

import pytest

from repro.algebra.aggregates import count_star
from repro.algebra.expressions import col, lit
from repro.algebra.operators import Join, Project, ScanTable
from repro.gmdj import (
    GMDJ,
    embed_base_in_detail,
    md,
    pull_join_out_of_base,
    push_join_into_base,
)
from repro.storage import Catalog, DataType, Relation


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table("T", Relation.from_columns(
        [("tk", DataType.INTEGER)], [(1,), (2,), (3,)],
    ))
    cat.create_table("B", Relation.from_columns(
        [("bk", DataType.INTEGER), ("tk", DataType.INTEGER)],
        [(10, 1), (11, 2), (12, 2), (13, 9)],
    ))
    cat.create_table("R", Relation.from_columns(
        [("rk", DataType.INTEGER), ("v", DataType.INTEGER)],
        [(10, 1), (10, 2), (11, 3), (14, 4)],
    ))
    return cat


def base_gmdj():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt")]], [col("b.bk") == col("r.rk")])


class TestTheorem34:
    """T ⋈_C MD(B, R, l, θ)  =  MD(T ⋈_C B, R, l, θ)."""

    def test_push_join_into_base_equivalent(self, catalog):
        join = Join(ScanTable("T", "t"), base_gmdj(),
                    col("t.tk") == col("b.tk"))
        pushed = push_join_into_base(join)
        assert isinstance(pushed, GMDJ)
        assert join.evaluate(catalog).bag_equal(pushed.evaluate(catalog))

    def test_pull_join_out_of_base_equivalent(self, catalog):
        pushed = push_join_into_base(
            Join(ScanTable("T", "t"), base_gmdj(), col("t.tk") == col("b.tk"))
        )
        pulled = pull_join_out_of_base(pushed)
        assert isinstance(pulled, Join)
        assert pushed.evaluate(catalog).bag_equal(pulled.evaluate(catalog))

    def test_push_requires_join_over_gmdj(self, catalog):
        join = Join(ScanTable("T", "t"), ScanTable("B", "b"),
                    col("t.tk") == col("b.tk"))
        with pytest.raises(TypeError):
            push_join_into_base(join)

    def test_pull_requires_join_base(self):
        with pytest.raises(TypeError):
            pull_join_out_of_base(base_gmdj())


class TestTheorem33:
    """MD(B, R, l, θ)  =  MD(B, B ⋈_θ R, l, θ′)."""

    def test_embed_base_in_detail_equivalent(self, catalog):
        original = base_gmdj()
        embedded = embed_base_in_detail(base_gmdj(), catalog)
        left = Project(original, ["b.bk", "b.tk", "cnt"]).evaluate(catalog)
        right = Project(embedded, ["b.bk", "b.tk", "cnt"]).evaluate(catalog)
        assert left.bag_equal(right)

    def test_embedded_detail_is_join(self, catalog):
        embedded = embed_base_in_detail(base_gmdj(), catalog)
        assert isinstance(embedded.detail, Join)

    def test_embed_with_theta_condition(self, catalog):
        gmdj = md(ScanTable("B", "b"), ScanTable("R", "r"),
                  [[count_star("cnt")]],
                  [(col("b.bk") == col("r.rk")) & (col("r.v") > lit(1))])
        embedded = embed_base_in_detail(gmdj, catalog)
        left = Project(gmdj, ["b.bk", "cnt"]).evaluate(catalog)
        right = Project(embedded, ["b.bk", "cnt"]).evaluate(catalog)
        assert left.bag_equal(right)
