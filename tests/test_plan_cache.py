"""Tests for the plan/result cache, especially staleness on DDL.

The regression this file pins: a cached result must never be served
after the data it was computed from changed.  Every Database DDL entry
point invalidates, so re-executing after ``register``/``create_table``/
``load_csv``/``create_index``/``drop_indexes`` recomputes.
"""


from repro import Database, DataType, QueryOptions, Relation
from repro.engine.cache import PlanCache, _LRU
from repro.storage import save_csv

SQL = ("SELECT K FROM B b WHERE EXISTS "
       "(SELECT * FROM R r WHERE r.K = b.K)")


def make_db(r_rows) -> Database:
    db = Database()
    db.create_table("B", [("K", DataType.INTEGER)],
                    [(i,) for i in range(4)])
    db.create_table("R", [("K", DataType.INTEGER)], r_rows)
    return db


class TestLRU:
    def test_eviction_order(self):
        lru = _LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")          # refresh: b is now least recent
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru

    def test_capacity_bound(self):
        cache = PlanCache(capacity=3)
        for i in range(10):
            cache.store_translation(("gmdj", str(i)), object())
        assert cache.stats()["translations"] == 3


class TestResultCache:
    def test_repeat_execute_hits(self):
        db = make_db([(1,), (2,)])
        first = db.execute_sql(SQL)
        second = db.execute_sql(SQL)
        assert first.bag_equal(second)
        assert db.cache.stats()["result_hits"] == 1

    def test_hit_returns_equal_but_independent_relation(self):
        db = make_db([(1,)])
        first = db.execute_sql(SQL)
        first.rows.append((99,))  # a caller scribbling on its result
        second = db.execute_sql(SQL)
        assert second.rows == [(1,)]

    def test_different_options_do_not_collide(self):
        db = make_db([(1,), (3,)])
        a = db.execute_sql(SQL, QueryOptions(strategy="naive"))
        b = db.execute_sql(SQL, QueryOptions(strategy="gmdj"))
        assert db.cache.stats()["result_hits"] == 0
        assert a.bag_equal(b)

    def test_use_cache_false_bypasses(self):
        db = make_db([(1,)])
        db.execute_sql(SQL, QueryOptions(use_cache=False))
        db.execute_sql(SQL, QueryOptions(use_cache=False))
        stats = db.cache.stats()
        assert stats["results"] == 0 and stats["result_hits"] == 0

    def test_profiled_runs_never_serve_cached_results(self):
        db = make_db([(1,)])
        db.execute_sql(SQL)  # populate
        report = db.profile_sql(SQL)
        # A cache hit would measure nothing; counters prove real work ran.
        assert report.counters.get("tuples_scanned", 0) > 0


class TestStaleness:
    def test_register_invalidates(self):
        db = make_db([(1,)])
        assert db.execute_sql(SQL).rows == [(1,)]
        db.register("R", Relation.from_columns(
            [("K", DataType.INTEGER)], [(2,), (3,)], name="R",
        ))
        assert sorted(db.execute_sql(SQL).rows) == [(2,), (3,)]

    def test_create_table_invalidates(self):
        db = make_db([(0,), (1,)])
        assert sorted(db.execute_sql(SQL).rows) == [(0,), (1,)]
        db.catalog.drop_table("R")
        db.create_table("R", [("K", DataType.INTEGER)], [(3,)])
        assert db.execute_sql(SQL).rows == [(3,)]

    def test_load_csv_invalidates(self, tmp_path):
        db = make_db([(1,)])
        db.execute_sql(SQL)
        replacement = Relation.from_columns(
            [("K", DataType.INTEGER)], [(2,)], name="R",
        )
        path = tmp_path / "R.csv"
        save_csv(replacement, path)
        db.catalog.drop_table("R")
        db.load_csv("R", path)
        assert db.execute_sql(SQL).rows == [(2,)]

    def test_index_ddl_invalidates(self):
        db = make_db([(1,)])
        db.execute_sql(SQL)
        db.create_index("R", "K")
        assert db.cache.stats()["results"] == 0
        db.execute_sql(SQL)
        db.drop_indexes("R")
        assert db.cache.stats()["results"] == 0

    def test_invalidation_counter_increments(self):
        db = make_db([(1,)])
        before = db.cache.stats()["invalidations"]
        db.drop_indexes()
        assert db.cache.stats()["invalidations"] == before + 1


class TestTranslationCache:
    def test_translation_reused_across_runs(self):
        db = make_db([(1,), (2,)])
        db.execute_sql(SQL, QueryOptions(strategy="gmdj", use_cache=True))
        hits_before = db.cache.stats()["translation_hits"]
        # Same logical plan, different result-cache key (mode differs):
        # translation is shared, evaluation re-runs.
        db.execute_sql(SQL, QueryOptions(strategy="gmdj", partitions=2))
        assert db.cache.stats()["translation_hits"] > hits_before

    def test_translation_keyed_by_strategy_flags(self):
        db = make_db([(1,)])
        db.execute_sql(SQL, QueryOptions(strategy="gmdj"))
        db.execute_sql(SQL, QueryOptions(strategy="gmdj_optimized"))
        # Distinct flag sets must not alias each other's plans.
        assert db.cache.stats()["translations"] == 2


ROLLUP = QueryOptions(strategy="gmdj", rollup="subsume", use_cache=False)
ROLLUP_OFF = QueryOptions(strategy="gmdj", rollup="off", use_cache=False)


class TestRollupStaleness:
    """Every DDL path must invalidate the semantic rollup store too.

    Unlike the exact-key result cache, a stale rollup can poison *other*
    queries through subsumption matching, so these tests assert both the
    store bookkeeping and the actually-served rows after each mutation
    entry point.
    """

    def test_register_invalidates_rollups(self):
        db = make_db([(1,)])
        assert db.execute_sql(SQL, ROLLUP).rows == [(1,)]
        db.register("R", Relation.from_columns(
            [("K", DataType.INTEGER)], [(2,), (3,)], name="R",
        ))
        assert len(db.rollups) == 0
        assert sorted(db.execute_sql(SQL, ROLLUP).rows) == [(2,), (3,)]

    def test_create_table_invalidates_rollups(self):
        db = make_db([(0,), (1,)])
        assert sorted(db.execute_sql(SQL, ROLLUP).rows) == [(0,), (1,)]
        db.catalog.drop_table("R")
        db.create_table("R", [("K", DataType.INTEGER)], [(3,)])
        assert db.execute_sql(SQL, ROLLUP).rows == [(3,)]

    def test_load_csv_invalidates_rollups(self, tmp_path):
        db = make_db([(1,)])
        db.execute_sql(SQL, ROLLUP)
        replacement = Relation.from_columns(
            [("K", DataType.INTEGER)], [(2,)], name="R",
        )
        path = tmp_path / "R.csv"
        save_csv(replacement, path)
        db.catalog.drop_table("R")
        db.load_csv("R", path)
        assert db.execute_sql(SQL, ROLLUP).rows == [(2,)]

    def test_index_ddl_invalidates_rollups(self):
        db = make_db([(1,)])
        db.execute_sql(SQL, ROLLUP)
        assert len(db.rollups) == 1
        db.create_index("R", "K")
        assert len(db.rollups) == 0
        db.execute_sql(SQL, ROLLUP)
        db.drop_indexes("R")
        assert len(db.rollups) == 0

    def test_invalidation_counter_increments(self):
        db = make_db([(1,)])
        before = db.rollups.stats()["invalidations"]
        db.drop_indexes()
        assert db.rollups.stats()["invalidations"] == before + 1

    def test_seeded_invalidation_bug_is_caught_differentially(
            self, monkeypatch):
        # Seeded bug: DDL no longer clears the rollup store.  The
        # differential discipline (warm serve vs. rollup-off direct
        # evaluation) must expose the stale read — this is exactly the
        # check the fuzzer's gmdj_rollup_warm engine automates.
        db = make_db([(1,)])
        monkeypatch.setattr(db.rollups, "invalidate", lambda: None)
        assert db.execute_sql(SQL, ROLLUP).rows == [(1,)]
        db.register("R", Relation.from_columns(
            [("K", DataType.INTEGER)], [(2,), (3,)], name="R",
        ))
        served = db.execute_sql(SQL, ROLLUP)
        direct = db.execute_sql(SQL, ROLLUP_OFF)
        assert served.rows == [(1,)]          # the stale rollup answered
        assert not served.bag_equal(direct)   # ... and the diff catches it
        assert sorted(direct.rows) == [(2,), (3,)]


class TestRollupDefensiveCopies:
    def test_rollup_hit_returns_independent_relation(self):
        db = make_db([(1,)])
        db.execute_sql(SQL, ROLLUP)
        served = db.execute_sql(SQL, ROLLUP)
        served.rows.append((99,))  # a caller scribbling on its result
        again = db.execute_sql(SQL, ROLLUP)
        assert again.rows == [(1,)]

    def test_store_snapshots_the_result(self):
        db = make_db([(1,)])
        first = db.execute_sql(SQL, ROLLUP)
        first.rows.append((99,))  # mutating the relation that was stored
        assert db.execute_sql(SQL, ROLLUP).rows == [(1,)]


class TestConcurrentDDLStaleness:
    """Concurrent reads racing DDL must never observe a stale or torn
    result through the result cache.

    The race the serve tier's reader-writer lock exists to exclude: a
    reader computes a result from the pre-DDL data, the writer lands and
    invalidates, and the reader then *stores* its stale result — so the
    next reader is served rows that no state of the database ever
    contained together with the DDL.  Running readers and the writer
    through :class:`repro.serve.state.Tenant` (read lock around
    lookup + execute + store, write lock around mutate + invalidate)
    makes every observed result one of the database's committed
    snapshots, in commit order.
    """

    def _race(self, options):
        import threading

        from repro.serve.state import Tenant

        db = make_db([(0,)])
        tenant = Tenant(name="t", db=db)
        # Snapshot i = {0..i}: R starts as [(0,)] and the writer appends
        # (1,), (2,), (3,) one committed insert at a time.
        snapshots = [frozenset({(0,)})]
        stop = threading.Event()
        failures = []
        per_thread = []

        def reader():
            seen = []
            try:
                while not stop.is_set():
                    payload = tenant.run_query(SQL, options)
                    seen.append(frozenset(
                        tuple(row) for row in payload["rows"]))
            except Exception as error:  # pragma: no cover - diagnostics
                failures.append(error)
            per_thread.append(seen)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for key in (1, 2, 3):
            tenant.run_ddl(
                {"op": "insert", "name": "R", "rows": [[key]]})
            snapshots.append(snapshots[-1] | {(key,)})
        stop.set()
        for thread in threads:
            thread.join(60)
        assert not failures, failures

        for seen in per_thread:
            for result in seen:
                # Every served result is a committed snapshot — never a
                # mix of two states, never rows that were rolled past.
                assert result in snapshots, f"torn/stale result {result}"
            # And per reader they appear in commit order: once an insert
            # is visible it can never un-happen.
            indices = [snapshots.index(result) for result in seen]
            assert indices == sorted(indices)

        final = tenant.run_query(SQL, options)
        assert frozenset(tuple(row) for row in final["rows"]) == snapshots[-1]

    def test_cached_reads_racing_inserts(self):
        self._race(QueryOptions(strategy="gmdj", use_cache=True))

    def test_uncached_reads_racing_inserts(self):
        self._race(QueryOptions(strategy="gmdj", use_cache=False))
