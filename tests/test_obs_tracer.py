"""Unit tests for the span tracer (repro.obs.tracer)."""

from repro.engine import Database, profile
from repro.obs.tracer import (
    _NOOP_SPAN,
    Span,
    Tracer,
    current_tracer,
    span,
    tracing,
    tracing_enabled,
)
from repro.storage import DataType
from repro.storage.iostats import IOStats, collect


def make_db() -> Database:
    db = Database()
    db.create_table(
        "Flow", [("SourceIP", DataType.STRING),
                 ("NumBytes", DataType.INTEGER)],
        [("10.0.0.1", 100), ("10.0.0.2", 50), ("10.0.0.1", 25)],
    )
    return db


class TestDisabled:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert current_tracer() is None

    def test_span_is_shared_noop_when_disabled(self):
        first = span("a", kind="op")
        second = span("b", kind="op", x=1)
        assert first is _NOOP_SPAN
        assert second is _NOOP_SPAN

    def test_noop_span_is_inert(self):
        with span("a") as sp:
            assert sp.set(rows=3) is sp


class TestSpanTree:
    def test_nesting_builds_tree(self):
        with tracing() as tracer:
            with span("outer", kind="query"):
                with span("inner", kind="gmdj", blocks=2):
                    pass
                with span("sibling", kind="op"):
                    pass
        trace = tracer.trace()
        assert len(trace.roots) == 1
        outer = trace.roots[0]
        assert [child.name for child in outer.children] == [
            "inner", "sibling"]
        assert outer.children[0].attrs == {"blocks": 2}

    def test_set_updates_attrs_mid_span(self):
        with tracing() as tracer:
            with span("g", kind="gmdj") as sp:
                sp.set(output_rows=7)
        assert tracer.trace().roots[0].attrs["output_rows"] == 7

    def test_counters_are_ambient_deltas(self):
        with collect():
            with tracing() as tracer:
                with span("s", kind="op"):
                    IOStats.ambient().record_scan(10)
        counters = tracer.trace().roots[0].counters
        assert counters["tuples_scanned"] == 10
        assert counters["relation_scans"] == 1
        # Zero deltas are dropped.
        assert "index_probes" not in counters

    def test_counters_inclusive_and_self_counters_exclusive(self):
        with collect():
            with tracing() as tracer:
                with span("parent", kind="op"):
                    IOStats.ambient().predicate_evals += 3
                    with span("child", kind="op"):
                        IOStats.ambient().predicate_evals += 5
        parent = tracer.trace().roots[0]
        assert parent.counters["predicate_evals"] == 8
        assert parent.self_counters() == {"predicate_evals": 3}

    def test_collect_swap_inside_span_does_not_corrupt_delta(self):
        # The span diffs the stats object that was ambient at entry, so
        # a collect() installed mid-span hides the inner work instead of
        # poisoning the delta with an unrelated baseline.
        with collect():
            with tracing() as tracer:
                with span("s", kind="op"):
                    IOStats.ambient().predicate_evals += 2
                    with collect():
                        IOStats.ambient().predicate_evals += 100
                    IOStats.ambient().predicate_evals += 1
        assert tracer.trace().roots[0].counters == {"predicate_evals": 3}

    def test_elapsed_is_recorded(self):
        with tracing() as tracer:
            with span("s"):
                pass
        assert tracer.trace().roots[0].elapsed_seconds >= 0.0


class TestTraceHelpers:
    def build(self) -> Tracer:
        with tracing() as tracer:
            with span("q", kind="query"):
                with span("GMDJ", kind="gmdj", relation="R"):
                    with span("scan", kind="detail_scan", rows=4):
                        pass
        return tracer

    def test_walk_is_depth_first(self):
        trace = self.build().trace()
        assert [sp.name for sp in trace.walk()] == ["q", "GMDJ", "scan"]

    def test_find_by_kind_and_name(self):
        trace = self.build().trace()
        assert len(trace.find(kind="detail_scan")) == 1
        assert trace.find(name="GMDJ")[0].attrs == {"relation": "R"}
        assert trace.find(kind="nope") == []

    def test_to_json_shape(self):
        payload = self.build().trace().to_json()
        root = payload["spans"][0]
        assert root["name"] == "q"
        assert root["children"][0]["children"][0]["attrs"] == {"rows": 4}
        assert "elapsed_ms" in root and "counters" in root

    def test_render_shows_names_attrs_and_counters(self):
        with collect():
            with tracing() as tracer:
                with span("GMDJ", kind="gmdj", relation="R"):
                    IOStats.ambient().record_scan(5)
        text = tracer.trace().render()
        assert "GMDJ [relation=R]" in text
        assert "tuples_scanned=5" in text
        assert "ms)" in text

    def test_render_can_hide_counters(self):
        with collect():
            with tracing() as tracer:
                with span("s"):
                    IOStats.ambient().record_scan(5)
        assert "tuples_scanned" not in tracer.trace().render(counters=False)


class TestTracingContext:
    def test_installs_and_removes(self):
        with tracing() as tracer:
            assert tracing_enabled()
            assert current_tracer() is tracer
        assert not tracing_enabled()

    def test_restores_previous_tracer(self):
        with tracing() as outer:
            with tracing() as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_accepts_existing_tracer(self):
        mine = Tracer()
        with tracing(mine) as tracer:
            assert tracer is mine

    def test_abandoned_child_span_tolerated(self):
        # A span exited out of order (e.g. a generator abandoned
        # mid-iteration) must not corrupt the stack.
        with tracing() as tracer:
            outer = span("outer")
            outer.__enter__()
            inner = span("inner")
            inner.__enter__()
            outer.__exit__(None, None, None)  # inner never closed
            with span("next"):
                pass
        names = [sp.name for sp in tracer.trace().roots]
        assert names == ["outer", "next"]


class TestProfileIntegration:
    SQL = ("SELECT f.SourceIP FROM Flow f WHERE EXISTS "
           "(SELECT * FROM Flow g WHERE g.NumBytes > f.NumBytes)")

    def test_profile_without_trace_has_none(self):
        db = make_db()
        report = profile(db.sql(self.SQL), db.catalog, "gmdj_optimized")
        assert report.trace is None

    def test_profile_with_trace_attaches_query_span(self):
        db = make_db()
        report = profile(db.sql(self.SQL), db.catalog, "gmdj_optimized",
                         trace=True)
        assert report.trace is not None
        queries = report.trace.find(kind="query")
        assert len(queries) == 1
        assert queries[0].attrs["strategy"] == "gmdj_optimized"
        assert report.trace.find(kind="detail_scan")

    def test_tracing_not_leaked_after_profile(self):
        db = make_db()
        profile(db.sql(self.SQL), db.catalog, "auto", trace=True)
        assert not tracing_enabled()


class TestSpanRepr:
    def test_repr_mentions_name_and_children(self):
        with tracing() as tracer:
            with span("x"):
                with span("y"):
                    pass
        root = tracer.trace().roots[0]
        assert repr(root) == "Span('x', kind='op', children=1)"
        assert isinstance(root, Span)
