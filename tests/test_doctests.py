"""Run the doctests embedded in module documentation."""

import doctest
import importlib

import pytest

MODULES = [
    "repro.engine.database",
    "repro.engine.statistics",
    "repro.storage.iostats",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "expected at least one doctest"
