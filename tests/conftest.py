"""Shared fixtures: small catalogs used across the test suite.

Also registers hypothesis profiles so local runs and CI pick sensible
defaults without every test file repeating ``settings(...)``:

* ``default`` — modest example counts, no deadline (property tests here
  evaluate whole query plans, so per-example timing is noisy), and
  ``print_blob=True`` so a failing run prints the ``@reproduce_failure``
  blob to pin it.
* ``ci`` — same, but derandomized so CI failures are reproducible
  without blob archaeology.

Select with ``HYPOTHESIS_PROFILE=ci pytest`` (defaults to ``default``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.storage import Catalog, DataType, Relation

settings.register_profile(
    "default", deadline=None, print_blob=True,
)
settings.register_profile(
    "ci", deadline=None, print_blob=True, derandomize=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def figure1_catalog() -> Catalog:
    """The exact Hours/Flow tables of the paper's Figure 1."""
    catalog = Catalog()
    catalog.create_table("Hours", Relation.from_columns(
        [("HourDsc", DataType.INTEGER), ("StartInterval", DataType.INTEGER),
         ("EndInterval", DataType.INTEGER)],
        [(1, 0, 60), (2, 61, 120), (3, 121, 180)],
    ))
    catalog.create_table("Flow", Relation.from_columns(
        [("StartTime", DataType.INTEGER), ("Protocol", DataType.STRING),
         ("NumBytes", DataType.INTEGER)],
        [(43, "HTTP", 12), (86, "HTTP", 36), (99, "FTP", 48),
         (132, "HTTP", 24), (156, "HTTP", 24), (161, "FTP", 48)],
    ))
    return catalog


@pytest.fixture
def kv_catalog() -> Catalog:
    """B(K, X) / R(K, Y) with NULLs — the generic subquery playground."""
    catalog = Catalog()
    catalog.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(0, 5), (1, None), (2, 9), (3, 1), (4, 7), (5, 3)],
    ))
    catalog.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("Y", DataType.INTEGER)],
        [(0, 3), (0, 8), (1, 4), (2, None), (2, 2), (4, 7), (4, 7),
         (6, 1)],
    ))
    return catalog


def make_catalog(**tables) -> Catalog:
    """Build a catalog from ``name=(columns, rows)`` keyword pairs."""
    catalog = Catalog()
    for name, (columns, rows) in tables.items():
        catalog.create_table(name, Relation.from_columns(columns, rows))
    return catalog
