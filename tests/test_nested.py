"""Unit tests for repro.algebra.nested (tuple-iteration semantics)."""

import pytest

from repro.algebra.aggregates import agg
from repro.algebra.expressions import TRUE, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    collect_subquery_predicates,
    env_with_row,
    free_references,
    has_subqueries,
    in_predicate,
    not_in_predicate,
    substitute_free,
)
from repro.algebra.operators import ScanTable
from repro.algebra.truth import Truth
from repro.errors import CardinalityError, UnknownAttributeError
from repro.storage import Catalog, DataType
from repro.storage.schema import Field, Schema

B_SCHEMA = Schema([Field("K", DataType.INTEGER, "b"),
                   Field("X", DataType.INTEGER, "b")])


def b_scan():
    return ScanTable("B", "b")


def r_sub(predicate=None, item=None, aggregate=None):
    return Subquery(ScanTable("R", "r"),
                    predicate if predicate is not None
                    else col("r.K") == col("b.K"),
                    item=item, aggregate=aggregate)


class TestEnvironment:
    def test_env_with_row_binds_full_and_bare(self):
        env = env_with_row({}, B_SCHEMA, (1, 5))
        assert env["b.K"] == 1
        assert env["K"] == 1

    def test_inner_shadows_outer(self):
        outer = env_with_row({}, B_SCHEMA, (1, 5))
        inner_schema = Schema([Field("K", DataType.INTEGER, "r")])
        env = env_with_row(outer, inner_schema, (9,))
        assert env["K"] == 9
        assert env["b.K"] == 1

    def test_substitute_free_replaces_outer_refs(self):
        local = Schema([Field("Y", DataType.INTEGER, "r")])
        env = {"b.K": 7}
        closed = substitute_free(col("r.Y") == col("b.K"), local, env)
        assert closed.bind(local)((7,)) is Truth.TRUE

    def test_substitute_free_unresolved_raises(self):
        local = Schema([Field("Y", DataType.INTEGER, "r")])
        with pytest.raises(UnknownAttributeError):
            substitute_free(col("z.Q") == lit(1), local, {})

    def test_local_refs_left_alone(self):
        local = Schema([Field("Y", DataType.INTEGER, "r")])
        expr = substitute_free(col("r.Y"), local, {"r.Y": 99})
        assert expr.references() == {"r.Y"}


@pytest.fixture
def catalog(kv_catalog) -> Catalog:
    return kv_catalog


class TestExists:
    def test_exists_keeps_matching(self, catalog):
        query = NestedSelect(b_scan(), Exists(r_sub()))
        result = query.evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [0, 1, 2, 4]

    def test_not_exists(self, catalog):
        query = NestedSelect(b_scan(), Exists(r_sub(), negated=True))
        result = query.evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [3, 5]

    def test_exists_uncorrelated_nonempty(self, catalog):
        query = NestedSelect(b_scan(), Exists(Subquery(ScanTable("R", "r"),
                                                       TRUE)))
        assert len(query.evaluate(catalog)) == 6

    def test_exists_uncorrelated_empty(self, catalog):
        query = NestedSelect(
            b_scan(),
            Exists(Subquery(ScanTable("R", "r"), col("r.Y") > lit(999))),
        )
        assert len(query.evaluate(catalog)) == 0


class TestScalarComparison:
    def test_aggregate_comparison(self, catalog):
        # b.X > sum(r.Y where r.K = b.K)
        query = NestedSelect(
            b_scan(),
            ScalarComparison(">", col("b.X"),
                             r_sub(aggregate=agg("sum", col("r.Y"), "s"))),
        )
        result = query.evaluate(catalog)
        # B=(0,5): sum=11 no; (2,9): sum=2 yes; (4,7): sum=14 no;
        # (3,1),(5,3): sum empty = NULL -> UNKNOWN -> dropped.
        assert sorted(row[0] for row in result.rows) == [2]

    def test_count_on_empty_group_is_zero(self, catalog):
        query = NestedSelect(
            b_scan(),
            ScalarComparison("=", lit(0),
                             r_sub(aggregate=agg("count", col("r.Y"), "c"))),
        )
        result = query.evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [3, 5]

    def test_scalar_multiple_rows_raises(self, catalog):
        query = NestedSelect(
            b_scan(),
            ScalarComparison("=", col("b.X"), r_sub(item=col("r.Y"))),
        )
        with pytest.raises(CardinalityError):
            query.evaluate(catalog)

    def test_scalar_empty_is_unknown(self, catalog):
        sub = Subquery(ScanTable("R", "r"),
                       (col("r.K") == col("b.K")) & (col("r.Y") > lit(999)),
                       item=col("r.Y"))
        query = NestedSelect(b_scan(),
                             ScalarComparison("=", col("b.X"), sub))
        assert len(query.evaluate(catalog)) == 0


class TestQuantified:
    def test_some_true_on_any_match(self, catalog):
        query = NestedSelect(
            b_scan(),
            QuantifiedComparison(">", "some", col("b.X"), r_sub(item=col("r.Y"))),
        )
        result = query.evaluate(catalog)
        # (0,5)>3? yes. (2,9)>2 yes. (4,7)>7 no (=7 twice). (1,NULL) unknown.
        assert sorted(row[0] for row in result.rows) == [0, 2]

    def test_all_true_on_empty_range(self, catalog):
        query = NestedSelect(
            b_scan(),
            QuantifiedComparison(">", "all", col("b.X"), r_sub(item=col("r.Y"))),
        )
        result = query.evaluate(catalog)
        # Empty ranges (K=3,5) pass; (0,5): 5>3 and 5>8? no; (2,9): 9>NULL
        # unknown -> dropped; (4,7): 7>7 no; (1,NULL): unknown.
        assert sorted(row[0] for row in result.rows) == [3, 5]

    def test_all_with_null_item_is_unknown(self, catalog):
        # K=2 has Y values {NULL, 2}: 9 > 2 true, 9 > NULL unknown -> UNKNOWN.
        query = NestedSelect(
            ScanTable("B", "b"),
            QuantifiedComparison(">", "all", col("b.X"), r_sub(item=col("r.Y"))),
        )
        kept = {row[0] for row in query.evaluate(catalog).rows}
        assert 2 not in kept

    def test_in_predicate_sugar(self, catalog):
        query = NestedSelect(
            b_scan(),
            in_predicate(col("b.X"), Subquery(ScanTable("R", "r"), TRUE,
                                              item=col("r.Y"))),
        )
        result = query.evaluate(catalog)
        # X values 1, 7, 3 appear among R.Y = {3, 8, 4, NULL, 2, 7, 7, 1}.
        assert sorted(row[0] for row in result.rows) == [3, 4, 5]

    def test_not_in_with_nulls_is_empty(self, catalog):
        # R.Y contains NULL, so NOT IN over it can never be TRUE for
        # non-matching values — the classic SQL trap.
        query = NestedSelect(
            b_scan(),
            not_in_predicate(col("b.X"), Subquery(ScanTable("R", "r"), TRUE,
                                                  item=col("r.Y"))),
        )
        assert len(query.evaluate(catalog)) == 0

    def test_bad_quantifier_rejected(self):
        with pytest.raises(Exception):
            QuantifiedComparison("=", "most", col("b.X"), r_sub(item=col("r.Y")))


class TestPredicateTreeUtilities:
    def test_collect_subquery_predicates(self):
        predicate = Exists(r_sub()) & (col("b.X") > lit(1))
        assert len(collect_subquery_predicates(predicate)) == 1

    def test_has_subqueries(self):
        assert has_subqueries(Exists(r_sub()))
        assert not has_subqueries(col("b.X") > lit(1))

    def test_free_references(self, catalog):
        sub = r_sub()
        assert free_references(sub, catalog) == {"b.K"}

    def test_free_references_nested(self, catalog):
        inner = Subquery(ScanTable("R", "r2"),
                         (col("r2.K") == col("r.K"))
                         & (col("r2.Y") == col("b.X")))
        outer = Subquery(ScanTable("R", "r"),
                         (col("r.K") == col("b.K")) & Exists(inner))
        frees = free_references(outer, catalog)
        assert "b.K" in frees
        assert "b.X" in frees
        assert "r.K" not in frees


class TestCompositePredicates:
    def test_conjunction_of_subqueries(self, catalog):
        predicate = Exists(r_sub()) & (col("b.X") > lit(4))
        result = NestedSelect(b_scan(), predicate).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [0, 2, 4]

    def test_disjunction_with_subquery(self, catalog):
        predicate = Exists(r_sub(), negated=True) | (col("b.X") > lit(8))
        result = NestedSelect(b_scan(), predicate).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [2, 3, 5]

    def test_nested_select_composes_with_flat_child(self, catalog):
        from repro.algebra.operators import Select

        child = Select(b_scan(), col("b.X") > lit(2))
        result = NestedSelect(child, Exists(r_sub())).evaluate(catalog)
        assert sorted(row[0] for row in result.rows) == [0, 2, 4]
