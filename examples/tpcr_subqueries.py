"""SQL subqueries over a TPC-R style warehouse, across all strategies.

Generates a scaled-down TPC-R database (the paper derived its test data
from TPC-R dbgen) and runs a small decision-support workload of
subquery-heavy SQL through every evaluation strategy, reporting time and
machine-independent work for each — a miniature of the paper's Section 5.

Run:  python examples/tpcr_subqueries.py
"""

from repro import QueryOptions, Database
from repro.data import TpcrSizes, build_tpcr_catalog

QUERIES = {
    "customers with a big order (EXISTS)": (
        "SELECT c.custkey, c.name FROM customer c WHERE EXISTS "
        "(SELECT * FROM orders o WHERE o.custkey = c.custkey AND "
        "o.totalprice > 400000)"
    ),
    "customers without urgent orders (NOT EXISTS)": (
        "SELECT c.custkey FROM customer c WHERE NOT EXISTS "
        "(SELECT * FROM orders o WHERE o.custkey = c.custkey AND "
        "o.orderpriority = '1-URGENT')"
    ),
    "above-average balance per segment (scalar aggregate)": (
        "SELECT c.custkey, c.acctbal FROM customer c WHERE c.acctbal > "
        "(SELECT AVG(d.acctbal) FROM customer d WHERE "
        "d.mktsegment = c.mktsegment)"
    ),
    "most expensive part of its brand (ALL)": (
        "SELECT p.partkey FROM part p WHERE p.retailprice >= ALL "
        "(SELECT q.retailprice FROM part q WHERE q.brand = p.brand)"
    ),
    "suppliers in customer nations (IN)": (
        "SELECT s.suppkey, s.name FROM supplier s WHERE s.nationkey IN "
        "(SELECT c.nationkey FROM customer c WHERE c.acctbal > 9000)"
    ),
}

STRATEGIES = ("naive", "native", "unnest_join", "gmdj", "gmdj_optimized")


def main() -> None:
    db = Database()
    catalog = build_tpcr_catalog(
        TpcrSizes(customers=400, orders=6000, lineitems=8000, parts=800,
                  suppliers=80)
    )
    for name in catalog.table_names():
        db.register(name, catalog.table(name))
    # Re-create the indexes dropped by re-registration.
    db.create_index("orders", "custkey")
    db.create_index("customer", "custkey")
    db.create_index("part", "partkey")

    for title, sql in QUERIES.items():
        print(f"-- {title}")
        print(f"   {sql}")
        reference = None
        for strategy in STRATEGIES:
            report = db.profile_sql(sql, QueryOptions(strategy))
            if reference is None:
                reference = report.result
            else:
                assert reference.bag_equal(report.result), (
                    f"{strategy} disagrees on {title!r}"
                )
            print(f"   {report.summary()}")
        print()


if __name__ == "__main__":
    main()
