"""Cost-based strategy selection — the paper's concluding proposal.

"One could introduce additional alternate correlation removal rules …
allowing the cost-based query optimizer to select between a rich set of
alternatives (joins, set-division and GMDJs) for the subquery
evaluation."  This example builds three workloads with very different
winning strategies, shows what the cost model picks for each, and then
measures all strategies to check the pick.

Run:  python examples/cost_based_planning.py
"""

from repro import QueryOptions, Database, col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    Subquery,
)
from repro.algebra.operators import ScanTable
from repro.data import TpcrSizes, build_tpcr_catalog
from repro.engine.costmodel import choose_strategy, estimate_costs
from repro.engine.statistics import analyze_catalog

CANDIDATES = ("naive", "native", "unnest_join", "gmdj", "gmdj_optimized")


def indexed_exists(db):
    """Small outer block, indexed equality correlation → native territory."""
    return NestedSelect(
        ScanTable("customer", "c"),
        Exists(Subquery(ScanTable("orders", "o"),
                        (col("o.custkey") == col("c.custkey"))
                        & (col("o.totalprice") > lit(400000.0)))),
    )


def diamond_all(db):
    """<>-correlated ALL → completion-optimized GMDJ territory."""
    return NestedSelect(
        ScanTable("part", "p"),
        QuantifiedComparison(
            ">=", "all", col("p.retailprice"),
            Subquery(ScanTable("part", "q"),
                     col("q.partkey") != col("p.partkey"),
                     item=col("q.retailprice")),
        ),
    )


def triple_subquery(db):
    """Three subqueries over one fact table → coalesced GMDJ territory."""
    def sub(alias, low):
        return Subquery(ScanTable("orders", alias),
                        (col(f"{alias}.custkey") == col("c.custkey"))
                        & (col(f"{alias}.totalprice") > lit(low)))

    return NestedSelect(
        ScanTable("customer", "c"),
        Exists(sub("o1", 100000.0))
        & Exists(sub("o2", 300000.0))
        & Exists(sub("o3", 440000.0), negated=True),
    )


def main() -> None:
    db = Database()
    catalog = build_tpcr_catalog(TpcrSizes(
        customers=150, orders=4000, lineitems=100, parts=400, suppliers=20
    ))
    for name in catalog.table_names():
        db.register(name, catalog.table(name))
    db.create_index("orders", "custkey")
    statistics = analyze_catalog(db.catalog)

    workloads = {
        "indexed EXISTS": indexed_exists(db),
        "ALL with <> correlation": diamond_all(db),
        "three subqueries, one table": triple_subquery(db),
    }
    for title, query in workloads.items():
        print(f"-- {title}")
        estimate = estimate_costs(query, db.catalog, statistics=statistics)
        for strategy in sorted(estimate.costs, key=estimate.costs.get):
            print(f"   estimated {strategy:16s} {estimate.costs[strategy]:14.0f}")
        chosen = choose_strategy(query, db.catalog)
        print(f"   cost model picks: {chosen}")
        reference = None
        best_measured = None
        for strategy in CANDIDATES:
            if strategy == "unnest_join" and title.startswith("ALL"):
                print("   unnest_join      (skipped: O(n^2) on this shape)")
                continue
            report = db.profile(query, QueryOptions(strategy))
            if reference is None:
                reference = report.result
            else:
                assert reference.bag_equal(report.result), strategy
            if best_measured is None or report.total_work < best_measured[1]:
                best_measured = (strategy, report.total_work)
            print(f"   {report.summary()}")
        print(f"   measured best:    {best_measured[0]}\n")


if __name__ == "__main__":
    main()
