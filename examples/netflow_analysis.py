"""IP-flow analysis: the paper's motivating examples on generated data.

Reproduces, on a synthetic IP-flow warehouse (Section 2.3 schema):

* **Example 2.2** — "for each hour in which there exists traffic to
  DestIP 167.167.167.0, what fraction of the total traffic is due to web
  traffic?" — a nested base-values table feeding a GMDJ aggregation.
* **Example 2.3 / 4.1** — source IPs with traffic to 168.168.168.0 but
  none to 167.167.167.0 or 169.169.169.0, plus their total sent/received
  bytes; three subqueries over the fact table that the optimizer
  coalesces into a single scan.

Run:  python examples/netflow_analysis.py
"""

from repro import (
    Database,
    Exists,
    NestedSelect,
    ScalarComparison,
    Subquery,
    agg,
    col,
    lit,
    md,
    profile,
    scan,
    select,
    subquery_to_gmdj,
)
from repro.algebra import project
from repro.data import NetflowConfig, build_netflow_catalog
from repro.storage import collect


def example_2_2(db: Database) -> None:
    """Web-traffic fraction, restricted to hours with 'interesting' flows."""
    in_hour = (col("FO.StartTime") >= col("H.StartInterval")) & (
        col("FO.StartTime") < col("H.EndInterval")
    )
    interesting = Subquery(
        scan("Flow", "FI"),
        (col("FI.DestIP") == lit("167.167.167.0"))
        & (col("FI.StartTime") >= col("H.StartInterval"))
        & (col("FI.StartTime") < col("H.EndInterval")),
    )
    base = NestedSelect(scan("Hours", "H"), Exists(interesting))
    gmdj = md(
        base,
        scan("Flow", "FO"),
        [[agg("sum", col("FO.NumBytes"), "sum1")],
         [agg("sum", col("FO.NumBytes"), "sum2")]],
        [in_hour & (col("FO.Protocol") == lit("HTTP")), in_hour],
    )
    query = project(
        gmdj,
        ["H.HourDescription",
         (col("sum1") / col("sum2"), "web_fraction")],
    )
    result = db.execute(query)
    print("Example 2.2 — web fraction for hours with traffic to "
          "167.167.167.0:")
    print(result.sorted_by("HourDescription").pretty(limit=8))
    print()


def example_2_3(db: Database) -> None:
    """The three-subquery SourceIP query, with and without coalescing."""
    base = project(scan("Flow", "F0"), ["F0.SourceIP"], distinct=True)

    def flows_to(dest: str, alias: str) -> Subquery:
        return Subquery(
            scan("Flow", alias),
            (col(f"{alias}.SourceIP") == col("F0.SourceIP"))
            & (col(f"{alias}.DestIP") == lit(dest)),
        )

    predicate = (
        Exists(flows_to("167.167.167.0", "F1"), negated=True)
        & Exists(flows_to("168.168.168.0", "F2"))
        & Exists(flows_to("169.169.169.0", "F3"), negated=True)
    )
    nested_base = NestedSelect(base, predicate)
    aggregate = md(
        nested_base,
        scan("Flow", "F"),
        [[agg("sum", col("F.NumBytes"), "sumFrom")],
         [agg("sum", col("F.NumBytes"), "sumTo")]],
        [col("F0.SourceIP") == col("F.SourceIP"),
         col("F0.SourceIP") == col("F.DestIP")],
    )
    plain = subquery_to_gmdj(aggregate, db.catalog)
    optimized = subquery_to_gmdj(aggregate, db.catalog, optimize=True)
    with collect() as plain_stats:
        result = plain.evaluate(db.catalog)
    with collect() as optimized_stats:
        optimized_result = optimized.evaluate(db.catalog)
    assert result.bag_equal(optimized_result)
    print("Example 2.3 — qualifying source IPs with sent/received totals:")
    print(result.sorted_by("F0.SourceIP").pretty(limit=10))
    print(
        f"\n  unoptimized: {plain_stats.relation_scans} relation scans, "
        f"{plain_stats.pages_read} pages"
    )
    print(
        f"  coalesced:   {optimized_stats.relation_scans} relation scans, "
        f"{optimized_stats.pages_read} pages  "
        "(Proposition 4.1: one scan serves all three subqueries)"
    )
    print()


def main() -> None:
    db = Database()
    catalog = build_netflow_catalog(NetflowConfig(flows=4000, users=40, seed=9))
    for name in catalog.table_names():
        db.register(name, catalog.table(name))
    print(f"Warehouse: {len(db.table('Flow'))} flows, "
          f"{len(db.table('Hours'))} hours, {len(db.table('User'))} users\n")
    example_2_2(db)
    example_2_3(db)


if __name__ == "__main__":
    main()
