"""Universal quantification via double negation — Example 3.3.

"Which user accounts have been the source of traffic in *every* hour?"
is naturally written as a double NOT EXISTS: there is no hour for which
there is no flow from the user's IP.  The inner block's correlation
predicate ``F.SourceIP = U.IPAddress`` is *non-neighboring* (it reaches
two scopes out), the case that forces the translator to push the User
table down into the inner GMDJ's base (Theorems 3.3/3.4, Example 3.4).

This example shows the nested form, the translated plan with the pushed
join, and cross-checks the GMDJ answer against naive evaluation.

Run:  python examples/active_users.py
"""

from repro import (
    Database,
    QueryOptions,
    Exists,
    NestedSelect,
    Subquery,
    col,
    lit,
    scan,
    subquery_to_gmdj,
)
from repro.algebra.printer import explain
from repro.baselines import evaluate_naive
from repro.data import NetflowConfig, build_netflow_catalog


def build_query():
    no_flow_in_hour = Exists(
        Subquery(
            scan("Flow", "F"),
            (col("F.StartTime") >= col("H.StartInterval"))
            & (col("F.StartTime") < col("H.EndInterval"))
            & (col("F.SourceIP") == col("U.IPAddress")),  # non-neighboring!
        ),
        negated=True,
    )
    some_hour_without_traffic = Exists(
        Subquery(
            scan("Hours", "H"),
            (col("H.StartInterval") >= lit(0)) & no_flow_in_hour,
        ),
        negated=True,
    )
    return NestedSelect(scan("User", "U"), some_hour_without_traffic)


def main() -> None:
    db = Database()
    # A small horizon and chatty users so "active in every hour" is
    # non-empty; seed fixed for reproducibility.
    catalog = build_netflow_catalog(
        NetflowConfig(flows=6000, hours=8, users=25, extra_source_ips=5,
                      seed=21)
    )
    for name in catalog.table_names():
        db.register(name, catalog.table(name))

    query = build_query()
    translated = subquery_to_gmdj(query, db.catalog)
    print("Translated plan (note the pushed-down User join in the inner "
          "GMDJ's base):\n")
    print(explain(translated))
    print()

    gmdj_result = db.execute(query, QueryOptions("gmdj"))
    naive_result = evaluate_naive(query, db.catalog)
    assert gmdj_result.bag_equal(naive_result), "strategies disagree!"
    print(f"Users active in every one of the {len(db.table('Hours'))} hours "
          f"({len(gmdj_result)} of {len(db.table('User'))} accounts):")
    print(gmdj_result.sorted_by("AccountNumber").pretty(limit=30))


if __name__ == "__main__":
    main()
