"""Quickstart: the GMDJ operator and SQL subqueries in five minutes.

Builds the paper's tiny Figure 1 warehouse, runs Example 2.1 ("on an
hourly basis, what fraction of the traffic is due to web traffic?") as a
single GMDJ, and then runs a correlated SQL subquery through every
evaluation strategy.

Run:  python examples/quickstart.py
"""

from repro import QueryOptions, Database, DataType, agg, col, lit, md, scan


def main() -> None:
    db = Database()
    db.create_table(
        "Hours",
        [("HourDescription", DataType.INTEGER),
         ("StartInterval", DataType.INTEGER),
         ("EndInterval", DataType.INTEGER)],
        [(1, 0, 60), (2, 61, 120), (3, 121, 180)],
    )
    db.create_table(
        "Flow",
        [("StartTime", DataType.INTEGER), ("Protocol", DataType.STRING),
         ("NumBytes", DataType.INTEGER)],
        [(43, "HTTP", 12), (86, "HTTP", 36), (99, "FTP", 48),
         (132, "HTTP", 24), (156, "HTTP", 24), (161, "FTP", 48)],
    )

    # -- Example 2.1 as a single GMDJ -------------------------------------
    # MD(Hours -> H, Flow -> F, (l1, l2), (theta1, theta2)) where theta1
    # restricts to HTTP traffic inside the hour and theta2 to all traffic
    # inside the hour.  One scan of Flow computes both sums.
    in_hour = (col("F.StartTime") >= col("H.StartInterval")) & (
        col("F.StartTime") < col("H.EndInterval")
    )
    gmdj = md(
        scan("Hours", "H"),
        scan("Flow", "F"),
        [[agg("sum", col("F.NumBytes"), "sum1")],
         [agg("sum", col("F.NumBytes"), "sum2")]],
        [in_hour & (col("F.Protocol") == lit("HTTP")), in_hour],
    )
    print("Example 2.1 — hourly web-traffic fraction via one GMDJ:")
    print(db.execute(gmdj).pretty())
    print()

    # -- The same idea from SQL -------------------------------------------
    sql = (
        "SELECT h.HourDescription FROM Hours h WHERE EXISTS "
        "(SELECT * FROM Flow f WHERE f.StartTime >= h.StartInterval AND "
        "f.StartTime < h.EndInterval AND f.Protocol = 'FTP')"
    )
    print("Hours with FTP traffic (correlated EXISTS), per strategy:")
    for strategy in ("naive", "native", "unnest_join", "gmdj",
                     "gmdj_optimized"):
        report = db.profile_sql(sql, QueryOptions(strategy))
        print(f"  {report.summary()}")
    print()

    print("The GMDJ plan the optimizer executes:")
    print(db.explain(db.sql(sql)))


if __name__ == "__main__":
    main()
