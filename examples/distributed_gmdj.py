"""Distributed and memory-bounded GMDJ evaluation.

Two evaluation regimes the paper points at beyond the single-node,
in-memory case:

* **Partitioned (parallel) evaluation** — split the detail relation into
  fragments, evaluate each independently against a replicated base, and
  merge the mergeable accumulator states.  Same total scan volume as a
  single pass, so horizontal scale-out is "free" in data touched.
* **Memory-bounded base chunking** — when the base-values table exceeds
  memory, scan the detail once per base fragment: a *well-defined* cost
  of ceil(|B|/M) detail scans instead of unpredictable thrashing
  (Section 2.3).

Run:  python examples/distributed_gmdj.py
"""

from repro import Database, agg, col, count_star, lit, md, scan
from repro.data import NetflowConfig, build_netflow_catalog
from repro.gmdj import (
    detail_scans_required,
    evaluate_gmdj_chunked,
    evaluate_gmdj_partitioned,
)
from repro.storage import collect


def build_plan():
    """Per-hour traffic profile: HTTP bytes, total bytes, flow count."""
    in_hour = (col("F.StartTime") >= col("H.StartInterval")) & (
        col("F.StartTime") < col("H.EndInterval")
    )
    return md(
        scan("Hours", "H"),
        scan("Flow", "F"),
        [[agg("sum", col("F.NumBytes"), "http_bytes")],
         [agg("sum", col("F.NumBytes"), "total_bytes"),
          count_star("flows")]],
        [in_hour & (col("F.Protocol") == lit("HTTP")), in_hour],
    )


def main() -> None:
    db = Database()
    catalog = build_netflow_catalog(
        NetflowConfig(flows=20000, hours=48, users=30, seed=17)
    )
    for name in catalog.table_names():
        db.register(name, catalog.table(name))
    print(f"Warehouse: {len(db.table('Flow'))} flows over "
          f"{len(db.table('Hours'))} hours\n")

    plan = build_plan()
    with collect() as single_stats:
        single = plan.evaluate(db.catalog)

    print("Partitioned evaluation (simulated scale-out):")
    for partitions in (1, 2, 4, 8):
        with collect() as stats:
            result = evaluate_gmdj_partitioned(build_plan(), db.catalog,
                                               partitions)
        assert result.bag_equal(single)
        print(f"  {partitions} partition(s): tuples scanned "
              f"{stats.tuples_scanned:7d} (single-scan volume: "
              f"{single_stats.tuples_scanned})")
    print()

    print("Memory-bounded evaluation (base chunking):")
    base_rows = len(db.table("Hours"))
    for budget in (48, 16, 8, 4):
        with collect() as stats:
            result = evaluate_gmdj_chunked(build_plan(), db.catalog, budget)
        assert result.bag_equal(single)
        predicted = detail_scans_required(base_rows, budget)
        print(f"  memory for {budget:2d} base tuples: "
              f"{stats.relation_scans - 1} detail scans "
              f"(formula says {predicted}), "
              f"{stats.pages_read} pages")
    print()

    print("Hourly profile (first 6 hours):")
    print(single.sorted_by("H.HourDescription").pretty(limit=6))


if __name__ == "__main__":
    main()
