"""Figure 2 — the EXISTS subquery experiment.

Paper setup: outer block of 1000 rows, EXISTS subquery over 300k/600k/
900k/1.2M rows, all correlation attributes indexed.  Paper result: both
join unnesting and the GMDJ rewrite beat the native engine's specialized
EXISTS algorithm, with GMDJ ≈ join even on this simplest unnesting case.

Here: outer 200 rows, inner 6k/12k/18k/24k (same sweep trajectory), four
strategies, and a series report in ``benchmark_results/fig2_exists.txt``.
"""

from __future__ import annotations

import pytest

from conftest import WorkloadCache, write_report
from repro.bench import (
    FIG2_INNER_SIZES,
    build_fig2,
    compare_strategies,
    print_series,
)
from repro.engine import make_executor

STRATEGIES = ("native", "unnest_join", "gmdj", "gmdj_optimized")
_workloads = WorkloadCache(build_fig2)
_reference = {}


def _expected(inner_size: int):
    if inner_size not in _reference:
        workload = _workloads.get(inner_size)
        _reference[inner_size] = make_executor(
            workload.query, workload.catalog, "gmdj"
        )()
    return _reference[inner_size]


@pytest.mark.parametrize("inner_size", FIG2_INNER_SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig2_exists(benchmark, inner_size, strategy):
    workload = _workloads.get(inner_size)
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(_expected(inner_size))


def test_fig2_series_report(benchmark):
    def run():
        return [
            compare_strategies(_workloads.get(size), list(STRATEGIES))
            for size in FIG2_INNER_SIZES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = print_series(
        "Figure 2: EXISTS subquery (outer=200; paper: 1000 over 300k-1.2M)",
        results, STRATEGIES, x_label="inner size",
    )
    write_report("fig2_exists", text)
    # Paper shape: GMDJ stays within a small factor of join unnesting.
    for result in results:
        gmdj = result.reports["gmdj_optimized"].total_work
        join = result.reports["unnest_join"].total_work
        assert gmdj <= join * 2.5
