"""Ablation B — base-tuple completion (Theorems 4.1/4.2) on Figure 4's
workload.

With the ``<>`` correlation no hash partitioning is possible, so every
detail tuple tests every *active* base tuple.  Completion dooms a base
tuple on its first weak-only match (the cnt1=cnt2 pairwise rule), which
collapses the active set early in the scan; the completed-tuple counter
and the predicate-evaluation counter make the effect directly visible.
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.bench import FIG4_SIZES, build_fig4, compare_strategies, print_series
from repro.engine import make_executor

STRATEGIES = ("gmdj", "gmdj_completion")
SIZES = FIG4_SIZES[:2]
_workloads = {}


def _setup(size):
    if size not in _workloads:
        _workloads[size] = build_fig4(size)
    return _workloads[size]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig4_completion(benchmark, size, strategy):
    workload = _setup(size)
    expected = make_executor(workload.query, workload.catalog, "native")()
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(expected)


def test_completion_ablation_report(benchmark):
    def run():
        return [
            compare_strategies(_setup(size), list(STRATEGIES))
            for size in SIZES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = print_series(
        "Ablation B: tuple completion on the Figure 4 (ALL, <>) workload",
        results, STRATEGIES, x_label="table size",
    )
    for result in results:
        basic = result.reports["gmdj"]
        completed = result.reports["gmdj_completion"]
        line = (
            f"size={result.workload.params['size']}: "
            f"predicate evals {basic.predicate_evals} -> "
            f"{completed.predicate_evals}, completed tuples "
            f"{completed.counters['completed_tuples']}"
        )
        print(line)
        text += "\n" + line
        assert completed.predicate_evals * 2 < basic.predicate_evals
    write_report("ablation_completion", text)
