"""Figure 3 — comparison predicate over an aggregate subquery.

Paper setup: outer block 500→2000 rows paired with inner blocks
300k→1.2M; the native engine falls back to a plain nested loop, join
unnesting needs an aggregate + outer-join plan (which degraded at the
largest size), the GMDJ evaluation stays smooth.

Here: outer 50→200 paired with inner 3k→12k.  ``naive`` plays the
paper's native nested loop; the GMDJ series should stay well below it
and within a constant factor of the join plan throughout.
"""

from __future__ import annotations

import pytest

from conftest import WorkloadCache, write_report
from repro.bench import FIG3_POINTS, build_fig3, compare_strategies, print_series
from repro.engine import make_executor

STRATEGIES = ("naive", "unnest_join", "gmdj", "gmdj_optimized")
_workloads = WorkloadCache(build_fig3)
_reference = {}


def _expected(point):
    if point not in _reference:
        workload = _workloads.get(*point)
        _reference[point] = make_executor(
            workload.query, workload.catalog, "gmdj"
        )()
    return _reference[point]


@pytest.mark.parametrize("point", FIG3_POINTS,
                         ids=[f"{o}x{i}" for o, i in FIG3_POINTS])
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig3_aggcomp(benchmark, point, strategy):
    workload = _workloads.get(*point)
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(_expected(point))


def test_fig3_series_report(benchmark):
    def run():
        return [
            compare_strategies(_workloads.get(*point), list(STRATEGIES))
            for point in FIG3_POINTS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = print_series(
        "Figure 3: aggregate comparison (paper: outer 500-2000, inner "
        "300k-1.2M; naive = native nested loop)",
        results, STRATEGIES, x_label="outer x inner",
    )
    write_report("fig3_aggcomp", text)
    for result in results:
        naive = result.reports["naive"].total_work
        gmdj = result.reports["gmdj_optimized"].total_work
        # Paper shape: the nested loop is dramatically worse than GMDJ.
        assert gmdj * 5 < naive
