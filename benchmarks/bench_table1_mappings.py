"""Table 1 — the six nested-form → GMDJ rewrite rules.

Table 1 is a correctness table, not a timing figure, so this benchmark
doubles as the equivalence harness: for every row of Table 1 the GMDJ
translation must return exactly the bag the naive tuple-iteration
semantics defines (on data containing NULLs), and each rewrite is timed
against the naive evaluation for reference.
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.bench import build_table1_catalog, table1_queries
from repro.engine import make_executor, profile

_catalog = None
_queries = None


def _setup():
    global _catalog, _queries
    if _catalog is None:
        _catalog = build_table1_catalog()
        _queries = table1_queries()
    return _catalog, _queries


RULES = ("comparison", "agg_comparison", "some", "all", "exists", "not_exists")
STRATEGIES = ("naive", "gmdj", "gmdj_optimized")


@pytest.mark.parametrize("rule", RULES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_table1_rule(benchmark, rule, strategy):
    catalog, queries = _setup()
    query = queries[rule]
    expected = make_executor(query, catalog, "naive")()
    runner = make_executor(query, catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(expected), (
        f"Table 1 rule {rule!r} violated by strategy {strategy!r}"
    )


def test_table1_report(benchmark):
    catalog, queries = _setup()

    def run():
        rows = []
        for rule in RULES:
            reports = {
                strategy: profile(queries[rule], catalog, strategy)
                for strategy in STRATEGIES
            }
            rows.append((rule, reports))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Table 1: rewrite-rule equivalence and timing =="]
    header = f"{'rule':>16s}"
    for strategy in STRATEGIES:
        header += f" | {strategy:>16s}"
    lines.append(header + "   (ms)")
    for rule, reports in rows:
        row = f"{rule:>16s}"
        reference = None
        for strategy in STRATEGIES:
            report = reports[strategy]
            row += f" | {report.elapsed_seconds * 1000:16.2f}"
            if reference is None:
                reference = report.result
            else:
                assert reference.bag_equal(report.result)
        lines.append(row)
    text = "\n".join(lines)
    print(text)
    write_report("table1_mappings", text)
