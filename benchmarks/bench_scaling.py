"""Scaling study: GMDJ cost growth vs workload dimensions.

Not a paper figure, but the property all of Section 5 leans on: the
GMDJ's work is **linear in the detail size** (single scan) and **linear
in the base size** for hash-partitioned θs, while the nested loop is
bilinear.  The report fits growth ratios and the assertions require the
GMDJ's measured work to grow by no more than ~1.4× the size ratio per
step (linear with slack) while the naive loop grows multiplicatively.
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.bench import build_fig2, compare_strategies
from repro.engine import make_executor

DETAIL_SIZES = (4000, 8000, 16000)
OUTER_SIZES = (50, 100, 200)
_cache = {}


def _workload(outer, inner):
    key = (outer, inner)
    if key not in _cache:
        _cache[key] = build_fig2(inner, outer_size=outer)
    return _cache[key]


@pytest.mark.parametrize("inner", DETAIL_SIZES)
def test_gmdj_scaling_in_detail(benchmark, inner):
    workload = _workload(100, inner)
    runner = make_executor(workload.query, workload.catalog, "gmdj_optimized")
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert len(result) > 0


@pytest.mark.parametrize("outer", OUTER_SIZES)
def test_gmdj_scaling_in_base(benchmark, outer):
    workload = _workload(outer, 8000)
    runner = make_executor(workload.query, workload.catalog, "gmdj_optimized")
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert len(result) >= 0


def test_scaling_report(benchmark):
    def run():
        detail_series = [
            compare_strategies(_workload(100, inner),
                               ["naive", "gmdj_optimized"])
            for inner in DETAIL_SIZES
        ]
        base_series = [
            compare_strategies(_workload(outer, 8000),
                               ["naive", "gmdj_optimized"])
            for outer in OUTER_SIZES
        ]
        return detail_series, base_series

    detail_series, base_series = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    lines = ["== Scaling study: work growth per doubling =="]
    for label, series, sizes in (
        ("detail size", detail_series, DETAIL_SIZES),
        ("base size", base_series, OUTER_SIZES),
    ):
        lines.append(f"-- sweep over {label}: {sizes}")
        for strategy in ("naive", "gmdj_optimized"):
            works = [r.reports[strategy].total_work for r in series]
            ratios = [works[i + 1] / works[i] for i in range(len(works) - 1)]
            pretty = ", ".join(f"{ratio:.2f}x" for ratio in ratios)
            lines.append(f"   {strategy:15s} work={works} growth=[{pretty}]")
            if strategy == "gmdj_optimized":
                # Linear in each dimension: growth per doubling stays
                # well under the bilinear 4x (2x size -> ~2x work).
                assert all(ratio < 2.9 for ratio in ratios), ratios
        naive_growth = [
            series[i + 1].reports["naive"].total_work
            / series[i].reports["naive"].total_work
            for i in range(len(series) - 1)
        ]
        gmdj_growth = [
            series[i + 1].reports["gmdj_optimized"].total_work
            / series[i].reports["gmdj_optimized"].total_work
            for i in range(len(series) - 1)
        ]
        # The nested loop grows at least as fast as the GMDJ everywhere.
        assert all(n >= g * 0.9 for n, g in zip(naive_growth, gmdj_growth))
    text = "\n".join(lines)
    print(text)
    write_report("scaling_study", text)
