"""Rollup-store serving vs cold evaluation at paper scale.

The semantic rollup tier (:mod:`repro.engine.rollup`) claims that a
subsumption-served GMDJ touches only the ~|B| cached rollup rows, never
the |R| detail rows.  At |B|=200, |R|=100,000 that asymmetry should be
worth far more than the matcher's overhead; this benchmark pins the
claim down and commits the baseline to ``BENCH_rollup.json``:

* ``exact_replay`` — the identical query again (exact-tier hit);
* ``theta_residual`` — a finer θ answered from the coarser stored
  rollup by residual filtering (the headline workload);
* ``base_selection`` — a Select over the stored base answered by
  prefix filtering.

Every warm run is cross-checked three ways: rows identical to cold
vectorized evaluation, the serving tier actually engaged (store
counters), and the zero-detail-scan certificate — a traced warm run
must contain a ``rollup_hit`` span and not a single ``detail_scan``
span, with the rollup invariants passing strictly.
"""

from __future__ import annotations

import time

from conftest import write_json, write_report
from repro import Database, DataType, QueryOptions
from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import col, lit
from repro.algebra.operators import ScanTable, Select
from repro.data.rng import make_rng
from repro.obs.invariants import check_trace

BASE_ROWS = 200
DETAIL_ROWS = 100_000
HEADLINE = "theta_residual"

COLD = QueryOptions(strategy="gmdj", mode="gmdj_vectorized",
                    rollup="off", use_cache=False)
WARM = QueryOptions(strategy="gmdj", mode="gmdj_vectorized",
                    rollup="subsume", use_cache=False)

AGGS = [[count_star("cnt"),
         agg("sum", col("r.V"), "s"),
         agg("max", col("r.V"), "mx")]]
THETA = col("b.K") == col("r.K")


def _make_db() -> Database:
    rng = make_rng(7, "rollup")
    db = Database()
    db.create_table(
        "B", [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(i, rng.randint(0, 1000)) for i in range(BASE_ROWS)],
    )
    db.create_table(
        "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(rng.randrange(BASE_ROWS), rng.randint(0, 1000))
         for _ in range(DETAIL_ROWS)],
    )
    return db


def _coarse():
    from repro.gmdj import md

    return md(ScanTable("B", "b"), ScanTable("R", "r"), AGGS, [THETA])


def _probes():
    from repro.gmdj import md

    return {
        "exact_replay": _coarse(),
        "theta_residual": md(
            ScanTable("B", "b"), ScanTable("R", "r"), AGGS,
            [THETA & (col("b.X") > lit(500))],
        ),
        "base_selection": md(
            Select(ScanTable("B", "b"), col("b.X") > lit(500)),
            ScanTable("R", "r"), AGGS, [THETA],
        ),
    }


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return time.perf_counter() - start, result


def _certificate(db: Database, plan) -> str:
    """Zero-detail-scan certificate for one warm serve, as pass/fail."""
    report = db.profile(plan, WARM, trace=True)
    spans = list(report.trace.walk())
    hits = [s for s in spans if s.kind == "rollup_hit"]
    scans = [s for s in spans if s.kind == "detail_scan"]
    invariants = check_trace(report.trace, strict=True)
    ok = bool(hits) and not scans and invariants.ok
    return "pass" if ok else "fail"


def test_rollup_report(benchmark):
    """Cold-vs-served comparison table + committed BENCH_rollup.json."""

    def run():
        payload = {
            "base_rows": BASE_ROWS,
            "detail_rows": DETAIL_ROWS,
            "headline": HEADLINE,
            "workloads": {},
        }
        lines = [
            "== GMDJ cold vectorized vs rollup-store serving ==",
            f"|B|={BASE_ROWS}  |R|={DETAIL_ROWS}",
            f"{'workload':<16} {'tier':<8} {'cold s':>9} {'warm s':>9} "
            f"{'speedup':>8} {'cert':>5}",
        ]
        for name, probe in _probes().items():
            db = _make_db()
            db.execute(_coarse(), WARM)  # prime the store
            stored = db.rollups.stats()
            cold_wall, cold = _timed(lambda: db.execute(probe, COLD))
            warm_wall, warm = _timed(lambda: db.execute(probe, WARM))
            assert warm.rows == cold.rows
            stats = db.rollups.stats()
            tier = ("exact" if stats["exact_hits"] > stored["exact_hits"]
                    else "subsume")
            assert stats["misses"] == stored["misses"], (
                f"{name}: warm probe missed the store"
            )
            certificate = _certificate(db, probe)
            payload["workloads"][name] = {
                "tier": tier,
                "modes": {
                    "cold_vectorized": {
                        "wall_seconds": round(cold_wall, 6),
                        "rows_per_sec": round(DETAIL_ROWS / cold_wall, 1),
                    },
                    "rollup_served": {
                        "wall_seconds": round(warm_wall, 6),
                        "rows_per_sec": round(DETAIL_ROWS / warm_wall, 1),
                    },
                },
                "speedup": round(cold_wall / warm_wall, 2),
                "zero_detail_scan_certificate": certificate,
            }
            lines.append(
                f"{name:<16} {tier:<8} {cold_wall:>9.4f} {warm_wall:>9.4f} "
                f"{cold_wall / warm_wall:>7.1f}x {certificate:>5}"
            )
        return payload, "\n".join(lines)

    payload, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    write_report("rollup_gmdj", text)
    write_json("BENCH_rollup", payload)
    for name, workload in payload["workloads"].items():
        assert workload["zero_detail_scan_certificate"] == "pass", name
    headline = payload["workloads"][HEADLINE]
    assert headline["tier"] == "subsume"
    assert headline["speedup"] >= 5.0, (
        f"subsumption serving only {headline['speedup']}x over cold "
        f"vectorized evaluation on {DETAIL_ROWS} detail rows"
    )
