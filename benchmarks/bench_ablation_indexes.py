"""Ablation C — index sensitivity (the paper's stability claim).

"The presence or absence of indexes on the base tables has minimal or no
effect on the GMDJ processing algorithm", while the native strategy and
the join-unnesting plans of a conventional engine degrade badly.  This
ablation runs the Figure 2 EXISTS workload with and without indexes and
compares each strategy against itself.
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.bench import build_fig2, compare_strategies, print_series
from repro.engine import make_executor

INNER = 12000
PAIRS = (
    ("native", "native_noindex"),
    ("unnest_join", "unnest_join_noindex"),
    ("gmdj_optimized", "gmdj_optimized"),
)
_workloads = {}


def _setup(indexes: bool):
    if indexes not in _workloads:
        _workloads[indexes] = build_fig2(INNER, indexes=indexes)
    return _workloads[indexes]


@pytest.mark.parametrize("indexes", (True, False), ids=("indexed", "noindex"))
@pytest.mark.parametrize("pair", PAIRS, ids=(p[0] for p in PAIRS))
def test_index_ablation(benchmark, indexes, pair):
    strategy = pair[0] if indexes else pair[1]
    workload = _setup(indexes)
    expected = make_executor(workload.query, workload.catalog, "gmdj")()
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(expected)


def test_index_ablation_report(benchmark):
    def run():
        indexed = compare_strategies(
            _setup(True), [p[0] for p in PAIRS]
        )
        unindexed = compare_strategies(
            _setup(False), sorted({p[1] for p in PAIRS})
        )
        return indexed, unindexed

    indexed, unindexed = benchmark.pedantic(run, rounds=1, iterations=1)
    strategies = list(dict.fromkeys(
        [p[0] for p in PAIRS] + [p[1] for p in PAIRS]
    ))
    indexed.reports.update(unindexed.reports)
    text = print_series(
        "Ablation C: index sensitivity on the Figure 2 workload",
        [indexed], strategies, x_label="point",
    )
    write_report("ablation_indexes", text)
    gmdj_idx = indexed.reports["gmdj_optimized"].total_work
    native_idx = indexed.reports["native"].total_work
    native_noidx = indexed.reports["native_noindex"].total_work
    # The GMDJ never used the indexes; native degrades sharply without them.
    assert native_noidx > native_idx
    assert native_noidx > gmdj_idx
