"""Ablation A — coalescing (Proposition 4.1) on the Example 2.3 query.

The three-subquery SourceIP query stacks three GMDJs over the same Flow
table; coalescing folds them (plus the final aggregation pass, after the
selection pull-up) into far fewer scans.  The metric that matters is the
number of relation scans and pages read — this is exactly the "evaluate
multiple subqueries over the same table in a single scan of that table"
claim of Section 4.1.
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.bench import build_example23, compare_strategies, print_series
from repro.engine import make_executor

STRATEGIES = ("gmdj", "gmdj_coalesce", "gmdj_optimized")
_workload = None


def _setup():
    global _workload
    if _workload is None:
        _workload = build_example23()
    return _workload


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_example23(benchmark, strategy):
    workload = _setup()
    expected = make_executor(workload.query, workload.catalog, "naive")()
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(expected)


def test_coalesce_ablation_report(benchmark):
    workload = _setup()

    def run():
        return compare_strategies(workload, list(STRATEGIES))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    text = print_series(
        "Ablation A: coalescing on Example 2.3 (three subqueries, one table)",
        [result], STRATEGIES, x_label="point",
    )
    scans = {
        strategy: result.reports[strategy].counters["relation_scans"]
        for strategy in STRATEGIES
    }
    text += f"\nrelation scans: {scans}"
    print(f"relation scans: {scans}")
    write_report("ablation_coalesce", text)
    assert scans["gmdj_coalesce"] < scans["gmdj"]
    assert scans["gmdj_optimized"] <= scans["gmdj_coalesce"]
