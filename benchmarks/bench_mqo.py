"""Batch MQO scan sharing vs sequential execution at paper scale.

Proposition 4.1 coalesces one query's subqueries into a single detail
scan; :mod:`repro.engine.mqo` lifts the same merge across a *batch* of
queries.  This benchmark pins the workload-level claim down at |B|=200,
|R|=100,000 and commits the baseline to ``BENCH_mqo.json``:

* ``dedup_agg`` (headline) — N scalar-aggregate comparison queries over
  the same correlated SUM/COUNT/MIN/MAX block: the shared GMDJ
  deduplicates every consumer's θ-block into one, so N queries cost
  ~one query's detail work plus cheap per-consumer residuals;
* ``multi_block`` — N EXISTS queries with *distinct* θ constants: no
  block dedup, but the N detail scans still collapse into one shared
  pass over R.

Each point runs the same queries sequentially (``execute`` per query)
and as one ``execute_batch``, asserts the results row-identical, and
requires every coalesced group's static single-scan certificate to be
confirmed by the runtime trace.
"""

from __future__ import annotations

import time

from conftest import write_json, write_report
from repro import Database, DataType, QueryOptions
from repro.data.rng import make_rng

BASE_ROWS = 200
DETAIL_ROWS = 100_000
BATCH_SIZES = (1, 4, 16)
HEADLINE = "dedup_agg"
HEADLINE_BATCH = 4

OPTS = QueryOptions(use_cache=False, mode="gmdj_vectorized")


def _make_db() -> Database:
    rng = make_rng(11, "mqo")
    db = Database()
    db.create_table(
        "B", [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(i, rng.randint(0, 1000)) for i in range(BASE_ROWS)],
    )
    db.create_table(
        "R", [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(rng.randrange(BASE_ROWS), rng.randint(0, 1000))
         for _ in range(DETAIL_ROWS)],
    )
    return db


def _dedup_agg_sqls(n: int) -> list[str]:
    """N compatible queries whose θ-blocks all merge into one."""
    functions = ("SUM", "COUNT", "MIN", "MAX")
    operators = (">=", "<", ">", "<=")
    sqls = []
    for i in range(n):
        # Cycle operators first so a 4-query batch shares one SUM spec
        # exactly; functions only start varying past 4 members.
        op = operators[i % len(operators)]
        function = functions[(i // len(operators)) % len(functions)]
        sqls.append(
            f"SELECT K FROM B b WHERE b.X {op} "
            f"(SELECT {function}(r.V) FROM R r WHERE r.K = b.K)"
        )
    return sqls


def _multi_block_sqls(n: int) -> list[str]:
    """N compatible queries with distinct θ-blocks (scan sharing only)."""
    return [
        f"SELECT K FROM B b WHERE EXISTS "
        f"(SELECT * FROM R r WHERE r.K = b.K AND r.V > {100 + 50 * i})"
        for i in range(n)
    ]


WORKLOADS = {
    "dedup_agg": _dedup_agg_sqls,
    "multi_block": _multi_block_sqls,
}


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return time.perf_counter() - start, result


def test_mqo_report(benchmark):
    """Shared vs sequential batches + committed BENCH_mqo.json."""

    def run():
        db = _make_db()
        payload = {
            "base_rows": BASE_ROWS,
            "detail_rows": DETAIL_ROWS,
            "headline": HEADLINE,
            "headline_batch": HEADLINE_BATCH,
            "workloads": {},
        }
        lines = [
            "== batch MQO: shared detail scan vs sequential execution ==",
            f"|B|={BASE_ROWS}  |R|={DETAIL_ROWS}  "
            f"(vectorized, cache off)",
            f"{'workload':<12} {'batch':>5} {'seq s':>9} {'shared s':>9} "
            f"{'speedup':>8} {'saved':>5} {'blocks':>12} {'cert':>5}",
        ]
        for name, make_sqls in WORKLOADS.items():
            points = {}
            for size in BATCH_SIZES:
                queries = [db.sql(sql) for sql in make_sqls(size)]
                seq_wall, sequential = _timed(
                    lambda: [db.execute(q, OPTS) for q in queries]
                )
                batch_wall, batch = _timed(
                    lambda: db.execute_batch(queries, OPTS)
                )
                for expected, result in zip(sequential, batch):
                    assert result.rows == expected.rows, (
                        f"{name}[{size}]: batch result diverged"
                    )
                groups = [g for g in batch.report.groups if g.coalesced]
                certified = all(g.certified for g in groups)
                blocks = (
                    f"{sum(g.consumer_blocks for g in groups)}->"
                    f"{sum(g.shared_blocks for g in groups)}"
                    if groups else "-"
                )
                certificate = "pass" if (not groups or certified) else "fail"
                speedup = seq_wall / batch_wall
                points[str(size)] = {
                    "sequential_seconds": round(seq_wall, 6),
                    "shared_seconds": round(batch_wall, 6),
                    "speedup": round(speedup, 2),
                    "scans_saved": batch.report.scans_saved,
                    "share_groups": len(groups),
                    "consumer_blocks": sum(
                        g.consumer_blocks for g in groups),
                    "shared_blocks": sum(g.shared_blocks for g in groups),
                    "single_scan_certificate": certificate,
                }
                lines.append(
                    f"{name:<12} {size:>5} {seq_wall:>9.4f} "
                    f"{batch_wall:>9.4f} {speedup:>7.2f}x "
                    f"{batch.report.scans_saved:>5} {blocks:>12} "
                    f"{certificate:>5}"
                )
            payload["workloads"][name] = points
        return payload, "\n".join(lines)

    payload, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    write_report("mqo_batch", text)
    write_json("BENCH_mqo", payload)
    for name, points in payload["workloads"].items():
        for size, point in points.items():
            assert point["single_scan_certificate"] == "pass", (
                f"{name}[{size}]"
            )
            if size != "1":
                assert point["scans_saved"] == int(size) - 1, (
                    f"{name}[{size}]: expected full coalescing"
                )
    headline = payload["workloads"][HEADLINE][str(HEADLINE_BATCH)]
    assert headline["speedup"] >= 2.0, (
        f"shared execution only {headline['speedup']}x over sequential "
        f"for a {HEADLINE_BATCH}-query compatible batch at "
        f"{DETAIL_ROWS} detail rows"
    )
