"""Closed-loop load generation against the repro.serve query service.

Boots the real asyncio service (ephemeral port, in-process) and drives
it with a fixed population of keep-alive HTTP clients — a *closed*
system: each client issues its next request only after the previous
response lands, so offered load adapts to service capacity and the
measured latencies are honest (no coordinated-omission inflation from
an open-loop arrival schedule).

Three questions, answered into ``BENCH_serve.json``:

* **Serving-tier throughput** — p50/p99 latency and QPS at 1/2/4
  dispatcher workers, for both a rollup-served workload (every response
  must report ``served_by: rollup`` with zero detail scans — the
  Prop 4.1 certificate over the wire) and a cold execute workload that
  actually scans the detail per request.
* **Overload behaviour** — a burst wider than workers+queue_depth must
  shed the excess with 429s while every *admitted* request completes
  with correct rows: bounded queue ⇒ bounded tail.
* **Drain** — shutdown under load returns cleanly (exercised implicitly:
  every point tears its service down after measuring).

The module doubles as the CI smoke leg's load generator::

    python benchmarks/bench_serve.py --url http://HOST:PORT \
        --clients 4 --requests 10 --output latency.json

which fires the same workloads at an externally booted ``repro serve``,
asserts the 2xx/zero-detail-scan invariants, and writes a latency
report — exiting non-zero on any violation.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

SQL = ("SELECT K FROM B b WHERE EXISTS "
       "(SELECT * FROM R r WHERE r.K = b.K)")

ROLLUP_OPTIONS = {"strategy": "gmdj", "rollup": "subsume",
                  "use_cache": False}
EXECUTE_OPTIONS = {"strategy": "gmdj", "mode": "gmdj_vectorized",
                   "rollup": "off", "use_cache": False}

BASE_ROWS = 50
DETAIL_ROWS = 20_000
WORKER_POINTS = (1, 2, 4)
CLIENTS = 8
REQUESTS_PER_CLIENT = 25


class Client:
    """One keep-alive HTTP client (stdlib only, shared by CI)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection = None

    def _connect(self):
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def request(self, method: str, path: str, payload=None):
        body = None if payload is None else json.dumps(payload)
        try:
            connection = self._connect()
            connection.request(method, path, body=body)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        except (http.client.HTTPException, OSError):
            self.close()  # stale keep-alive: reconnect once
            connection = self._connect()
            connection.request(method, path, body=body)
            response = connection.getresponse()
            return response.status, json.loads(response.read())

    def post(self, path: str, payload):
        return self.request("POST", path, payload)

    def close(self):
        if self._connection is not None:
            self._connection.close()
            self._connection = None


def create_tables(client: Client, base_rows: int = BASE_ROWS,
                  detail_rows: int = DETAIL_ROWS,
                  tenant: str = "default") -> None:
    """Install the benchmark's B/R pair through /ddl."""
    from repro.data.rng import make_rng

    rng = make_rng(11, "serve")
    statements = [
        {"op": "create_table", "name": "B",
         "columns": [["K", "integer"]],
         "rows": [[i] for i in range(base_rows)]},
        {"op": "create_table", "name": "R",
         "columns": [["K", "integer"], ["V", "integer"]],
         "rows": [[rng.randrange(2 * base_rows), rng.randint(0, 1000)]
                  for _ in range(detail_rows)]},
    ]
    for statement in statements:
        status, payload = client.post(
            "/ddl", {"tenant": tenant, "statement": statement})
        assert status == 200, f"ddl failed: {status} {payload}"


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def closed_loop(host: str, port: int, body: dict, clients: int,
                requests_per_client: int) -> dict:
    """Drive the service with a closed client population; summarize."""
    latencies: list[float] = []
    outcomes: list[tuple[int, dict]] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker():
        client = Client(host, port)
        local_latencies, local_outcomes = [], []
        barrier.wait()
        for _ in range(requests_per_client):
            started = time.perf_counter()
            status, payload = client.post("/query", body)
            local_latencies.append(
                (time.perf_counter() - started) * 1000.0)
            local_outcomes.append((status, payload))
        client.close()
        with lock:
            latencies.extend(local_latencies)
            outcomes.extend(local_outcomes)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    latencies.sort()
    statuses: dict[int, int] = {}
    served_by: dict[str, int] = {}
    detail_scans = 0
    for status, payload in outcomes:
        statuses[status] = statuses.get(status, 0) + 1
        if status == 200:
            served_by[payload["served_by"]] = (
                served_by.get(payload["served_by"], 0) + 1)
            detail_scans += payload.get("detail_scans", 0)
    return {
        "requests": len(outcomes),
        "wall_seconds": round(wall, 4),
        "qps": round(len(outcomes) / wall, 1),
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
        "max_ms": round(percentile(latencies, 1.0), 3),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "served_by": dict(sorted(served_by.items())),
        "detail_scans_total": detail_scans,
    }


# -- embedded service lifecycle (benchmark mode) ----------------------------


class EmbeddedServer:
    """The real QueryService on an ephemeral port, in a loop thread."""

    def __init__(self, **overrides):
        import asyncio

        from repro.serve import QueryService, ServeConfig

        self.service = QueryService(ServeConfig(port=0, **overrides))
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "service failed to start"

    def _run(self):
        import asyncio

        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    @property
    def port(self) -> int:
        return self.service.port

    def stop(self):
        import asyncio

        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop)
        future.result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


def _measure_worker_point(workers: int) -> dict:
    server = EmbeddedServer(workers=workers, queue_depth=64)
    try:
        setup = Client("127.0.0.1", server.port)
        create_tables(setup)
        # Prime the rollup store, then verify the wire-level certificate.
        status, warm = setup.post(
            "/query", {"sql": SQL, "options": ROLLUP_OPTIONS})
        assert status == 200 and warm["served_by"] == "execute"
        status, hit = setup.post(
            "/query", {"sql": SQL, "options": ROLLUP_OPTIONS})
        assert status == 200 and hit["served_by"] == "rollup"
        assert hit["detail_scans"] == 0
        setup.close()

        point = {"workers": workers}
        point["rollup_hit"] = closed_loop(
            "127.0.0.1", server.port,
            {"sql": SQL, "options": ROLLUP_OPTIONS},
            clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT)
        point["execute"] = closed_loop(
            "127.0.0.1", server.port,
            {"sql": SQL, "options": EXECUTE_OPTIONS},
            clients=CLIENTS, requests_per_client=5)
        return point
    finally:
        server.stop()


def _measure_overload() -> dict:
    """A burst wider than workers+queue must shed, not queue unboundedly."""
    server = EmbeddedServer(workers=1, queue_depth=2)
    try:
        setup = Client("127.0.0.1", server.port)
        create_tables(setup)
        setup.close()
        burst = 12
        results = []
        lock = threading.Lock()
        barrier = threading.Barrier(burst)

        def one_shot():
            client = Client("127.0.0.1", server.port)
            barrier.wait()
            status, payload = client.post(
                "/query", {"sql": SQL, "options": EXECUTE_OPTIONS})
            client.close()
            with lock:
                results.append((status, payload))

        threads = [threading.Thread(target=one_shot) for _ in range(burst)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shed = sum(1 for status, _ in results if status == 429)
        completed = [payload for status, payload in results
                     if status == 200]
        row_sets = {tuple(sorted(map(tuple, payload["rows"])))
                    for payload in completed}
        return {
            "burst": burst,
            "workers": 1,
            "queue_depth": 2,
            "shed_429": shed,
            "completed_200": len(completed),
            "other": len(results) - shed - len(completed),
            "admitted_rows_consistent": len(row_sets) == 1,
        }
    finally:
        server.stop()


def test_serve_report(benchmark):
    """Latency/QPS at 1/2/4 workers + overload shedding → BENCH_serve.json."""
    from conftest import write_json, write_report

    def run():
        payload = {
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "base_rows": BASE_ROWS,
            "detail_rows": DETAIL_ROWS,
            "worker_points": {},
        }
        lines = [
            "== repro.serve closed-loop load (clients={}) ==".format(CLIENTS),
            f"|B|={BASE_ROWS}  |R|={DETAIL_ROWS}",
            f"{'workers':>7} {'workload':<12} {'qps':>8} {'p50 ms':>8} "
            f"{'p99 ms':>8}",
        ]
        for workers in WORKER_POINTS:
            point = _measure_worker_point(workers)
            payload["worker_points"][str(workers)] = point
            for workload in ("rollup_hit", "execute"):
                summary = point[workload]
                lines.append(
                    f"{workers:>7} {workload:<12} {summary['qps']:>8} "
                    f"{summary['p50_ms']:>8} {summary['p99_ms']:>8}"
                )
        payload["overload"] = _measure_overload()
        overload = payload["overload"]
        lines.append(
            f"overload burst={overload['burst']} (1 worker, queue 2): "
            f"{overload['shed_429']} shed with 429, "
            f"{overload['completed_200']} completed"
        )
        return payload, "\n".join(lines)

    payload, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    write_report("serve_load", text)
    write_json("BENCH_serve", payload)

    for workers, point in payload["worker_points"].items():
        for workload in ("rollup_hit", "execute"):
            summary = point[workload]
            assert summary["statuses"] == {
                "200": summary["requests"]
            }, f"workers={workers} {workload}: non-200 under closed loop"
        # Every measured rollup_hit response was served by the store
        # without touching the detail: Prop 4.1 at workload scale.
        rollup = point["rollup_hit"]
        assert rollup["served_by"] == {"rollup": rollup["requests"]}
        assert rollup["detail_scans_total"] == 0
        execute = point["execute"]
        assert execute["served_by"] == {"execute": execute["requests"]}
        assert execute["detail_scans_total"] >= execute["requests"]
    overload = payload["overload"]
    assert overload["shed_429"] >= 1, "burst never shed: queue not bounded"
    assert overload["completed_200"] >= 1
    assert overload["other"] == 0
    assert overload["admitted_rows_consistent"]


# -- CI smoke mode -----------------------------------------------------------


def smoke(url: str, clients: int, requests: int, output: str | None) -> int:
    """Fire the load burst at an externally booted ``repro serve``.

    Asserts every response is 2xx and every warm rollup-served request
    reports zero detail scans; writes a latency report for the CI
    artifact.  Returns a process exit code.
    """
    from urllib.parse import urlsplit

    split = urlsplit(url)
    host, port = split.hostname, split.port
    assert host and port, f"need host:port in url, got {url!r}"

    setup = Client(host, port)
    create_tables(setup, base_rows=20, detail_rows=2000, tenant="smoke")
    body = {"tenant": "smoke", "sql": SQL, "options": ROLLUP_OPTIONS}
    status, warm = setup.post("/query", body)
    assert status == 200, f"warm query failed: {status} {warm}"
    status, probe = setup.post("/query", body)
    assert status == 200 and probe["served_by"] == "rollup", probe
    assert probe["detail_scans"] == 0, probe

    summary = closed_loop(host, port, body, clients=clients,
                          requests_per_client=requests)
    status, metrics = setup.request("GET", "/metrics")
    setup.close()
    assert status == 200
    report = {"burst": summary, "metrics_statuses": metrics["statuses"]}
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if output:
        from pathlib import Path

        Path(output).write_text(text + "\n")

    ok = (summary["statuses"] == {"200": summary["requests"]}
          and summary["served_by"] == {"rollup": summary["requests"]}
          and summary["detail_scans_total"] == 0)
    if not ok:
        print("serve smoke FAILED: non-2xx responses or a rollup-served "
              "request that scanned the detail")
        return 1
    print(f"serve smoke OK: {summary['requests']} requests, all 200, "
          f"all rollup-served, zero detail scans "
          f"(p50={summary['p50_ms']}ms p99={summary['p99_ms']}ms)")
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Closed-loop load generator for repro serve")
    parser.add_argument("--url", required=True,
                        help="base URL of a running repro serve")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=10,
                        help="requests per client")
    parser.add_argument("--output", default=None,
                        help="write the latency report JSON here")
    args = parser.parse_args(argv)
    return smoke(args.url, args.clients, args.requests, args.output)


if __name__ == "__main__":
    raise SystemExit(main())
