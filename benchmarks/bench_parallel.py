"""Multi-core scaling of partitioned GMDJ execution (the Fig. 2 workload).

The Fig. 2 EXISTS workload is scaled up and its translated GMDJ plan is
evaluated sequentially and on worker pools of 1, 2, and 4 workers over a
process pool.  Every parallel result is bag-checked against the
sequential run, the trace-level invariants are enforced strictly
(fragments tile the detail, output ≤ |B|), and a series report lands in
``benchmark_results/parallel_scaling.txt``.

The ≥1.5× speedup assertion at 4 workers only applies where the machine
can physically deliver it — on single-core containers the suite still
verifies correctness, merge exactness, and scan-volume neutrality, and
records the measured ratios for inspection.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import WorkloadCache, write_report
from repro.bench import build_fig2
from repro.gmdj.modes import evaluate_plan_partitioned
from repro.obs.invariants import check_trace
from repro.obs.tracer import Tracer, tracing
from repro.storage import collect
from repro.unnesting import subquery_to_gmdj

WORKER_COUNTS = (1, 2, 4)
PARTITIONS = 4
INNER_SIZE = 24_000


def _build(inner_size):
    workload = build_fig2(inner_size)
    plan = subquery_to_gmdj(workload.query, workload.catalog)
    return workload, plan


_workloads = WorkloadCache(_build)


def _sequential(inner_size):
    workload, plan = _workloads.get(inner_size)
    return plan.evaluate(workload.catalog)


def _parallel(inner_size, workers, executor="process"):
    workload, plan = _workloads.get(inner_size)
    return evaluate_plan_partitioned(
        plan, workload.catalog, PARTITIONS, workers=workers,
        executor=executor,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_matches_sequential(benchmark, workers):
    expected = _sequential(INNER_SIZE)
    result = benchmark.pedantic(
        lambda: _parallel(INNER_SIZE, workers), rounds=1, iterations=1,
    )
    assert expected.bag_equal(result)


def test_parallel_preserves_scan_volume(benchmark):
    def run():
        with collect() as sequential_stats:
            _sequential(INNER_SIZE)
        with collect() as parallel_stats:
            _parallel(INNER_SIZE, 4)
        return sequential_stats, parallel_stats

    sequential_stats, parallel_stats = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )
    assert parallel_stats.tuples_scanned == sequential_stats.tuples_scanned


def test_parallel_invariants_strict(benchmark):
    def run():
        tracer = Tracer()
        with tracing(tracer):
            _parallel(INNER_SIZE, 2, executor="thread")
        return tracer.trace()

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    report = check_trace(trace, strict=True)
    assert report.ok and report.checked >= 2


def test_parallel_scaling_report(benchmark):
    def run():
        timings = {}
        started = time.perf_counter()
        expected = _sequential(INNER_SIZE)
        timings["sequential"] = time.perf_counter() - started
        for workers in WORKER_COUNTS:
            started = time.perf_counter()
            result = _parallel(INNER_SIZE, workers)
            timings[workers] = time.perf_counter() - started
            assert expected.bag_equal(result)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    lines = [
        "Parallel GMDJ scaling — Fig. 2 EXISTS workload "
        f"(inner={INNER_SIZE}, partitions={PARTITIONS}, "
        f"cores={cores})",
        f"{'configuration':>16}  {'time_ms':>10}  {'speedup':>8}",
    ]
    base = timings["sequential"]
    for key in ("sequential", *WORKER_COUNTS):
        label = key if key == "sequential" else f"workers={key}"
        elapsed = timings[key]
        lines.append(
            f"{label:>16}  {elapsed * 1000:>10.1f}  "
            f"{base / elapsed if elapsed else float('inf'):>8.2f}"
        )
    write_report("parallel_scaling", "\n".join(lines))
    if cores >= 2:
        # The acceptance bar: 4 workers at least 1.5x the sequential
        # single-scan run.  Only meaningful with real cores to scale
        # onto; a 1-core container runs the same code GIL/CPU-bound.
        assert base / timings[4] >= 1.5, (
            f"4-worker speedup {base / timings[4]:.2f}x below 1.5x "
            f"on a {cores}-core machine"
        )
