"""A realistic decision-support SQL workload across all strategies.

Complements the per-figure microcosms with end-to-end SQL: parse, bind,
translate, optimize, execute.  Every query runs under every applicable
strategy with answers cross-checked; the report table mirrors the
Section 5 presentation over a workload instead of a single query shape.
"""

from __future__ import annotations

import pytest
from repro import QueryOptions

from conftest import write_report
from repro.data import TpcrSizes, build_tpcr_catalog
from repro.engine import Database, make_executor

STRATEGIES = ("naive", "native", "unnest_join", "gmdj", "gmdj_optimized",
              "cost_based")

QUERIES = {
    "exists_big_order": (
        "SELECT c.custkey FROM customer c WHERE EXISTS "
        "(SELECT * FROM orders o WHERE o.custkey = c.custkey AND "
        "o.totalprice > 350000)"
    ),
    "not_exists_urgent": (
        "SELECT c.custkey FROM customer c WHERE NOT EXISTS "
        "(SELECT * FROM orders o WHERE o.custkey = c.custkey AND "
        "o.orderpriority = '1-URGENT')"
    ),
    "above_segment_avg": (
        "SELECT c.custkey FROM customer c WHERE c.acctbal > "
        "(SELECT AVG(d.acctbal) FROM customer d WHERE "
        "d.mktsegment = c.mktsegment)"
    ),
    "brand_price_leader": (
        "SELECT p.partkey FROM part p WHERE p.retailprice >= ALL "
        "(SELECT q.retailprice FROM part q WHERE q.brand = p.brand)"
    ),
    "nations_with_rich_customers": (
        "SELECT s.suppkey FROM supplier s WHERE s.nationkey IN "
        "(SELECT c.nationkey FROM customer c WHERE c.acctbal > 9000)"
    ),
    "repeat_urgent_buyers": (
        "SELECT c.custkey FROM customer c WHERE 2 <= "
        "(SELECT COUNT(*) FROM orders o WHERE o.custkey = c.custkey "
        "AND o.orderpriority = '1-URGENT')"
    ),
    "order_profile_columns": (
        "SELECT c.custkey, "
        "(SELECT COUNT(*) FROM orders o WHERE o.custkey = c.custkey) n, "
        "(SELECT MAX(o2.totalprice) FROM orders o2 WHERE "
        "o2.custkey = c.custkey) top FROM customer c"
    ),
    "distinct_priorities": (
        "SELECT c.custkey FROM customer c WHERE 3 <= "
        "(SELECT COUNT(DISTINCT o.orderpriority) FROM orders o WHERE "
        "o.custkey = c.custkey)"
    ),
}

_db = None


def _setup() -> Database:
    global _db
    if _db is None:
        db = Database()
        catalog = build_tpcr_catalog(TpcrSizes(
            customers=150, orders=3000, lineitems=100, parts=300,
            suppliers=25,
        ))
        for name in catalog.table_names():
            db.register(name, catalog.table(name))
        db.create_index("orders", "custkey")
        db.create_index("customer", "custkey")
        _db = db
    return _db


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sql_workload(benchmark, query_name, strategy):
    db = _setup()
    plan = db.sql(QUERIES[query_name])
    expected = make_executor(plan, db.catalog, "gmdj")()
    runner = make_executor(plan, db.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(expected), (query_name, strategy)


def test_sql_workload_report(benchmark):
    db = _setup()

    def run():
        lines = ["== SQL workload: time (ms) per strategy =="]
        header = f"{'query':>28s}"
        for strategy in STRATEGIES:
            header += f" | {strategy:>14s}"
        lines.append(header)
        for name in sorted(QUERIES):
            plan = db.sql(QUERIES[name])
            row = f"{name:>28s}"
            reference = None
            for strategy in STRATEGIES:
                report = db.profile(plan, QueryOptions(strategy))
                if reference is None:
                    reference = report.result
                else:
                    assert reference.bag_equal(report.result), (name, strategy)
                row += f" | {report.elapsed_seconds * 1000:14.1f}"
            lines.append(row)
        return "\n".join(lines)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    write_report("sql_workload", text)
