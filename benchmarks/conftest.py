"""Shared helpers for the benchmark suite.

Every figure module builds its workloads once per parameter point (module
cache), benchmarks each (point, strategy) pair as its own pytest-benchmark
case, and emits a paper-style series table via :func:`write_report` — both
printed and saved under ``benchmark_results/`` so the series survives
pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"


def write_report(name: str, text: str) -> Path:
    """Persist one experiment's series table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def write_json(name: str, payload) -> Path:
    """Persist one experiment's machine-readable result set."""
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


class WorkloadCache:
    """Build-once cache for (point → Workload) within a module."""

    def __init__(self, builder):
        self._builder = builder
        self._store = {}

    def get(self, *key):
        if key not in self._store:
            self._store[key] = self._builder(*key)
        return self._store[key]


def pytest_sessionfinish(session, exitstatus):
    """Persist the metrics registry the bench runner fed during the run."""
    from repro.obs.metrics import get_registry

    registry = get_registry()
    if registry:
        RESULTS_DIR.mkdir(exist_ok=True)
        registry.write(RESULTS_DIR / "metrics.json")
