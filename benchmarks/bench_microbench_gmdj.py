"""Micro-benchmarks of the GMDJ evaluator's internal regimes.

Not a paper figure — these pin down the performance characteristics the
figures rely on, at the operator level:

* hash-partitioned vs scan-partitioned θ blocks;
* the invariant-block optimization (uncorrelated θ computed once);
* memory-bounded base chunking: cost steps with ceil(|B|/M);
* partitioned (parallel-style) evaluation vs single scan;
* coalescing width: k blocks in one GMDJ vs k stacked GMDJs.
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import TRUE, col, lit
from repro.algebra.operators import ScanTable
from repro.gmdj import (
    evaluate_gmdj_chunked,
    evaluate_gmdj_partitioned,
    md,
)
from repro.storage import Catalog, DataType, Relation, collect
from repro.data.rng import make_rng

BASE_ROWS = 300
DETAIL_ROWS = 15000
_catalog = None


def _setup() -> Catalog:
    global _catalog
    if _catalog is None:
        rng = make_rng(99, "micro")
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(i, rng.randint(0, 1000)) for i in range(BASE_ROWS)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(rng.randrange(BASE_ROWS), rng.randint(0, 1000))
             for _ in range(DETAIL_ROWS)],
        ))
        _catalog = catalog
    return _catalog


def hash_plan():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt"), agg("sum", col("r.V"), "s")]],
              [col("b.K") == col("r.K")])


def scan_plan():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt")]], [col("b.X") < col("r.V")])


def invariant_plan():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt")]], [col("r.V") > lit(500)])


def test_hash_partitioned_block(benchmark):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: hash_plan().evaluate(catalog), rounds=1, iterations=1
    )
    assert len(result) == BASE_ROWS


def test_scan_partitioned_block(benchmark):
    catalog = _setup()
    # Scan partitioning is the Figure 4 regime: O(|B| x |R|) residual
    # evaluations.  Keep it small enough for a micro-bench.
    small = Catalog()
    small.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        catalog.table("B").rows[:100],
    ))
    small.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        catalog.table("R").rows[:5000],
    ))
    result = benchmark.pedantic(
        lambda: scan_plan().evaluate(small), rounds=1, iterations=1
    )
    assert len(result) == 100


def test_invariant_block_shared(benchmark):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: invariant_plan().evaluate(catalog), rounds=1, iterations=1
    )
    assert len(result) == BASE_ROWS
    with collect() as stats:
        invariant_plan().evaluate(catalog)
    # Shared state: one aggregate update per qualifying detail tuple,
    # not per (base, detail) pair.
    assert stats.aggregate_updates < DETAIL_ROWS + 1


@pytest.mark.parametrize("budget", [50, 100, 300])
def test_chunked_evaluation(benchmark, budget):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: evaluate_gmdj_chunked(hash_plan(), catalog, budget),
        rounds=1, iterations=1,
    )
    assert len(result) == BASE_ROWS


@pytest.mark.parametrize("partitions", [1, 4])
def test_partitioned_evaluation(benchmark, partitions):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: evaluate_gmdj_partitioned(hash_plan(), catalog, partitions),
        rounds=1, iterations=1,
    )
    assert len(result) == BASE_ROWS


@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_coalescing_width(benchmark, width):
    """k θ-blocks in one GMDJ: the scan cost must stay ~flat in k."""
    catalog = _setup()
    blocks = [[count_star(f"c{i}")] for i in range(width)]
    conditions = [
        (col("b.K") == col("r.K")) & (col("r.V") > lit(i * 100))
        for i in range(width)
    ]
    plan = md(ScanTable("B", "b"), ScanTable("R", "r"), blocks, conditions)
    result = benchmark.pedantic(
        lambda: plan.evaluate(catalog), rounds=1, iterations=1
    )
    assert len(result) == BASE_ROWS


def test_microbench_report(benchmark):
    catalog = _setup()

    def run():
        lines = ["== GMDJ micro-benchmarks: scans and updates =="]
        with collect() as stats:
            hash_plan().evaluate(catalog)
        lines.append(f"hash block:      scans={stats.relation_scans} "
                     f"updates={stats.aggregate_updates}")
        with collect() as stats:
            invariant_plan().evaluate(catalog)
        lines.append(f"invariant block: scans={stats.relation_scans} "
                     f"updates={stats.aggregate_updates} (shared)")
        for budget in (50, 150, 300):
            with collect() as stats:
                evaluate_gmdj_chunked(hash_plan(), catalog, budget)
            lines.append(
                f"chunked M={budget:4d}: detail scans="
                f"{stats.relation_scans - 1}"
            )
        with collect() as stats:
            evaluate_gmdj_partitioned(hash_plan(), catalog, 4)
        lines.append(f"partitioned x4:  tuples={stats.tuples_scanned} "
                     f"(equals single-scan volume)")
        return "\n".join(lines)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    write_report("microbench_gmdj", text)
