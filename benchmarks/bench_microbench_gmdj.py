"""Micro-benchmarks of the GMDJ evaluator's internal regimes.

Not a paper figure — these pin down the performance characteristics the
figures rely on, at the operator level:

* hash-partitioned vs scan-partitioned θ blocks;
* the invariant-block optimization (uncorrelated θ computed once);
* memory-bounded base chunking: cost steps with ceil(|B|/M);
* partitioned (parallel-style) evaluation vs single scan;
* coalescing width: k blocks in one GMDJ vs k stacked GMDJs;
* row interpreter vs columnar batch (vectorized) kernel vs the numpy
  whole-array backend, with the machine-readable baseline written to
  ``BENCH_gmdj.json``;
* the 1M-row tier: numpy backend vs row interpreter at scale, plus
  CSV parsing vs memory-mapped binary (.cols) load times.
"""

from __future__ import annotations

import time

import pytest

from conftest import write_json, write_report
from repro.algebra.aggregates import agg, count_star
from repro.algebra.expressions import TRUE, col, lit
from repro.algebra.operators import ScanTable
from repro.gmdj import (
    evaluate_gmdj_chunked,
    evaluate_gmdj_partitioned,
    evaluate_plan_vectorized,
    md,
)
from repro.storage import Catalog, DataType, Relation, collect
from repro.storage.npcolumns import HAVE_NUMPY
from repro.data.rng import make_rng

BASE_ROWS = 300
DETAIL_ROWS = 15000
_catalog = None


def _setup() -> Catalog:
    global _catalog
    if _catalog is None:
        rng = make_rng(99, "micro")
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(i, rng.randint(0, 1000)) for i in range(BASE_ROWS)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(rng.randrange(BASE_ROWS), rng.randint(0, 1000))
             for _ in range(DETAIL_ROWS)],
        ))
        _catalog = catalog
    return _catalog


def hash_plan():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt"), agg("sum", col("r.V"), "s")]],
              [col("b.K") == col("r.K")])


def scan_plan():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt")]], [col("b.X") < col("r.V")])


def invariant_plan():
    return md(ScanTable("B", "b"), ScanTable("R", "r"),
              [[count_star("cnt")]], [col("r.V") > lit(500)])


def test_hash_partitioned_block(benchmark):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: hash_plan().evaluate(catalog), rounds=1, iterations=1
    )
    assert len(result) == BASE_ROWS


def test_scan_partitioned_block(benchmark):
    catalog = _setup()
    # Scan partitioning is the Figure 4 regime: O(|B| x |R|) residual
    # evaluations.  Keep it small enough for a micro-bench.
    small = Catalog()
    small.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        catalog.table("B").rows[:100],
    ))
    small.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        catalog.table("R").rows[:5000],
    ))
    result = benchmark.pedantic(
        lambda: scan_plan().evaluate(small), rounds=1, iterations=1
    )
    assert len(result) == 100


def test_invariant_block_shared(benchmark):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: invariant_plan().evaluate(catalog), rounds=1, iterations=1
    )
    assert len(result) == BASE_ROWS
    with collect() as stats:
        invariant_plan().evaluate(catalog)
    # Shared state: one aggregate update per qualifying detail tuple,
    # not per (base, detail) pair.
    assert stats.aggregate_updates < DETAIL_ROWS + 1


@pytest.mark.parametrize("budget", [50, 100, 300])
def test_chunked_evaluation(benchmark, budget):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: evaluate_gmdj_chunked(hash_plan(), catalog, budget),
        rounds=1, iterations=1,
    )
    assert len(result) == BASE_ROWS


@pytest.mark.parametrize("partitions", [1, 4])
def test_partitioned_evaluation(benchmark, partitions):
    catalog = _setup()
    result = benchmark.pedantic(
        lambda: evaluate_gmdj_partitioned(hash_plan(), catalog, partitions),
        rounds=1, iterations=1,
    )
    assert len(result) == BASE_ROWS


@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_coalescing_width(benchmark, width):
    """k θ-blocks in one GMDJ: the scan cost must stay ~flat in k."""
    catalog = _setup()
    blocks = [[count_star(f"c{i}")] for i in range(width)]
    conditions = [
        (col("b.K") == col("r.K")) & (col("r.V") > lit(i * 100))
        for i in range(width)
    ]
    plan = md(ScanTable("B", "b"), ScanTable("R", "r"), blocks, conditions)
    result = benchmark.pedantic(
        lambda: plan.evaluate(catalog), rounds=1, iterations=1
    )
    assert len(result) == BASE_ROWS


VEC_BASE_ROWS = 200
VEC_DETAIL_ROWS = 100_000
_vec_catalog = None


def _vec_setup() -> Catalog:
    global _vec_catalog
    if _vec_catalog is None:
        rng = make_rng(7, "vectorized")
        catalog = Catalog()
        catalog.create_table("B", Relation.from_columns(
            [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
            [(i, rng.randint(0, 1000)) for i in range(VEC_BASE_ROWS)],
        ))
        catalog.create_table("R", Relation.from_columns(
            [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
            [(rng.randrange(VEC_BASE_ROWS), rng.randint(0, 1000))
             for _ in range(VEC_DETAIL_ROWS)],
        ))
        _vec_catalog = catalog
    return _vec_catalog


def vec_plans():
    """Plan shapes for the row-vs-batch comparison.

    ``hash_residual`` is the headline workload: a hash-partitioned block
    whose residual predicate and three aggregates dominate per-tuple
    interpreter dispatch — the regime the batch kernel targets.
    """
    return {
        "hash_residual": md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c"), agg("sum", col("r.V"), "s"),
              agg("avg", col("r.V"), "a")]],
            [(col("b.K") == col("r.K")) & (col("r.V") > lit(100))
             & (col("r.V") < lit(900))],
        ),
        "invariant": md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c"), agg("sum", col("r.V"), "s")]],
            [col("r.V") > lit(500)],
        ),
        "coalesced_2blocks": md(
            ScanTable("B", "b"), ScanTable("R", "r"),
            [[count_star("c1")], [agg("sum", col("r.V"), "s2")]],
            [col("b.K") == col("r.K"),
             (col("b.K") == col("r.K")) & (col("r.V") > lit(250))],
        ),
    }


def _timed(fn, repeats=3):
    """Best-of-N wall time with the result of the last run."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _certificate_status(plan, catalog, runner) -> str:
    """Run ``runner`` under tracing and cross-check the cost certificate."""
    from repro.lint import certify_plan
    from repro.obs.invariants import check_trace
    from repro.obs.tracer import Tracer, tracing

    tracer = Tracer()
    with tracing(tracer):
        runner()
    report = check_trace(tracer.trace(), certificate=certify_plan(plan))
    return "pass" if not report.violations else "FAIL"


def test_vectorized_vs_row_kernel(benchmark):
    """Acceptance gate: batch kernel ≥ 2x rows/sec on 100k detail rows.

    Both modes must also agree on the IOStats page/tuple accounting
    (the batch kernel is a physical rewrite, not a cost change) and
    pass the static cost-certificate cross-check.
    """
    catalog = _vec_setup()
    plan = vec_plans()["hash_residual"]

    def run():
        with collect() as row_stats:
            row_wall, row_result = _timed(lambda: plan.evaluate(catalog))
        with collect() as vec_stats:
            vec_wall, vec_result = _timed(
                lambda: evaluate_plan_vectorized(plan, catalog)
            )
        return row_wall, vec_wall, row_stats, vec_stats, row_result, vec_result

    row_wall, vec_wall, row_stats, vec_stats, row_result, vec_result = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    assert vec_result.rows == row_result.rows
    assert vec_stats.snapshot() == row_stats.snapshot()
    assert _certificate_status(
        plan, catalog, lambda: plan.evaluate(catalog)) == "pass"
    assert _certificate_status(
        plan, catalog,
        lambda: evaluate_plan_vectorized(plan, catalog)) == "pass"
    speedup = row_wall / vec_wall
    assert speedup >= 2.0, (
        f"vectorized kernel only {speedup:.2f}x over the row interpreter "
        f"(row {row_wall:.3f}s vs batch {vec_wall:.3f}s on "
        f"{VEC_DETAIL_ROWS} detail rows)"
    )


def test_vectorized_report(benchmark):
    """Row vs batch kernel vs numpy backend + committed BENCH_gmdj.json.

    The batch-kernel column runs the python backend; with the numpy
    extra installed a third column runs the whole-array backend of the
    same kernel, held to the same rows **and** IOStats identity.
    """
    catalog = _vec_setup()

    def run():
        payload = {
            "base_rows": VEC_BASE_ROWS,
            "detail_rows": VEC_DETAIL_ROWS,
            "headline": "hash_residual",
            "workloads": {},
        }
        header = (
            f"{'workload':<18} {'row s':>8} {'batch s':>8} "
            f"{'row rows/s':>12} {'batch rows/s':>13} {'speedup':>8}"
        )
        if HAVE_NUMPY:
            header += f" {'numpy s':>8} {'np speedup':>10}"
        lines = [
            "== GMDJ row interpreter vs columnar batch kernel ==",
            f"|B|={VEC_BASE_ROWS}  |R|={VEC_DETAIL_ROWS}  (best of 3)",
            header,
        ]
        for name, plan in vec_plans().items():
            with collect() as row_stats:
                row_wall, row_result = _timed(lambda: plan.evaluate(catalog))
            with collect() as vec_stats:
                vec_wall, vec_result = _timed(
                    lambda: evaluate_plan_vectorized(plan, catalog)
                )
            identical = (
                vec_result.rows == row_result.rows
                and vec_stats.snapshot() == row_stats.snapshot()
            )
            row_rate = VEC_DETAIL_ROWS / row_wall
            vec_rate = VEC_DETAIL_ROWS / vec_wall
            payload["workloads"][name] = {
                "modes": {
                    "row": {
                        "wall_seconds": round(row_wall, 6),
                        "rows_per_sec": round(row_rate, 1),
                    },
                    "gmdj_vectorized": {
                        "wall_seconds": round(vec_wall, 6),
                        "rows_per_sec": round(vec_rate, 1),
                    },
                },
                "speedup": round(row_wall / vec_wall, 2),
                "identical_iostats": identical,
                "certificate": {
                    "row": _certificate_status(
                        plan, catalog, lambda: plan.evaluate(catalog)),
                    "gmdj_vectorized": _certificate_status(
                        plan, catalog,
                        lambda: evaluate_plan_vectorized(plan, catalog)),
                },
            }
            line = (
                f"{name:<18} {row_wall:>8.3f} {vec_wall:>8.3f} "
                f"{row_rate:>12.0f} {vec_rate:>13.0f} "
                f"{row_wall / vec_wall:>7.2f}x"
            )
            if HAVE_NUMPY:
                with collect() as np_stats:
                    np_wall, np_result = _timed(
                        lambda: evaluate_plan_vectorized(
                            plan, catalog, backend="numpy")
                    )
                entry = payload["workloads"][name]
                entry["modes"]["numpy"] = {
                    "wall_seconds": round(np_wall, 6),
                    "rows_per_sec": round(VEC_DETAIL_ROWS / np_wall, 1),
                }
                entry["numpy_speedup"] = round(row_wall / np_wall, 2)
                entry["identical_iostats"] = (
                    identical
                    and np_result.rows == row_result.rows
                    and np_stats.snapshot() == row_stats.snapshot()
                )
                entry["certificate"]["numpy"] = _certificate_status(
                    plan, catalog,
                    lambda: evaluate_plan_vectorized(
                        plan, catalog, backend="numpy"))
                line += f" {np_wall:>8.3f} {row_wall / np_wall:>9.2f}x"
            lines.append(line)
        return payload, "\n".join(lines)

    payload, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    write_report("vectorized_gmdj", text)
    write_json("BENCH_gmdj", payload)
    headline = payload["workloads"][payload["headline"]]
    assert headline["identical_iostats"]
    for mode, status in headline["certificate"].items():
        assert status == "pass", mode


M_BASE_ROWS = 300
M_DETAIL_ROWS = 1_000_000


def _1m_catalog() -> Catalog:
    rng = make_rng(31, "numpy-1m")
    catalog = Catalog()
    catalog.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER)],
        [(i, rng.randint(0, 1000)) for i in range(M_BASE_ROWS)],
    ))
    catalog.create_table("R", Relation.from_columns(
        [("K", DataType.INTEGER), ("V", DataType.INTEGER)],
        [(rng.randrange(M_BASE_ROWS), rng.randint(0, 1000))
         for _ in range(M_DETAIL_ROWS)],
    ))
    return catalog


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs the numpy extra")
def test_numpy_backend_1m_rows(benchmark, tmp_path):
    """The 1M-row tier: numpy backend >= 10x over the row interpreter.

    The detail is served from the binary columnar directory — the
    deployment path for details this size — so ``load_binary`` has
    pre-seeded the encoding cache and the whole-array scan reads the
    memory-mapped NPY buffers directly (no per-query transpose, just
    as a second query over a warm relation would).  Also times loading
    the 1M-row detail from CSV (parse every field) vs from the binary
    directory (mmap + row materialization); all figures land in
    ``BENCH_gmdj.json`` under ``tier_1m``.
    """
    import json

    from conftest import RESULTS_DIR
    from repro.storage import load_binary, save_binary, save_catalog
    from repro.storage.csvio import load_csv

    catalog = _1m_catalog()
    plan = md(
        ScanTable("B", "b"), ScanTable("R", "r"),
        [[count_star("c"), agg("sum", col("r.V"), "s"),
          agg("avg", col("r.V"), "a")]],
        [(col("b.K") == col("r.K")) & (col("r.V") > lit(100))
         & (col("r.V") < lit(900))],
    )

    def run():
        save_catalog(catalog, tmp_path)
        save_binary(catalog.table("R"), tmp_path / "R")
        csv_load, from_csv = _timed(
            lambda: load_csv(tmp_path / "R.csv"), repeats=2)
        mmap_load, loaded = _timed(
            lambda: load_binary(tmp_path / "R.cols"), repeats=2)
        assert len(from_csv) == len(loaded) == M_DETAIL_ROWS

        served = Catalog()
        served.create_table("B", catalog.table("B"))
        served.create_table("R", loaded)
        with collect() as row_stats:
            row_wall, row_result = _timed(
                lambda: plan.evaluate(served), repeats=2)
        with collect() as np_stats:
            np_wall, np_result = _timed(
                lambda: evaluate_plan_vectorized(
                    plan, served, backend="numpy"), repeats=2)
        assert np_result.rows == row_result.rows
        assert np_stats.snapshot() == row_stats.snapshot()
        return row_wall, np_wall, csv_load, mmap_load

    row_wall, np_wall, csv_load, mmap_load = benchmark.pedantic(
        run, rounds=1, iterations=1)
    speedup = row_wall / np_wall
    tier = {
        "base_rows": M_BASE_ROWS,
        "detail_rows": M_DETAIL_ROWS,
        "workload": "hash_residual",
        "modes": {
            "row": {
                "wall_seconds": round(row_wall, 6),
                "rows_per_sec": round(M_DETAIL_ROWS / row_wall, 1),
            },
            "numpy": {
                "wall_seconds": round(np_wall, 6),
                "rows_per_sec": round(M_DETAIL_ROWS / np_wall, 1),
            },
        },
        "numpy_speedup": round(speedup, 2),
        "load_seconds": {
            "csv": round(csv_load, 6),
            "binary_mmap": round(mmap_load, 6),
            "speedup": round(csv_load / mmap_load, 1),
        },
    }
    print(f"1M-row tier: row {row_wall:.3f}s vs numpy {np_wall:.3f}s "
          f"({speedup:.1f}x); load csv {csv_load:.3f}s vs "
          f"mmap {mmap_load:.3f}s ({csv_load / mmap_load:.0f}x)")

    # Graft the tier into the committed baseline next to the 100k table.
    path = RESULTS_DIR / "BENCH_gmdj.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["tier_1m"] = tier
    write_json("BENCH_gmdj", payload)
    assert speedup >= 10.0, (
        f"numpy backend only {speedup:.2f}x over the row interpreter "
        f"(row {row_wall:.3f}s vs numpy {np_wall:.3f}s on "
        f"{M_DETAIL_ROWS} detail rows)"
    )


def test_microbench_report(benchmark):
    catalog = _setup()

    def run():
        lines = ["== GMDJ micro-benchmarks: scans and updates =="]
        with collect() as stats:
            hash_plan().evaluate(catalog)
        lines.append(f"hash block:      scans={stats.relation_scans} "
                     f"updates={stats.aggregate_updates}")
        with collect() as stats:
            invariant_plan().evaluate(catalog)
        lines.append(f"invariant block: scans={stats.relation_scans} "
                     f"updates={stats.aggregate_updates} (shared)")
        for budget in (50, 150, 300):
            with collect() as stats:
                evaluate_gmdj_chunked(hash_plan(), catalog, budget)
            lines.append(
                f"chunked M={budget:4d}: detail scans="
                f"{stats.relation_scans - 1}"
            )
        with collect() as stats:
            evaluate_gmdj_partitioned(hash_plan(), catalog, 4)
        lines.append(f"partitioned x4:  tuples={stats.tuples_scanned} "
                     f"(equals single-scan volume)")
        return "\n".join(lines)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    write_report("microbench_gmdj", text)
