"""Figure 5 — two tree-nested EXISTS predicates, with and without indexes.

Paper setup: a 1000-row outer block with two EXISTS subqueries over
300k→1.2M-row tables whose disjoint filter predicates prevent the join
plans from being combined.  Paper results: native does well **only**
when the correlation attributes are indexed (an order of magnitude worse
without); the join plan needs two large joins and suffers, badly so
without indexes; the GMDJ is essentially unaffected by dropping indexes,
and the coalescing-optimized GMDJ (both subqueries in one scan) beats
even the specialized native EXISTS evaluation.

Here: outer 200, inner 6k→24k, each strategy measured indexed and
unindexed.
"""

from __future__ import annotations

import pytest

from conftest import WorkloadCache, write_report
from repro.bench import (
    FIG5_INNER_SIZES,
    build_fig5,
    compare_strategies,
    print_series,
)
from repro.engine import make_executor

INDEXED = ("native", "unnest_join", "gmdj", "gmdj_optimized")
UNINDEXED = ("native_noindex", "unnest_join_noindex", "gmdj_optimized")

_workloads = WorkloadCache(lambda size, indexes: build_fig5(size, indexes=indexes))
_reference = {}


def _expected(size, indexes):
    key = (size, indexes)
    if key not in _reference:
        workload = _workloads.get(size, indexes)
        _reference[key] = make_executor(
            workload.query, workload.catalog, "gmdj"
        )()
    return _reference[key]


@pytest.mark.parametrize("inner_size", FIG5_INNER_SIZES)
@pytest.mark.parametrize("strategy", INDEXED)
def test_fig5_indexed(benchmark, inner_size, strategy):
    workload = _workloads.get(inner_size, True)
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(_expected(inner_size, True))


@pytest.mark.parametrize("inner_size", FIG5_INNER_SIZES)
@pytest.mark.parametrize("strategy", UNINDEXED)
def test_fig5_unindexed(benchmark, inner_size, strategy):
    workload = _workloads.get(inner_size, False)
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(_expected(inner_size, False))


def test_fig5_series_report(benchmark):
    strategies = list(dict.fromkeys(INDEXED + UNINDEXED))

    def run():
        results = []
        for size in FIG5_INNER_SIZES:
            indexed = compare_strategies(_workloads.get(size, True), list(INDEXED))
            unindexed = compare_strategies(
                _workloads.get(size, False), list(UNINDEXED)
            )
            indexed.reports.update(unindexed.reports)
            results.append(indexed)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = print_series(
        "Figure 5: tree-nested EXISTS (paper: 1000 outer over 300k-1.2M, "
        "indexed vs unindexed)",
        results, strategies, x_label="inner size",
    )
    write_report("fig5_tree_exists", text)
    for result in results:
        # Paper shape: dropping indexes barely moves the GMDJ but makes
        # the native strategy pay for full inner scans per outer tuple.
        native_idx = result.reports["native"].total_work
        native_noidx = result.reports["native_noindex"].total_work
        assert native_noidx > native_idx * 5
        # Coalescing folds both EXISTS blocks into one detail scan.
        optimized = result.reports["gmdj_optimized"].counters["relation_scans"]
        basic = result.reports["gmdj"].counters["relation_scans"]
        assert optimized < basic
