"""Ablation D — invariant-block reuse (Rao & Ross, generalized by GMDJs).

The paper names "the reuse of invariants [23]" as one of the subquery
optimizations the GMDJ framework generalizes.  An *uncorrelated* subquery
block (θ references only the detail relation) has the same range for
every base tuple; the evaluator computes its aggregates once and shares
the state.  This ablation measures the effect on a workload mixing one
correlated and one uncorrelated subquery.
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.algebra.expressions import col, lit
from repro.algebra.nested import Exists, NestedSelect, Subquery
from repro.algebra.operators import ScanTable
from repro.data.tpcr import generate_customer, generate_orders
from repro.engine import make_executor
from repro.gmdj.evaluate import invariant_sharing
from repro.storage import Catalog, collect

OUTER = 400
INNER = 8000
_catalog = None


def _setup() -> Catalog:
    global _catalog
    if _catalog is None:
        catalog = Catalog()
        catalog.create_table("customer", generate_customer(OUTER, seed=77))
        catalog.create_table(
            "orders", generate_orders(INNER, OUTER, seed=77)
        )
        _catalog = catalog
    return _catalog


def query():
    correlated = Exists(Subquery(
        ScanTable("orders", "o1"),
        (col("o1.custkey") == col("c.custkey"))
        & (col("o1.totalprice") > lit(200000.0)),
    ))
    uncorrelated = Exists(Subquery(
        ScanTable("orders", "o2"),
        col("o2.totalprice") > lit(449000.0),
    ))
    return NestedSelect(ScanTable("customer", "c"),
                        correlated & uncorrelated)


@pytest.mark.parametrize("sharing", (True, False),
                         ids=("shared", "per-tuple"))
def test_invariant_sharing(benchmark, sharing):
    catalog = _setup()
    runner = make_executor(query(), catalog, "gmdj")

    def run():
        with invariant_sharing(sharing):
            return runner()

    baseline = make_executor(query(), catalog, "naive")()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.bag_equal(baseline)


def test_invariant_ablation_report(benchmark):
    catalog = _setup()
    runner = make_executor(query(), catalog, "gmdj")

    def run():
        measurements = {}
        for sharing in (True, False):
            with invariant_sharing(sharing), collect() as stats:
                runner()
            measurements[sharing] = stats.snapshot()
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    shared = measurements[True]
    per_tuple = measurements[False]
    lines = [
        "== Ablation D: invariant-block reuse (uncorrelated subquery) ==",
        f"aggregate updates: shared={shared['aggregate_updates']} "
        f"per-tuple={per_tuple['aggregate_updates']}",
        f"predicate evals:   shared={shared['predicate_evals']} "
        f"per-tuple={per_tuple['predicate_evals']}",
    ]
    text = "\n".join(lines)
    print(text)
    write_report("ablation_invariants", text)
    # Sharing collapses the uncorrelated block's work from |B| x matches
    # to just matches.
    assert shared["predicate_evals"] * 10 < per_tuple["predicate_evals"]