"""Figure 4 — quantified comparison predicate ALL with a ``<>`` correlation.

Paper setup: inner and outer tables of 40k/80k/120k/160k rows, the
correlation predicate a ``<>`` on key attributes.  Paper results: join
unnesting is infeasible (>7 hours at even 20k rows); the native engine's
*smart nested loop* (discard the outer tuple on the first falsifying
inner tuple) does well; the basic GMDJ degrades toward tuple-iteration
cost; the GMDJ with base-tuple completion is competitive again.

Here: 400/800/1200/1600 rows.  Join unnesting runs only at the two
smallest points (the O(n²) anti join stands in for the paper's 7-hour
measurement and is reported as infeasible beyond).
"""

from __future__ import annotations

import pytest

from conftest import WorkloadCache, write_report
from repro.bench import FIG4_SIZES, build_fig4, compare_strategies, print_series
from repro.engine import make_executor

STRATEGIES = ("native", "unnest_join", "gmdj", "gmdj_optimized")
JOIN_CUTOFF = FIG4_SIZES[1]  # join unnesting only below/at this size
_workloads = WorkloadCache(build_fig4)
_reference = {}


def _expected(size):
    if size not in _reference:
        workload = _workloads.get(size)
        _reference[size] = make_executor(
            workload.query, workload.catalog, "gmdj_optimized"
        )()
    return _reference[size]


def _strategies_for(size):
    if size > JOIN_CUTOFF:
        return [s for s in STRATEGIES if s != "unnest_join"]
    return list(STRATEGIES)


@pytest.mark.parametrize("size", FIG4_SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig4_all(benchmark, size, strategy):
    if strategy == "unnest_join" and size > JOIN_CUTOFF:
        pytest.skip(
            "join unnesting is infeasible at this size (paper: >7h at 20k)"
        )
    workload = _workloads.get(size)
    runner = make_executor(workload.query, workload.catalog, strategy)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert result.bag_equal(_expected(size))


def test_fig4_series_report(benchmark):
    def run():
        return [
            compare_strategies(_workloads.get(size), _strategies_for(size))
            for size in FIG4_SIZES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = print_series(
        "Figure 4: quantified ALL with <> correlation (paper: 40k-160k; "
        "join unnesting infeasible beyond the smallest sizes)",
        results, STRATEGIES, x_label="table size",
    )
    write_report("fig4_all", text)
    for result in results:
        basic = result.reports["gmdj"].total_work
        optimized = result.reports["gmdj_optimized"].total_work
        # Paper shape: completion rescues the GMDJ on this workload.
        assert optimized * 1.5 < basic
