"""repro — GMDJ-based subquery processing for complex OLAP.

A from-scratch reproduction of *Efficient Computation of Subqueries in
Complex OLAP* (Akinde & Böhlen, ICDE 2003): an in-memory relational engine
whose subquery evaluation is built on the Generalized Multi-Dimensional
Join (GMDJ) operator and counting, together with the conventional
baselines the paper compares against.

Quickstart::

    from repro import Database, DataType

    db = Database()
    db.create_table("Flow", [("SourceIP", DataType.STRING),
                             ("NumBytes", DataType.INTEGER)],
                    [("10.0.0.1", 100), ("10.0.0.2", 50)])
    result = db.execute_sql(
        "SELECT SourceIP FROM Flow f WHERE NOT EXISTS "
        "(SELECT * FROM Flow g WHERE g.NumBytes > f.NumBytes)")
    print(result.pretty())
"""

from repro.algebra import (
    AggregateSpec,
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    agg,
    col,
    count_star,
    in_predicate,
    lit,
    not_in_predicate,
    project,
    scan,
    select,
)
from repro.engine import (
    BatchReport,
    BatchResult,
    Database,
    ExecutionReport,
    QueryOptions,
    STRATEGIES,
    execute,
    profile,
)
from repro.errors import (
    CertificateViolation,
    InvariantViolation,
    LintError,
    ReproError,
)
from repro.gmdj import GMDJ, md, optimize_plan
from repro.lint import CostCertificate, LintReport, certify_plan, lint_plan
from repro.obs import Explain, Tracer, check_trace, explain_analyze, tracing
from repro.storage import Catalog, DataType, Relation, Schema, collect
from repro.unnesting import subquery_to_gmdj

__version__ = "1.0.0"

__all__ = [
    "AggregateSpec",
    "BatchReport",
    "BatchResult",
    "Catalog",
    "CostCertificate",
    "Database",
    "DataType",
    "ExecutionReport",
    "Exists",
    "Explain",
    "GMDJ",
    "CertificateViolation",
    "InvariantViolation",
    "LintError",
    "LintReport",
    "NestedSelect",
    "QuantifiedComparison",
    "QueryOptions",
    "Relation",
    "ReproError",
    "STRATEGIES",
    "ScalarComparison",
    "Schema",
    "Subquery",
    "Tracer",
    "agg",
    "certify_plan",
    "check_trace",
    "col",
    "collect",
    "count_star",
    "execute",
    "explain_analyze",
    "in_predicate",
    "lint_plan",
    "lit",
    "md",
    "not_in_predicate",
    "optimize_plan",
    "profile",
    "project",
    "scan",
    "select",
    "subquery_to_gmdj",
    "tracing",
    "__version__",
]
