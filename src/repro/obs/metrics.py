"""A lightweight metrics registry: counters and fixed-bucket histograms.

The bench runner and the fuzzer feed a process-wide registry so a
campaign or sweep leaves queryable aggregates behind (run counts,
latency distributions, divergence totals) without any dependency on an
external metrics library.  Everything is plain dicts and lists;
:meth:`MetricsRegistry.write` emits the JSON file that lands alongside
``benchmark_results/``.

Histograms use *fixed* bucket bounds chosen at creation: observation is
a linear scan over ~a dozen bounds (cheap, allocation-free) and two
histograms with the same bounds are directly comparable across runs.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Default latency bounds, in milliseconds (upper-inclusive edges); the
#: final bucket is the +Inf overflow.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_json(self) -> int:
        return self.value


class Histogram:
    """Fixed-bucket histogram with count and sum."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS):
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": round(self.total, 6),
        }


class MetricsRegistry:
    """Named counters and histograms, lazily created on first use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def __bool__(self) -> bool:
        return bool(self.counters or self.histograms)

    def to_json(self) -> dict:
        return {
            "counters": {
                name: counter.to_json()
                for name, counter in sorted(self.counters.items())
            },
            "histograms": {
                name: histogram.to_json()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """A compact text summary (one line per metric)."""
        lines = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name} = {counter.value}")
        for name, histogram in sorted(self.histograms.items()):
            lines.append(
                f"{name}: n={histogram.count} mean={histogram.mean:.2f} "
                f"sum={histogram.total:.2f}"
            )
        return "\n".join(lines)

    def write(self, path) -> Path:
        """Persist the registry as JSON; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()


#: The process-wide registry the bench and fuzz runners feed.
_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _default
