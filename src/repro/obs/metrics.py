"""A lightweight metrics registry: counters and fixed-bucket histograms.

The bench runner and the fuzzer feed a process-wide registry so a
campaign or sweep leaves queryable aggregates behind (run counts,
latency distributions, divergence totals) without any dependency on an
external metrics library.  Everything is plain dicts and lists;
:meth:`MetricsRegistry.write` emits the JSON file that lands alongside
``benchmark_results/``.

Histograms use *fixed* bucket bounds chosen at creation: observation is
a linear scan over ~a dozen bounds (cheap, allocation-free) and two
histograms with the same bounds are directly comparable across runs.

Concurrency: :func:`get_registry` resolves through a ``ContextVar`` —
the same isolation the tracer and IOStats already use — so a request
handler that installs a :class:`metrics_scope` gets a private registry
for everything recorded inside it (including code it calls that fetches
the "global" registry, e.g. the rollup store's hit/miss counters).
Interleaved requests therefore never interleave increments on one
registry; on scope exit the private registry is merged into the
enclosing one under a lock, so process-wide totals still accumulate.
"""

from __future__ import annotations

import json
import threading
from contextvars import ContextVar
from pathlib import Path

#: Default latency bounds, in milliseconds (upper-inclusive edges); the
#: final bucket is the +Inf overflow.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_json(self) -> int:
        return self.value


class Histogram:
    """Fixed-bucket histogram with count and sum."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS):
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": round(self.total, 6),
        }


class MetricsRegistry:
    """Named counters and histograms, lazily created on first use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def __bool__(self) -> bool:
        return bool(self.counters or self.histograms)

    def to_json(self) -> dict:
        return {
            "counters": {
                name: counter.to_json()
                for name, counter in sorted(self.counters.items())
            },
            "histograms": {
                name: histogram.to_json()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """A compact text summary (one line per metric)."""
        lines = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name} = {counter.value}")
        for name, histogram in sorted(self.histograms.items()):
            lines.append(
                f"{name}: n={histogram.count} mean={histogram.mean:.2f} "
                f"sum={histogram.total:.2f}"
            )
        return "\n".join(lines)

    def write(self, path) -> Path:
        """Persist the registry as JSON; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's observations into this one.

        Counters add.  Histograms with identical bounds add bucketwise;
        a bounds mismatch (two call sites naming one histogram with
        different buckets) still folds count and sum so totals survive,
        but the incomparable buckets are left alone.  Guarded by a
        process-wide lock because scope exits may merge from concurrent
        request threads.
        """
        with _merge_lock:
            for name, counter in other.counters.items():
                self.counter(name).inc(counter.value)
            for name, histogram in other.histograms.items():
                mine = self.histogram(name, histogram.bounds)
                mine.count += histogram.count
                mine.total += histogram.total
                if mine.bounds == histogram.bounds:
                    for index, bucket in enumerate(histogram.bucket_counts):
                        mine.bucket_counts[index] += bucket


#: The process-wide registry the bench and fuzz runners feed.
_default = MetricsRegistry()

_merge_lock = threading.Lock()

#: A per-context override of the process registry (see
#: :class:`metrics_scope`); ``None`` means "use the process default".
_scope_var: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics_scope", default=None
)


def get_registry() -> MetricsRegistry:
    """The active registry: the innermost scope's, else the process one."""
    scoped = _scope_var.get()
    return scoped if scoped is not None else _default


class metrics_scope:
    """Context manager isolating metrics to one request/region.

    Installs a fresh registry as the context's active one; every
    ``get_registry()`` call inside the scope (same thread *or* a thread
    the context was copied into) records there.  On exit the private
    registry is merged into whatever registry was active before, so
    process-wide aggregates keep accumulating — the scope only removes
    the *interleaving*, not the data.

    >>> with metrics_scope() as scoped:
    ...     get_registry().counter("demo").inc()
    ...     scoped.counters["demo"].value
    1
    """

    def __init__(self, merge: bool = True):
        self.registry = MetricsRegistry()
        self._merge = merge
        self._token = None

    def __enter__(self) -> MetricsRegistry:
        self._token = _scope_var.set(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        _scope_var.reset(self._token)
        if self._merge:
            get_registry().merge(self.registry)
