"""Observability: operator-level tracing, invariant checking, metrics.

The paper's argument is a *cost* argument — a coalesced GMDJ consumes
the detail relation in a single scan (Prop. 4.1) and its output is
bounded by |B| (Def. 2.1), with base-tuple completion adding no scans
(Thms. 4.1/4.2).  The ambient :class:`~repro.storage.iostats.IOStats`
counters measure total work per query; this package attributes that
work to the operator that did it and mechanically checks the paper's
guarantees at runtime:

* :mod:`repro.obs.tracer` — a span tree.  Every planner strategy, GMDJ
  evaluation, pushdown copy, coalesce pass, chunk, and partition opens
  a span recording wall-clock plus a delta snapshot of the ambient
  IOStats counters.  Tracing is off by default and the disabled path is
  a single module-global check, so instrumentation costs nothing.
* :mod:`repro.obs.invariants` — a checker that walks finished traces
  and asserts the cost claims, raising
  :class:`~repro.errors.InvariantViolation` in strict mode.
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE rendering: the plan tree
  annotated with per-span counter deltas and times, plus JSON export.
* :mod:`repro.obs.metrics` — a lightweight registry of counters and
  fixed-bucket histograms fed by the bench and fuzz runners.
"""

from repro.obs.explain import (
    Explain,
    explain_analyze,
    explain_analyze_json,
    explain_batch,
    explain_report,
)
from repro.obs.invariants import (
    InvariantReport,
    check_capabilities,
    check_trace,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_scope,
)
from repro.obs.tracer import (
    Span,
    Trace,
    Tracer,
    span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Explain",
    "Histogram",
    "InvariantReport",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "check_capabilities",
    "check_trace",
    "explain_analyze",
    "explain_analyze_json",
    "explain_batch",
    "explain_report",
    "get_registry",
    "metrics_scope",
    "span",
    "tracing",
    "tracing_enabled",
]
