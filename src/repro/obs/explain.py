"""EXPLAIN ANALYZE: plan text plus a measured, attributed span tree.

``EXPLAIN`` (the existing :func:`repro.algebra.printer.explain`) shows
what the planner *intends*; ``EXPLAIN ANALYZE`` executes the query
under tracing and shows what actually happened — per-span wall-clock
and IOStats counter deltas — then runs the invariant checker over the
trace so the paper's cost claims are verified on every analyzed query.

All entry points accept a :class:`~repro.engine.options.QueryOptions`
(or a plain strategy string), so analyzed runs cover the chunked and
partitioned GMDJ modes — including multi-worker runs, whose worker span
subtrees are grafted back into the coordinator trace.

For the coalescing strategies (``auto``, ``gmdj_optimized``,
``gmdj_coalesce``) the renderer derives the Prop. 4.1 expectation
automatically: any stored table that is the detail of exactly one GMDJ
in the optimized plan must be detail-scanned exactly once at runtime.
"""

from __future__ import annotations

from repro.obs.invariants import InvariantReport, check_trace

#: Strategies whose plans claim coalesced (single-scan) evaluation.
COALESCING_STRATEGIES = frozenset({"auto", "gmdj_optimized", "gmdj_coalesce"})


def derive_single_scan_tables(plan) -> frozenset[str]:
    """Tables that a coalesced plan promises to detail-scan exactly once.

    A stored table appearing as the detail of exactly one GMDJ node is
    scanned once per Prop. 4.1; a table feeding several GMDJs (a plan
    the optimizer could not merge) makes no single-scan promise.
    """
    from repro.algebra.operators import ScanTable
    from repro.gmdj.operator import GMDJ

    counts: dict[str, int] = {}

    def visit(node) -> None:
        if isinstance(node, GMDJ) and isinstance(node.detail, ScanTable):
            name = node.detail.table_name
            counts[name] = counts.get(name, 0) + 1
        for child in node.children():
            visit(child)

    visit(plan)
    return frozenset(name for name, count in counts.items() if count == 1)


def _coerce(options):
    from repro.engine.options import QueryOptions

    return QueryOptions.of(options)


def _label(options) -> str:
    """The human-facing ``strategy=... [mode=...]`` header fragment."""
    label = f"strategy={options.strategy}"
    canonical = options.canonical()
    if canonical.mode is not None:
        label += f" mode={canonical.mode}"
    if canonical.rollup is not None:
        label += f" rollup={canonical.rollup}"
    return label


def executed_summary(trace) -> dict:
    """What actually ran, read off the finished trace.

    Returns a dict with the executed ``strategy`` and ``mode`` (from the
    planner's ``query`` span — this reflects ``auto``/``cost_based``
    resolution and the ``REPRO_MODE`` environment hook, which the
    requested options alone cannot show) plus, for vectorized scans, the
    total batch ``chunks`` processed and the ``chunk_size`` in effect.
    """
    summary: dict = {}
    for span_ in trace.walk():
        if span_.kind == "query":
            summary["strategy"] = span_.attrs.get("strategy")
            if "mode" in span_.attrs:
                summary["mode"] = span_.attrs["mode"]
        elif span_.kind == "detail_scan" and span_.attrs.get("vectorized"):
            summary["chunks"] = (
                summary.get("chunks", 0) + span_.attrs.get("chunks", 0)
            )
            if "chunk_size" in span_.attrs:
                summary["chunk_size"] = span_.attrs["chunk_size"]
        elif span_.kind == "rollup_hit":
            tier = span_.attrs.get("tier")
            key = ("rollup_exact_hits" if tier == "exact"
                   else "rollup_subsume_hits")
            summary[key] = summary.get(key, 0) + 1
        elif span_.kind == "rollup_miss":
            summary["rollup_misses"] = summary.get("rollup_misses", 0) + 1
    return summary


def rollup_summary(trace) -> str | None:
    """A one-line account of which serving tier answered, or None.

    ``None`` when the rollup tier was not active (no rollup spans in the
    trace); otherwise hit/miss counts plus a verdict: fully served from
    the store, partially served, or computed by detail scan.
    """
    executed = executed_summary(trace)
    exact = executed.get("rollup_exact_hits", 0)
    subsume = executed.get("rollup_subsume_hits", 0)
    misses = executed.get("rollup_misses", 0)
    if not (exact or subsume or misses):
        return None
    if misses == 0:
        if subsume and exact:
            tier = "served from rollup store (exact + subsumption)"
        elif subsume:
            tier = "served from rollup store (subsumption)"
        else:
            tier = "served from rollup store (exact)"
    elif exact or subsume:
        tier = "partially served from rollup store"
    else:
        tier = "computed by detail scan (rollups stored)"
    return (f"rollup: exact={exact} subsume={subsume} miss={misses}"
            f" — {tier}")


def static_report(db, query, options="auto"):
    """Lint + cost-certify the plan the given options would execute.

    Returns ``(lint_report, certificate)`` — the
    :class:`~repro.lint.diagnostics.LintReport` and
    :class:`~repro.lint.cost.CostCertificate` of the same plan
    ``db.explain`` renders for these options.
    """
    from repro.lint import certify_plan, lint_plan

    options = _coerce(options)
    resolved = options.canonical().strategy
    plan = query
    if resolved in ("auto", "gmdj_optimized"):
        from repro.unnesting.translate import subquery_to_gmdj

        plan = subquery_to_gmdj(query, db.catalog, optimize=True)
    elif resolved in ("gmdj", "gmdj_coalesce", "gmdj_completion"):
        from repro.unnesting.translate import subquery_to_gmdj

        plan = subquery_to_gmdj(query, db.catalog)
    return lint_plan(plan, db.catalog), certify_plan(plan)


def _certifiable(canonical) -> bool:
    """True when the run's span tree matches the static cost certificate.

    Plain mode trivially does.  Vectorized mode does too *unless* it is
    composed with base-chunking or partitioning, which multiply the
    per-GMDJ detail scans / change the owning span kinds.  A run with
    the rollup tier active is never certifiable: a rollup hit answers a
    GMDJ with *zero* gmdj/detail_scan spans, so the static certificate's
    counts cannot match (the dedicated rollup invariant — zero detail
    scans under every hit — covers that case instead).
    """
    if canonical.rollup is not None:
        return False
    if canonical.mode is None:
        return True
    return (
        canonical.mode == "gmdj_vectorized"
        and canonical.chunk_budget is None
        and canonical.partitions is None
        and canonical.workers is None
    )


def analyze(db, query, options="auto", strict: bool = False):
    """Execute ``query`` under tracing and check invariants.

    Returns ``(report, invariants, single_scan_tables)`` where
    ``report`` is the traced
    :class:`~repro.engine.reports.ExecutionReport` and ``invariants``
    the :class:`~repro.obs.invariants.InvariantReport`.  For
    coalescing strategies in plain mode — and in single-scan vectorized
    mode, whose batch kernel emits the same gmdj/detail_scan span
    structure and counts — the statically derived
    :class:`~repro.lint.cost.CostCertificate` is cross-checked against
    the trace (chunked/partitioned runs produce different span kinds,
    so their exact counts are not comparable).
    """
    options = _coerce(options)
    canonical = options.canonical()
    expectations: frozenset[str] = frozenset()
    certificate = None
    if canonical.strategy in COALESCING_STRATEGIES:
        from repro.lint import certify_plan
        from repro.unnesting.translate import subquery_to_gmdj

        plan = subquery_to_gmdj(query, db.catalog, optimize=True)
        expectations = derive_single_scan_tables(plan)
        if _certifiable(canonical):
            certificate = certify_plan(plan)
    report = db._run(query, options.with_trace(True), profiled=True)
    invariants = check_trace(
        report.trace, single_scan_tables=expectations, strict=strict,
        certificate=certificate,
    )
    return report, invariants, expectations


def explain_analyze(db, query, options="auto", strict: bool = False) -> str:
    """The full EXPLAIN ANALYZE text: plan, trace, counters, invariants."""
    options = _coerce(options)
    plan_text = db.explain(query, options)
    report, invariants, expectations = analyze(db, query, options, strict)
    counters = ", ".join(
        f"{key}={value}"
        for key, value in sorted(report.counters.items())
        if value
    )
    executed = executed_summary(report.trace)
    lines = [
        plan_text,
        "",
        f"-- EXPLAIN ANALYZE ({_label(options)})",
        report.trace.render(),
        f"-- rows: {report.row_count}  "
        f"time: {report.elapsed_seconds * 1000:.2f} ms",
        f"-- {counters}",
    ]
    if executed:
        lines.append(
            "-- executed: "
            + " ".join(f"{key}={value}"
                       for key, value in executed.items())
        )
    rollup = rollup_summary(report.trace)
    if rollup is not None:
        lines.append(f"-- {rollup}")
    if expectations:
        lines.append(
            "-- single-scan expectation: "
            + ", ".join(sorted(expectations))
        )
    lint, certificate = static_report(db, query, options)
    lines.append(f"-- lint: {lint.summary()}")
    lines.extend(f"--   {d.render()}" for d in lint.sorted())
    lines.append(f"-- {certificate.summary()}")
    lines.append(f"-- {invariants.summary()}")
    return "\n".join(lines)


def explain_analyze_json(db, query, options="auto",
                         strict: bool = False) -> dict:
    """Machine-readable EXPLAIN ANALYZE (the ``--json`` trace export)."""
    options = _coerce(options)
    plan_text = db.explain(query, options)
    report, invariants, expectations = analyze(db, query, options, strict)
    lint, certificate = static_report(db, query, options)
    canonical = options.canonical()
    return {
        "strategy": options.strategy,
        "mode": canonical.mode,
        "rollup": canonical.rollup,
        "executed": executed_summary(report.trace),
        "plan": plan_text,
        "rows": report.row_count,
        "elapsed_ms": round(report.elapsed_seconds * 1000, 3),
        "counters": {
            key: value for key, value in sorted(report.counters.items())
            if value
        },
        "single_scan_expectation": sorted(expectations),
        "lint": lint.to_json(),
        "certificate": certificate.to_json(),
        "invariants": {
            "checked": invariants.checked,
            "violations": list(invariants.violations),
        },
        "trace": report.trace.to_json(),
    }


__all__ = [
    "COALESCING_STRATEGIES",
    "InvariantReport",
    "analyze",
    "derive_single_scan_tables",
    "executed_summary",
    "explain_analyze",
    "explain_analyze_json",
    "rollup_summary",
    "static_report",
]
