"""EXPLAIN, unified: one report object behind every explain entry point.

:class:`Explain` is what ``Database.explain`` / ``explain_analyze`` /
the CLI's ``repro explain`` all return now — a ``str`` subclass (so
every caller that printed or compared the old plan text keeps working)
carrying a machine-readable payload behind ``.json()``:

* :func:`explain_report` — the plan the options would execute; with
  ``analyze=True`` it executes **once** under tracing and derives both
  the rendered text and the JSON trace export from that single run
  (the old ``explain_analyze`` / ``explain_analyze_json`` pair executed
  separately; they are thin wrappers now);
* :func:`explain_batch` — the batch variant: the share groups the MQO
  planner (:mod:`repro.engine.mqo`) would form, each group's coalesced
  plan and single-scan certificate, and the singleton plans — without
  executing anything.

``EXPLAIN ANALYZE`` shows what actually happened — per-span wall-clock
and IOStats counter deltas — then runs the invariant checker over the
trace so the paper's cost claims are verified on every analyzed query.
Multi-worker runs' span subtrees are grafted back into the coordinator
trace.  For the coalescing strategies (``auto``, ``gmdj_optimized``,
``gmdj_coalesce``) the renderer derives the Prop. 4.1 expectation
automatically: any stored table that is the detail of exactly one GMDJ
in the optimized plan must be detail-scanned exactly once at runtime.
"""

from __future__ import annotations

from repro.obs.invariants import InvariantReport, check_trace


class Explain(str):
    """An EXPLAIN report: plan text that also carries structured data.

    Being a ``str`` subclass, an ``Explain`` prints, compares, and
    JSON-serializes exactly like the plain plan text the old entry
    points returned; ``.json()`` exposes the structured payload
    (strategy, lint, certificate, and — for analyzed runs — the full
    trace export) without a second execution.
    """

    payload: dict

    def __new__(cls, text: str, payload: dict) -> "Explain":
        self = super().__new__(cls, text)
        self.payload = payload
        return self

    def text(self) -> str:
        """The rendered report (identical to ``str(self)``)."""
        return str(self)

    def json(self) -> dict:
        """The machine-readable payload behind the text rendering."""
        return self.payload

#: Strategies whose plans claim coalesced (single-scan) evaluation.
COALESCING_STRATEGIES = frozenset({"auto", "gmdj_optimized", "gmdj_coalesce"})


def derive_single_scan_tables(plan) -> frozenset[str]:
    """Tables that a coalesced plan promises to detail-scan exactly once.

    A stored table appearing as the detail of exactly one GMDJ node is
    scanned once per Prop. 4.1; a table feeding several GMDJs (a plan
    the optimizer could not merge) makes no single-scan promise.
    """
    from repro.algebra.operators import ScanTable
    from repro.gmdj.operator import GMDJ

    counts: dict[str, int] = {}

    def visit(node) -> None:
        if isinstance(node, GMDJ) and isinstance(node.detail, ScanTable):
            name = node.detail.table_name
            counts[name] = counts.get(name, 0) + 1
        for child in node.children():
            visit(child)

    visit(plan)
    return frozenset(name for name, count in counts.items() if count == 1)


def _coerce(options):
    from repro.engine.options import QueryOptions

    return QueryOptions.of(options)


def _label(options) -> str:
    """The human-facing ``strategy=... [mode=...]`` header fragment."""
    label = f"strategy={options.strategy}"
    canonical = options.canonical()
    if canonical.mode is not None:
        label += f" mode={canonical.mode}"
    if canonical.rollup is not None:
        label += f" rollup={canonical.rollup}"
    return label


def executed_summary(trace) -> dict:
    """What actually ran, read off the finished trace.

    Returns a dict with the executed ``strategy`` and ``mode`` (from the
    planner's ``query`` span — this reflects ``auto``/``cost_based``
    resolution and the ``REPRO_MODE`` environment hook, which the
    requested options alone cannot show) plus, for vectorized scans, the
    total batch ``chunks`` processed and the ``chunk_size`` in effect.
    When a non-default array-kernel ``backend`` ran, the summary names
    it and lists every per-operator ``fallbacks`` reason the scans
    recorded (a block or aggregate the numpy kernel handed back to the
    python kernel).
    """
    summary: dict = {}
    fallbacks: list[str] = []
    for span_ in trace.walk():
        if span_.kind == "query":
            summary["strategy"] = span_.attrs.get("strategy")
            if "mode" in span_.attrs:
                summary["mode"] = span_.attrs["mode"]
        elif span_.kind == "detail_scan" and span_.attrs.get("vectorized"):
            summary["chunks"] = (
                summary.get("chunks", 0) + span_.attrs.get("chunks", 0)
            )
            if "chunk_size" in span_.attrs:
                summary["chunk_size"] = span_.attrs["chunk_size"]
            backend = span_.attrs.get("backend")
            if backend and backend != "python":
                summary["backend"] = backend
                fallbacks.extend(span_.attrs.get("fallbacks", ()))
        elif span_.kind == "rollup_hit":
            tier = span_.attrs.get("tier")
            key = ("rollup_exact_hits" if tier == "exact"
                   else "rollup_subsume_hits")
            summary[key] = summary.get(key, 0) + 1
        elif span_.kind == "rollup_miss":
            summary["rollup_misses"] = summary.get("rollup_misses", 0) + 1
    if fallbacks:
        summary["fallbacks"] = fallbacks
    return summary


def rollup_summary(trace) -> str | None:
    """A one-line account of which serving tier answered, or None.

    ``None`` when the rollup tier was not active (no rollup spans in the
    trace); otherwise hit/miss counts plus a verdict: fully served from
    the store, partially served, or computed by detail scan.
    """
    executed = executed_summary(trace)
    exact = executed.get("rollup_exact_hits", 0)
    subsume = executed.get("rollup_subsume_hits", 0)
    misses = executed.get("rollup_misses", 0)
    if not (exact or subsume or misses):
        return None
    if misses == 0:
        if subsume and exact:
            tier = "served from rollup store (exact + subsumption)"
        elif subsume:
            tier = "served from rollup store (subsumption)"
        else:
            tier = "served from rollup store (exact)"
    elif exact or subsume:
        tier = "partially served from rollup store"
    else:
        tier = "computed by detail scan (rollups stored)"
    return (f"rollup: exact={exact} subsume={subsume} miss={misses}"
            f" — {tier}")


def _static_plan(db, query, options):
    """The plan the given options would statically verify/execute."""
    options = _coerce(options)
    resolved = options.canonical().strategy
    if resolved in ("auto", "gmdj_optimized"):
        from repro.unnesting.translate import subquery_to_gmdj

        return subquery_to_gmdj(query, db.catalog, optimize=True)
    if resolved in ("gmdj", "gmdj_coalesce", "gmdj_completion"):
        from repro.unnesting.translate import subquery_to_gmdj

        return subquery_to_gmdj(query, db.catalog)
    return query


def static_report(db, query, options="auto"):
    """Lint + cost-certify the plan the given options would execute.

    Returns ``(lint_report, certificate)`` — the
    :class:`~repro.lint.diagnostics.LintReport` and
    :class:`~repro.lint.cost.CostCertificate` of the same plan
    ``db.explain`` renders for these options.
    """
    from repro.lint import certify_plan, lint_plan

    plan = _static_plan(db, query, options)
    return lint_plan(plan, db.catalog), certify_plan(plan)


def capability_report(db, query, options="auto"):
    """The capability certificate of the plan the options would execute.

    The abstract-interpretation companion of :func:`static_report`: the
    per-output-column nullability lattice, per-aggregate Gray et al.
    classification, and θ-block predicate facts of the same plan
    (:func:`repro.lint.absint.certify_capabilities`).
    """
    from repro.lint import certify_capabilities

    plan = _static_plan(db, query, options)
    return certify_capabilities(plan, db.catalog)


def _certifiable(canonical) -> bool:
    """True when the run's span tree matches the static cost certificate.

    Plain mode trivially does.  Vectorized mode does too *unless* it is
    composed with base-chunking or partitioning, which multiply the
    per-GMDJ detail scans / change the owning span kinds.  A run with
    the rollup tier active is never certifiable: a rollup hit answers a
    GMDJ with *zero* gmdj/detail_scan spans, so the static certificate's
    counts cannot match (the dedicated rollup invariant — zero detail
    scans under every hit — covers that case instead).
    """
    if canonical.rollup is not None:
        return False
    if canonical.mode is None:
        return True
    return (
        canonical.mode == "gmdj_vectorized"
        and canonical.chunk_budget is None
        and canonical.partitions is None
        and canonical.workers is None
    )


def analyze(db, query, options="auto", strict: bool = False):
    """Execute ``query`` under tracing and check invariants.

    Returns ``(report, invariants, single_scan_tables)`` where
    ``report`` is the traced
    :class:`~repro.engine.reports.ExecutionReport` and ``invariants``
    the :class:`~repro.obs.invariants.InvariantReport`.  For
    coalescing strategies in plain mode — and in single-scan vectorized
    mode, whose batch kernel emits the same gmdj/detail_scan span
    structure and counts — the statically derived
    :class:`~repro.lint.cost.CostCertificate` is cross-checked against
    the trace (chunked/partitioned runs produce different span kinds,
    so their exact counts are not comparable).
    """
    options = _coerce(options)
    canonical = options.canonical()
    expectations: frozenset[str] = frozenset()
    certificate = None
    if canonical.strategy in COALESCING_STRATEGIES:
        from repro.lint import certify_plan
        from repro.unnesting.translate import subquery_to_gmdj

        plan = subquery_to_gmdj(query, db.catalog, optimize=True)
        expectations = derive_single_scan_tables(plan)
        if _certifiable(canonical):
            certificate = certify_plan(plan)
    report = db._run(query, options.with_trace(True), profiled=True)
    invariants = check_trace(
        report.trace, single_scan_tables=expectations, strict=strict,
        certificate=certificate,
    )
    return report, invariants, expectations


def _capability_check(result, capabilities) -> dict | None:
    """Observed-vs-certified nullability per output column, or None.

    ``None`` when the certificate carries no columns or its arity does
    not match the result (e.g. the plan resolved to a shape the
    interpreter could not fully type) — there is nothing meaningful to
    compare then.
    """
    from repro.lint.absint import stored_nullability
    from repro.obs.invariants import check_capabilities

    columns = capabilities.columns
    if not columns or len(result.schema.fields) != len(columns):
        return None
    observed = stored_nullability(result.rows, len(columns))
    checked = check_capabilities(result.rows, capabilities)
    return {
        "ok": checked.ok,
        "violations": list(checked.violations),
        "columns": [
            {
                "name": column.name,
                "certified": column.nullability.value,
                "observed": verdict.value,
                "ok": not any(column.name in violation
                              for violation in checked.violations),
            }
            for column, verdict in zip(columns, observed)
        ],
    }


#: Inside :func:`explain_report` the ``analyze`` keyword shadows the
#: function, so the call goes through this alias.
analyze_query = analyze


def _plan_text(db, query, options) -> str:
    """Render the plan the given options would execute (EXPLAIN proper)."""
    from repro.algebra.printer import explain as render_plan
    from repro.engine.options import STRATEGIES
    from repro.errors import PlanError

    resolved = options.canonical().strategy
    if resolved in ("auto", "gmdj_optimized"):
        from repro.unnesting.translate import subquery_to_gmdj

        return render_plan(subquery_to_gmdj(query, db.catalog, optimize=True))
    if resolved in ("gmdj", "gmdj_coalesce", "gmdj_completion"):
        from repro.unnesting.translate import subquery_to_gmdj

        return render_plan(subquery_to_gmdj(query, db.catalog))
    if resolved in STRATEGIES:
        return render_plan(query)
    raise PlanError(f"unknown strategy {resolved!r}")


def explain_report(db, query, options="auto", *, analyze: bool = False,
                   strict: bool = False) -> Explain:
    """The unified EXPLAIN entry point behind ``Database.explain`` /
    ``explain_analyze`` and the CLI.

    Without ``analyze``, nothing executes: the text is exactly the plan
    rendering the old ``Database.explain`` returned, and the payload
    carries the static lint report and cost certificate.  With
    ``analyze=True`` the query executes **once** under tracing and both
    the text and the payload are derived from that single run.
    """
    options = _coerce(options)
    plan_text = _plan_text(db, query, options)
    lint, certificate = static_report(db, query, options)
    capabilities = capability_report(db, query, options)
    canonical = options.canonical()
    payload: dict = {
        "strategy": options.strategy,
        "mode": canonical.mode,
        "rollup": canonical.rollup,
        "plan": plan_text,
        "lint": lint.to_json(),
        "certificate": certificate.to_json(),
        "capabilities": capabilities.to_json(),
    }
    if not analyze:
        return Explain(plan_text, payload)

    report, invariants, expectations = analyze_query(
        db, query, options, strict
    )
    counters = ", ".join(
        f"{key}={value}"
        for key, value in sorted(report.counters.items())
        if value
    )
    executed = executed_summary(report.trace)
    lines = [
        plan_text,
        "",
        f"-- EXPLAIN ANALYZE ({_label(options)})",
        report.trace.render(),
        f"-- rows: {report.row_count}  "
        f"time: {report.elapsed_seconds * 1000:.2f} ms",
        f"-- {counters}",
    ]
    if executed:
        lines.append(
            "-- executed: "
            + " ".join(f"{key}={value}"
                       for key, value in executed.items())
        )
    rollup = rollup_summary(report.trace)
    if rollup is not None:
        lines.append(f"-- {rollup}")
    if expectations:
        lines.append(
            "-- single-scan expectation: "
            + ", ".join(sorted(expectations))
        )
    lines.append(f"-- lint: {lint.summary()}")
    lines.extend(f"--   {d.render()}" for d in lint.sorted())
    lines.append(f"-- {certificate.summary()}")
    lines.append(f"-- {capabilities.summary()}")
    capability_check = _capability_check(report.result, capabilities)
    if capability_check is not None:
        for column in capability_check["columns"]:
            verdict = "ok" if column["ok"] else "VIOLATED"
            lines.append(
                f"--   nullability {column['name']}: "
                f"certified={column['certified']} "
                f"observed={column['observed']} — {verdict}"
            )
        payload["capability_check"] = capability_check
    lines.append(f"-- {invariants.summary()}")
    payload.update({
        "executed": executed,
        "rows": report.row_count,
        "elapsed_ms": round(report.elapsed_seconds * 1000, 3),
        "counters": {
            key: value for key, value in sorted(report.counters.items())
            if value
        },
        "single_scan_expectation": sorted(expectations),
        "invariants": {
            "checked": invariants.checked,
            "violations": list(invariants.violations),
        },
        "trace": report.trace.to_json(),
    })
    return Explain("\n".join(lines), payload)


def explain_batch(db, queries, options=None) -> Explain:
    """EXPLAIN for a batch: share groups and coalesced plans, unexecuted.

    Runs the MQO planner (:func:`repro.engine.mqo.plan_batch`) over the
    batch and renders, per share group, the members, the single
    multi-consumer GMDJ the group would execute, and its single-scan
    cost certificate; singleton members get their ordinary per-query
    plan text.
    """
    from repro.algebra.printer import explain as render_plan
    from repro.engine.mqo import plan_batch
    from repro.lint import certify_plan

    options = _coerce(options)
    plan = plan_batch(queries, db.catalog, options, cache=db.cache)
    lines = [
        f"-- EXPLAIN BATCH ({len(queries)} queries, mqo={plan.level}, "
        f"{_label(options)})"
    ]
    groups_payload = []
    for group in plan.groups:
        certificate = certify_plan(group.shared.gmdj)
        coalesced = render_plan(group.shared.gmdj)
        lines.append(
            f"-- share group {group.group_id}: queries "
            f"{group.indices} on {group.shared.detail_table} "
            f"({group.shared.consumer_blocks} consumer block(s) -> "
            f"{group.shared.shared_blocks} shared, "
            f"{len(group.indices) - 1} scan(s) saved)"
        )
        lines.append(coalesced)
        lines.append(f"-- {certificate.summary()}")
        groups_payload.append({
            "group": group.group_id,
            "members": list(group.indices),
            "detail_table": group.shared.detail_table,
            "consumer_blocks": group.shared.consumer_blocks,
            "shared_blocks": group.shared.shared_blocks,
            "scans_saved": len(group.indices) - 1,
            "plan": coalesced,
            "certificate": certificate.to_json(),
        })
    singles_payload = []
    for index in plan.singletons:
        text = _plan_text(db, queries[index], options)
        lines.append(f"-- query {index} (no sharing)")
        lines.append(text)
        singles_payload.append({"index": index, "plan": text})
    payload = {
        "mqo": plan.level,
        "queries": len(queries),
        "strategy": options.strategy,
        "share_groups": groups_payload,
        "singletons": singles_payload,
        "scans_saved": sum(g["scans_saved"] for g in groups_payload),
    }
    return Explain("\n".join(lines), payload)


def explain_analyze(db, query, options="auto", strict: bool = False) -> str:
    """The full EXPLAIN ANALYZE text: plan, trace, counters, invariants.

    Thin wrapper over :func:`explain_report` (one execution; the same
    :class:`Explain` also carries the JSON payload).
    """
    return explain_report(db, query, options, analyze=True, strict=strict)


def explain_analyze_json(db, query, options="auto",
                         strict: bool = False) -> dict:
    """Machine-readable EXPLAIN ANALYZE (the ``--json`` trace export)."""
    return explain_report(
        db, query, options, analyze=True, strict=strict
    ).json()


__all__ = [
    "COALESCING_STRATEGIES",
    "Explain",
    "InvariantReport",
    "analyze",
    "capability_report",
    "derive_single_scan_tables",
    "executed_summary",
    "explain_analyze",
    "explain_analyze_json",
    "explain_batch",
    "explain_report",
    "rollup_summary",
    "static_report",
]
