"""EXPLAIN ANALYZE: plan text plus a measured, attributed span tree.

``EXPLAIN`` (the existing :func:`repro.algebra.printer.explain`) shows
what the planner *intends*; ``EXPLAIN ANALYZE`` executes the query
under tracing and shows what actually happened — per-span wall-clock
and IOStats counter deltas — then runs the invariant checker over the
trace so the paper's cost claims are verified on every analyzed query.

For the coalescing strategies (``auto``, ``gmdj_optimized``,
``gmdj_coalesce``) the renderer derives the Prop. 4.1 expectation
automatically: any stored table that is the detail of exactly one GMDJ
in the optimized plan must be detail-scanned exactly once at runtime.
"""

from __future__ import annotations

from repro.obs.invariants import InvariantReport, check_trace

#: Strategies whose plans claim coalesced (single-scan) evaluation.
COALESCING_STRATEGIES = frozenset({"auto", "gmdj_optimized", "gmdj_coalesce"})


def derive_single_scan_tables(plan) -> frozenset[str]:
    """Tables that a coalesced plan promises to detail-scan exactly once.

    A stored table appearing as the detail of exactly one GMDJ node is
    scanned once per Prop. 4.1; a table feeding several GMDJs (a plan
    the optimizer could not merge) makes no single-scan promise.
    """
    from repro.algebra.operators import ScanTable
    from repro.gmdj.operator import GMDJ

    counts: dict[str, int] = {}

    def visit(node) -> None:
        if isinstance(node, GMDJ) and isinstance(node.detail, ScanTable):
            name = node.detail.table_name
            counts[name] = counts.get(name, 0) + 1
        for child in node.children():
            visit(child)

    visit(plan)
    return frozenset(name for name, count in counts.items() if count == 1)


def analyze(db, query, strategy: str = "auto", strict: bool = False):
    """Execute ``query`` under tracing and check invariants.

    Returns ``(report, invariants, single_scan_tables)`` where
    ``report`` is the traced
    :class:`~repro.engine.reports.ExecutionReport` and ``invariants``
    the :class:`~repro.obs.invariants.InvariantReport`.
    """
    from repro.engine.executor import profile

    expectations: frozenset[str] = frozenset()
    if strategy in COALESCING_STRATEGIES:
        from repro.unnesting.translate import subquery_to_gmdj

        plan = subquery_to_gmdj(query, db.catalog, optimize=True)
        expectations = derive_single_scan_tables(plan)
    report = profile(query, db.catalog, strategy, trace=True)
    invariants = check_trace(
        report.trace, single_scan_tables=expectations, strict=strict
    )
    return report, invariants, expectations


def explain_analyze(db, query, strategy: str = "auto",
                    strict: bool = False) -> str:
    """The full EXPLAIN ANALYZE text: plan, trace, counters, invariants."""
    plan_text = db.explain(query, strategy)
    report, invariants, expectations = analyze(db, query, strategy, strict)
    counters = ", ".join(
        f"{key}={value}"
        for key, value in sorted(report.counters.items())
        if value
    )
    lines = [
        plan_text,
        "",
        f"-- EXPLAIN ANALYZE (strategy={strategy})",
        report.trace.render(),
        f"-- rows: {report.row_count}  "
        f"time: {report.elapsed_seconds * 1000:.2f} ms",
        f"-- {counters}",
    ]
    if expectations:
        lines.append(
            "-- single-scan expectation: "
            + ", ".join(sorted(expectations))
        )
    lines.append(f"-- {invariants.summary()}")
    return "\n".join(lines)


def explain_analyze_json(db, query, strategy: str = "auto",
                         strict: bool = False) -> dict:
    """Machine-readable EXPLAIN ANALYZE (the ``--json`` trace export)."""
    plan_text = db.explain(query, strategy)
    report, invariants, expectations = analyze(db, query, strategy, strict)
    return {
        "strategy": strategy,
        "plan": plan_text,
        "rows": report.row_count,
        "elapsed_ms": round(report.elapsed_seconds * 1000, 3),
        "counters": {
            key: value for key, value in sorted(report.counters.items())
            if value
        },
        "single_scan_expectation": sorted(expectations),
        "invariants": {
            "checked": invariants.checked,
            "violations": list(invariants.violations),
        },
        "trace": report.trace.to_json(),
    }


__all__ = [
    "COALESCING_STRATEGIES",
    "InvariantReport",
    "analyze",
    "derive_single_scan_tables",
    "explain_analyze",
    "explain_analyze_json",
]
