"""Span-tree tracing with IOStats delta attribution.

A :class:`Span` covers one operator-level unit of work (a strategy run,
a GMDJ evaluation, one detail scan, one chunk, a pushdown copy, ...).
On entry it snapshots the ambient :class:`~repro.storage.iostats.IOStats`
counters; on exit it records wall-clock and the counter *delta*, so the
work each operator performed — tuples scanned, relation scans started,
predicate evaluations, index probes, tuples output — is attributed to
the span that did it.  Deltas are inclusive of child spans;
:meth:`Span.self_counters` subtracts the children back out.

Tracing is disabled by default.  Instrumentation sites call the
module-level :func:`span` function, which returns a shared no-op
context manager unless a tracer has been installed with
:class:`tracing` — the disabled cost is one global read and one method
call per *operator* (never per tuple), which the benchmark suite pins
at ≤2% on the GMDJ micro-benchmarks.

Usage::

    from repro.obs import tracing

    with tracing() as tracer:
        db.execute(query, "gmdj_optimized")
    trace = tracer.trace()
    print(trace.render())

Spans nest with IOStats swaps: the entry snapshot is taken from, and
diffed against, the *same* stats object, so a ``collect()`` installed
inside a span never corrupts the span's delta (it just hides the work
reported to the inner object).
"""

from __future__ import annotations

import time
from contextvars import ContextVar

from repro.storage.iostats import IOStats


class _NoOpSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NoOpSpan":
        return self


_NOOP_SPAN = _NoOpSpan()

#: The installed tracer, or None when tracing is disabled.  Tracked per
#: execution context (``ContextVar``) so pool worker threads never push
#: spans onto the coordinator's span stack concurrently — a worker that
#: wants tracing installs its *own* tracer and the finished subtree is
#: grafted back with :func:`attach_subtrace`.
_active_var: ContextVar["Tracer | None"] = ContextVar(
    "repro_active_tracer", default=None
)


def tracing_enabled() -> bool:
    """True when a tracer is installed (spans are being recorded)."""
    return _active_var.get() is not None


def current_tracer() -> "Tracer | None":
    return _active_var.get()


def span(name: str, kind: str = "op", **attrs) -> "Span | _NoOpSpan":
    """Open a span on the active tracer; a shared no-op when disabled."""
    tracer = _active_var.get()
    if tracer is None:
        return _NOOP_SPAN
    return Span(tracer, name, kind, attrs)


def attach_subtrace(records) -> None:
    """Graft serialized spans (``Span.to_json`` dicts) into the live trace.

    The parallel pool runs each partition in a worker (thread or
    process) whose spans are recorded on a private tracer and shipped
    back as JSON.  This reattaches them under the currently open span of
    the active tracer, so EXPLAIN ANALYZE and the invariant checker see
    one contiguous span tree regardless of where the work ran.  A no-op
    when tracing is disabled.
    """
    tracer = _active_var.get()
    if tracer is None:
        return
    spans = [Span.from_json(record) for record in records]
    if tracer._stack:
        tracer._stack[-1].children.extend(spans)
    else:
        tracer.roots.extend(spans)


class Span:
    """One traced unit of work; use as a context manager."""

    __slots__ = (
        "name", "kind", "attrs", "elapsed_seconds", "counters", "children",
        "_tracer", "_started", "_entry_stats", "_entry_snapshot",
    )

    def __init__(self, tracer: "Tracer", name: str, kind: str, attrs: dict):
        self.name = name
        self.kind = kind
        self.attrs = dict(attrs)
        self.elapsed_seconds = 0.0
        self.counters: dict = {}
        self.children: list[Span] = []
        self._tracer = tracer
        self._started = 0.0
        self._entry_stats: IOStats | None = None
        self._entry_snapshot: dict = {}

    def set(self, **attrs) -> "Span":
        """Attach or update attributes mid-span (e.g. output row counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._entry_stats = IOStats.ambient()
        self._entry_snapshot = self._entry_stats.snapshot()
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.elapsed_seconds = time.perf_counter() - self._started
        exit_snapshot = self._entry_stats.snapshot()
        entry = self._entry_snapshot
        self.counters = {
            key: value - entry.get(key, 0)
            for key, value in exit_snapshot.items()
            if value - entry.get(key, 0)
        }
        self._tracer._pop(self)
        return False

    @classmethod
    def from_json(cls, data: dict) -> "Span":
        """Rebuild a finished span (and subtree) from ``to_json`` output.

        Used to graft pool-worker subtraces back into the coordinator's
        trace; the rebuilt span is already closed, so it is never pushed
        onto any tracer stack.
        """
        span_ = cls(None, data["name"], data.get("kind", "op"),
                    dict(data.get("attrs", ())))
        span_.elapsed_seconds = data.get("elapsed_ms", 0.0) / 1000.0
        span_.counters = dict(data.get("counters", ()))
        span_.children = [
            cls.from_json(child) for child in data.get("children", ())
        ]
        return span_

    def self_counters(self) -> dict:
        """Counter deltas minus the children's (work done by this span)."""
        own = dict(self.counters)
        for child in self.children:
            for key, value in child.counters.items():
                own[key] = own.get(key, 0) - value
        return {key: value for key, value in own.items() if value}

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "attrs": dict(self.attrs),
            "elapsed_ms": round(self.elapsed_seconds * 1000, 3),
            "counters": dict(self.counters),
            "children": [child.to_json() for child in self.children],
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects a forest of spans for one traced region."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def _push(self, span_: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span_)
        else:
            self.roots.append(span_)
        self._stack.append(span_)

    def _pop(self, span_: Span) -> None:
        # Tolerate exit order surprises (generator spans abandoned mid-
        # iteration): pop through to the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span_:
                return

    def trace(self) -> "Trace":
        """The finished trace (callable any time; open spans excluded)."""
        return Trace(list(self.roots))


class Trace:
    """A finished span forest with search and rendering helpers."""

    def __init__(self, roots: list[Span]):
        self.roots = roots

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    def find(self, kind: str | None = None, name: str | None = None):
        """All spans matching the given kind and/or name."""
        return [
            span_ for span_ in self.walk()
            if (kind is None or span_.kind == kind)
            and (name is None or span_.name == name)
        ]

    def to_json(self) -> dict:
        return {"spans": [root.to_json() for root in self.roots]}

    def render(self, counters: bool = True) -> str:
        """Indented text rendering: one line per span."""
        lines: list[str] = []
        for root in self.roots:
            self._render(root, 0, lines, counters)
        return "\n".join(lines)

    def _render(self, span_: Span, indent: int,
                lines: list[str], counters: bool) -> None:
        pad = "  " * indent
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span_.attrs.items())
        )
        head = f"{pad}{span_.name}"
        if attrs:
            head += f" [{attrs}]"
        head += f"  ({span_.elapsed_seconds * 1000:.2f} ms)"
        if counters and span_.counters:
            deltas = " ".join(
                f"{key}={value}"
                for key, value in sorted(span_.counters.items())
            )
            head += f"  {deltas}"
        lines.append(head)
        for child in span_.children:
            self._render(child, indent + 1, lines, counters)


class tracing:
    """Context manager installing a tracer (fresh by default).

    >>> with tracing() as tracer:
    ...     pass  # run queries
    >>> tracer.trace().roots
    []
    """

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = _active_var.get()
        _active_var.set(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        _active_var.set(self._previous)
