"""Runtime checking of the paper's cost guarantees over finished traces.

The GMDJ's selling points are checkable statements about a trace:

* **Single scan** (§2.2, Prop. 4.1): every plain or completion-fused
  GMDJ evaluation consumes its detail relation in exactly one scan,
  regardless of how many θ-blocks coalescing packed into it.
* **Output bound** (Def. 2.1): a GMDJ emits at most one tuple per base
  tuple — ``output_rows ≤ base_rows``.
* **Completion is free** (Thms. 4.1/4.2): fusing a completion rule
  never adds detail scans; the span structure of a ``SelectGMDJ`` must
  show the same single scan as the plain operator.
* **Well-defined chunked cost** (§2.3): base-chunked evaluation scans
  the detail exactly ``ceil(|B| / M)`` times.
* **Partitioning costs no volume**: partitioned evaluation scans, in
  total, exactly the detail's tuple count — fragments never overlap.
* **Query-level single scan** (Prop. 4.1, caller-supplied): when the
  caller asserts a table is the detail of one coalesced GMDJ (e.g. the
  optimizer merged every subquery over it), that table is detail-scanned
  at most once in the whole trace.  A de-coalesced plan trips this.

:func:`check_trace` runs every check, returning an
:class:`InvariantReport`; ``strict=True`` raises
:class:`~repro.errors.InvariantViolation` instead of recording
warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import CertificateViolation, InvariantViolation
from repro.obs.tracer import Span, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.absint import CapabilityCertificate

#: Span kinds that own the detail scans performed beneath them.
_OWNER_KINDS = frozenset({"gmdj", "gmdj_chunked", "gmdj_partitioned"})


@dataclass
class InvariantReport:
    """Outcome of one checking pass over a trace."""

    checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"invariants: {self.checked} checked, all hold"
        lines = [f"invariants: {self.checked} checked, "
                 f"{len(self.violations)} VIOLATED"]
        lines.extend(f"  !! {violation}" for violation in self.violations)
        return "\n".join(lines)


def _attribute_scans(trace: Trace) -> dict[int, tuple[Span, list[Span]]]:
    """Map each owner span to the detail scans it is responsible for.

    A ``detail_scan`` span belongs to its *nearest* enclosing owner, so
    a nested GMDJ (a linearly-nested subquery materialized inside the
    outer detail) never pollutes the outer operator's accounting.
    """
    owners: dict[int, tuple[Span, list[Span]]] = {}

    def visit(span_: Span, owner: Span | None) -> None:
        if span_.kind == "detail_scan" and owner is not None:
            owners[id(owner)][1].append(span_)
        next_owner = owner
        if span_.kind in _OWNER_KINDS:
            owners.setdefault(id(span_), (span_, []))
            next_owner = span_
        for child in span_.children:
            visit(child, next_owner)

    for root in trace.roots:
        visit(root, None)
    return owners


def check_trace(
    trace: Trace,
    single_scan_tables: tuple[str, ...] | frozenset[str] = (),
    strict: bool = False,
    certificate=None,
) -> InvariantReport:
    """Check every cost invariant the trace makes claims about.

    ``single_scan_tables`` names stored relations the caller expects to
    be detail-scanned at most once across the whole trace — the
    Prop. 4.1 claim for a fully coalesced plan.  ``certificate`` is an
    optional statically derived
    :class:`~repro.lint.cost.CostCertificate` for the executed plan;
    when it is *complete* (no nested residue) its exact per-table
    detail-scan counts and GMDJ operator count are cross-checked
    against the trace, and its single-scan tables join the caller's.
    With ``strict`` the first report of any violation raises
    :class:`~repro.errors.InvariantViolation`; otherwise violations are
    collected on the report for the caller to surface as warnings.
    """
    report = InvariantReport()
    if certificate is not None:
        single_scan_tables = (
            frozenset(single_scan_tables) | certificate.single_scan_tables
        )

    for owner, scans in _attribute_scans(trace).values():
        if owner.kind == "gmdj":
            report.checked += 1
            if len(scans) != 1:
                claim = ("completion-fused GMDJ"
                         if owner.attrs.get("completion") else "GMDJ")
                report.violations.append(
                    f"single-scan: {claim} over "
                    f"{owner.attrs.get('relation')!r} performed "
                    f"{len(scans)} detail scans (expected exactly 1)"
                )
            report.checked += 1
            base_rows = owner.attrs.get("base_rows")
            output_rows = owner.attrs.get("output_rows")
            if (base_rows is not None and output_rows is not None
                    and output_rows > base_rows):
                report.violations.append(
                    f"|B|-bound: GMDJ over {owner.attrs.get('relation')!r} "
                    f"emitted {output_rows} rows from a "
                    f"{base_rows}-row base"
                )
        elif owner.kind == "gmdj_chunked":
            report.checked += 1
            expected = owner.attrs.get("expected_scans")
            if expected is not None and len(scans) != expected:
                report.violations.append(
                    f"chunked-cost: budget {owner.attrs.get('budget')} over "
                    f"{owner.attrs.get('base_rows')} base rows should scan "
                    f"the detail {expected} times, saw {len(scans)}"
                )
        elif owner.kind == "gmdj_partitioned":
            report.checked += 1
            detail_rows = owner.attrs.get("detail_rows")
            scanned = sum(scan.attrs.get("rows", 0) for scan in scans)
            if detail_rows is not None and scans and scanned != detail_rows:
                report.violations.append(
                    f"partition-volume: {len(scans)} fragments scanned "
                    f"{scanned} tuples of a {detail_rows}-tuple detail "
                    f"(fragments must tile it exactly)"
                )
            # Def. 2.1 survives the columnwise merge: however many
            # workers computed partials, the merged output still has at
            # most one tuple per base tuple.
            report.checked += 1
            base_rows = owner.attrs.get("base_rows")
            output_rows = owner.attrs.get("output_rows")
            if (base_rows is not None and output_rows is not None
                    and output_rows > base_rows):
                report.violations.append(
                    f"|B|-bound: partitioned GMDJ over "
                    f"{owner.attrs.get('relation')!r} emitted "
                    f"{output_rows} rows from a {base_rows}-row base"
                )

    # Rollup-tier invariants: a hit answers its GMDJ from the stored
    # rollup, so no detail scan may occur beneath it — and a query served
    # entirely from the store (hits, no misses, no live GMDJ evaluation)
    # must perform zero detail scans anywhere.  This is the runtime
    # counterpart of the static cost certificate for rollup-served plans.
    rollup_hits = [s for s in trace.walk() if s.kind == "rollup_hit"]
    for hit in rollup_hits:
        report.checked += 1
        nested = [s for s in hit.walk() if s.kind == "detail_scan"]
        if nested:
            report.violations.append(
                f"rollup-zero-scan: a {hit.attrs.get('tier')}-tier rollup "
                f"hit performed {len(nested)} detail scan(s) "
                f"(a served rollup must not touch the detail relation)"
            )
    if rollup_hits and not any(
        s.kind == "rollup_miss" or s.kind in _OWNER_KINDS
        for s in trace.walk()
    ):
        report.checked += 1
        scans = [s for s in trace.walk() if s.kind == "detail_scan"]
        if scans:
            report.violations.append(
                f"rollup-served: the plan was answered entirely from the "
                f"rollup store yet performed {len(scans)} detail scan(s)"
            )

    for table in sorted(single_scan_tables):
        report.checked += 1
        scans = [
            span_ for span_ in trace.walk()
            if span_.kind == "detail_scan"
            and span_.attrs.get("relation") == table
        ]
        if len(scans) > 1:
            report.violations.append(
                f"coalesced-single-scan: detail relation {table!r} was "
                f"scanned {len(scans)} times; a coalesced plan scans it "
                f"once (Prop. 4.1)"
            )

    if certificate is not None and certificate.complete:
        spans = list(trace.walk())
        report.checked += 1
        gmdj_spans = [s for s in spans if s.kind == "gmdj"]
        if len(gmdj_spans) != len(certificate.entries):
            report.violations.append(
                f"certificate: plan certified {len(certificate.entries)} "
                f"GMDJ operator(s), trace shows {len(gmdj_spans)} "
                f"gmdj span(s)"
            )
        for table, expected in certificate.detail_scan_counts:
            report.checked += 1
            actual = sum(
                1 for s in spans
                if s.kind == "detail_scan"
                and s.attrs.get("relation") == table
            )
            if actual != expected:
                report.violations.append(
                    f"certificate: detail relation {table!r} certified "
                    f"for exactly {expected} scan(s), trace shows {actual}"
                )

    if strict and report.violations:
        raise InvariantViolation(
            "trace violates paper invariants:\n" + "\n".join(
                f"  - {violation}" for violation in report.violations
            )
        )
    return report


def check_capabilities(
    rows: Iterable[Sequence[object]],
    certificate: "CapabilityCertificate",
    strict: bool = False,
) -> InvariantReport:
    """Cross-check a capability certificate against observed result rows.

    The runtime counterpart of
    :func:`repro.lint.absint.certify_capabilities`: the lattice claims
    are sound over-approximations, so observing a NULL in a NEVER-null
    column — or a non-NULL in an ALWAYS-null column — is a hard
    analysis bug.  ``MAYBE`` columns make no checkable claim.  With
    ``strict`` the first violation raises
    :class:`~repro.errors.CertificateViolation`; otherwise violations
    collect on the report like the cost checks above.
    """
    from repro.lint.absint import ALWAYS, NEVER

    report = InvariantReport()
    checkable = [
        (position, column)
        for position, column in enumerate(certificate.columns)
        if column.nullability in (NEVER, ALWAYS)
    ]
    report.checked += len(checkable)
    if not checkable:
        return report
    for row in rows:
        for position, column in checkable:
            value = row[position]
            if column.nullability is NEVER and value is None:
                report.violations.append(
                    f"nullability: column {column.name!r} certified "
                    f"NEVER-null, observed NULL"
                )
            elif column.nullability is ALWAYS and value is not None:
                report.violations.append(
                    f"nullability: column {column.name!r} certified "
                    f"ALWAYS-null, observed {value!r}"
                )
        if report.violations:
            break
    if strict and report.violations:
        raise CertificateViolation(
            "observed rows violate the capability certificate:\n"
            + "\n".join(f"  - {v}" for v in report.violations)
        )
    return report
