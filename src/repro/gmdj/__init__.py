"""The GMDJ operator, its evaluator, and the Section-4 optimizations."""

from repro.gmdj.chunked import detail_scans_required, evaluate_gmdj_chunked
from repro.gmdj.coalesce import coalesce_plan, merge_stacked, pull_up_base_selection
from repro.gmdj.completion import CompletionRule, derive_completion_rule
from repro.gmdj.evaluate import SelectGMDJ, run_gmdj
from repro.gmdj.modes import (
    evaluate_plan_chunked,
    evaluate_plan_partitioned,
    evaluate_plan_vectorized,
)
from repro.gmdj.operator import GMDJ, ThetaBlock, md
from repro.gmdj.optimize import fuse_completion, optimize_plan, push_base_selections
from repro.gmdj.parallel import evaluate_gmdj_partitioned, partition_rows
from repro.gmdj.pool import (
    PoolRegistry,
    choose_executor,
    default_workers,
    map_partitions,
    pooling,
    resolve_workers,
)
from repro.gmdj.pushdown import (
    embed_base_in_detail,
    pull_join_out_of_base,
    push_join_into_base,
)
from repro.gmdj.to_sql import expression_to_sql, gmdj_to_sql, plan_to_sql
from repro.gmdj.vectorized import (
    DEFAULT_CHUNK_SIZE,
    evaluate_gmdj_vectorized,
    run_gmdj_vectorized,
)

__all__ = [
    "CompletionRule",
    "DEFAULT_CHUNK_SIZE",
    "GMDJ",
    "SelectGMDJ",
    "ThetaBlock",
    "PoolRegistry",
    "choose_executor",
    "coalesce_plan",
    "default_workers",
    "derive_completion_rule",
    "detail_scans_required",
    "evaluate_gmdj_chunked",
    "embed_base_in_detail",
    "evaluate_gmdj_partitioned",
    "evaluate_gmdj_vectorized",
    "evaluate_plan_chunked",
    "evaluate_plan_partitioned",
    "evaluate_plan_vectorized",
    "expression_to_sql",
    "fuse_completion",
    "gmdj_to_sql",
    "map_partitions",
    "md",
    "merge_stacked",
    "resolve_workers",
    "optimize_plan",
    "pooling",
    "push_base_selections",
    "partition_rows",
    "plan_to_sql",
    "pull_join_out_of_base",
    "pull_up_base_selection",
    "push_join_into_base",
    "run_gmdj",
    "run_gmdj_vectorized",
]
