"""Coalescing of GMDJs (Proposition 4.1 of the paper).

A sequence of GMDJs over the same detail table, with mutually independent
conditions, collapses into a *single* GMDJ carrying all the (l, θ) blocks —
so a conjunction of n subqueries over one fact table is evaluated in one
scan of that table instead of n.  This is the optimization that turns
Example 3.2's three stacked GMDJs into Example 4.1's single GMDJ.

Two rewrites are provided:

* :func:`merge_stacked` — ``MD(MD(B, R, l1, θ1), R, l2, θ2)`` →
  ``MD(B, R, l1+l2, θ1+θ2)`` when both details scan the same table and the
  outer conditions do not read the inner aggregates.
* :func:`pull_up_base_selection` — ``MD(σ[C](X), R, l, θ)`` →
  ``σ[C](MD(X, R, l, θ))`` when θ does not reference the aggregate columns
  C selects on.  This is the "pushing up the selections" step of
  Example 4.1 that exposes further merging (and completion fusion).
"""

from __future__ import annotations

from repro.algebra.expressions import Expression
from repro.algebra.operators import Operator, ScanTable, Select
from repro.algebra.rewrite import requalify_expression
from repro.gmdj.operator import GMDJ, ThetaBlock


def _detail_table(operator: Operator) -> tuple[str, str] | None:
    """``(table, alias)`` when the operator is a plain aliased table scan."""
    if isinstance(operator, ScanTable):
        return operator.table_name, operator.alias or operator.table_name
    return None


def _references_any(expression: Expression, names: set[str]) -> bool:
    for ref in expression.references():
        if ref in names or ref.rpartition(".")[2] in names:
            return True
    return False


def _block_requalified(block: ThetaBlock, old: str, new: str) -> ThetaBlock:
    condition = requalify_expression(block.condition, old, new)
    aggregates = []
    for spec in block.aggregates:
        if spec.argument is None:
            aggregates.append(spec)
        else:
            from repro.algebra.aggregates import AggregateSpec

            aggregates.append(
                AggregateSpec(
                    spec.function,
                    requalify_expression(spec.argument, old, new),
                    spec.output_name,
                    spec.distinct,
                )
            )
    return ThetaBlock(aggregates, condition)


def merge_stacked(outer: GMDJ) -> GMDJ | None:
    """Collapse ``MD(MD(B, R→a1, ...), R→a2, ...)`` into one GMDJ.

    Returns the merged operator, or None when the rewrite does not apply:
    the base must itself be a GMDJ, both details must scan the same stored
    table, and the outer θs/aggregates must not read the inner GMDJ's
    aggregate outputs (Proposition 4.1's independence requirement).
    """
    inner = outer.base
    if not isinstance(inner, GMDJ):
        return None
    outer_detail = _detail_table(outer.detail)
    inner_detail = _detail_table(inner.detail)
    if outer_detail is None or inner_detail is None:
        return None
    if outer_detail[0] != inner_detail[0]:
        return None
    inner_outputs = set(inner.output_names())
    for block in outer.blocks:
        if _references_any(block.condition, inner_outputs):
            return None
        for spec in block.aggregates:
            if spec.argument is not None and _references_any(
                spec.argument, inner_outputs
            ):
                return None
    old_alias, new_alias = outer_detail[1], inner_detail[1]
    if old_alias == new_alias:
        moved = list(outer.blocks)
    else:
        moved = [
            _block_requalified(block, old_alias, new_alias)
            for block in outer.blocks
        ]
    return GMDJ(inner.base, inner.detail, list(inner.blocks) + moved)


def pull_up_base_selection(gmdj: GMDJ) -> Select | None:
    """Rewrite ``MD(σ[C](X), R, l, θ)`` to ``σ[C](MD(X, R, l, θ))``.

    Sound whenever θ (and the aggregate arguments) reference only
    attributes of X and R: the GMDJ computes per-base-tuple aggregates, so
    filtering base tuples before or after aggregation yields the same
    surviving rows.  Applying it trades extra aggregate work for the
    chance to coalesce scans — the planner only uses it when a merge
    follows.
    """
    base = gmdj.base
    if not isinstance(base, Select):
        return None
    lifted = GMDJ(base.child, gmdj.detail, gmdj.blocks)
    return Select(lifted, base.predicate)


def coalesce_plan(plan: Operator) -> Operator:
    """Exhaustively merge stacked GMDJs in a plan, pulling selections up
    when doing so enables a merge.  Returns the rewritten plan."""
    from repro.algebra.rewrite import transform_bottom_up
    from repro.obs.tracer import span

    merges = pull_ups = collapses = 0

    def step(node: Operator) -> Operator:
        nonlocal merges, pull_ups, collapses
        if isinstance(node, GMDJ):
            merged = merge_stacked(node)
            if merged is not None:
                merges += 1
                return merged
            if isinstance(node.base, Select):
                lifted = pull_up_base_selection(node)
                if lifted is not None and isinstance(lifted.child, GMDJ):
                    inner_merge = merge_stacked(lifted.child)
                    if inner_merge is not None:
                        merges += 1
                        pull_ups += 1
                        return Select(inner_merge, lifted.predicate)
        if isinstance(node, Select) and isinstance(node.child, Select):
            # Collapse stacked selections so completion sees one conjunction.
            collapses += 1
            inner = node.child
            return Select(inner.child, inner.predicate & node.predicate)
        return node

    with span("coalesce", kind="coalesce") as sp:
        rewritten = transform_bottom_up(plan, step)
        sp.set(merges=merges, pull_ups=pull_ups,
               select_collapses=collapses)
        return rewritten
