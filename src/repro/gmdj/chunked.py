"""Memory-bounded GMDJ evaluation (base-values chunking).

Section 2.3 of the paper: "In cases where the base-values table fits
into main-memory, it would be possible to evaluate this query using
GMDJs in a single scan of the detail table.  Even in those cases where
in-memory computation is not possible, simple memory management
techniques allow us to avoid unnecessary buffer thrashing and compute
the GMDJ at a well-defined cost."

The technique (from the MD-join papers the GMDJ builds on) is base
chunking: split B into fragments that fit the memory budget, and scan R
once per fragment.  The cost is *well-defined* —

    scans(R) = ceil(|B| / memory_budget)

— rather than degrading unpredictably as a paging hash table would.
This module implements that evaluation mode; the accompanying benchmark
shows the stepwise cost curve as B outgrows the budget.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.gmdj.evaluate import run_gmdj
from repro.gmdj.operator import GMDJ
from repro.obs.tracer import span
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def evaluate_gmdj_chunked(
    gmdj: GMDJ, catalog: Catalog, memory_tuples: int,
    vectorized: bool = False, chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Evaluate a GMDJ holding at most ``memory_tuples`` base tuples.

    Bag-equivalent to ``gmdj.evaluate(catalog)`` for any positive budget;
    the detail relation is scanned ``ceil(|B| / memory_tuples)`` times.
    ``vectorized`` runs each fragment's scan on the columnar batch kernel
    (:mod:`repro.gmdj.vectorized`) with ``chunk_size`` detail rows per
    batch, optionally on the numpy ``backend``.  Every fragment scans
    the *same* detail relation, so the columnar encoding (and its
    ndarray views) is built once and served from the relation's cache
    for every subsequent fragment.
    """
    if memory_tuples < 1:
        raise ConfigurationError(
            f"memory budget must be >= 1, got {memory_tuples}"
        )
    if vectorized:
        from repro.gmdj.vectorized import run_gmdj_vectorized

        def run(fragment: Relation, detail: Relation, plan: GMDJ,
                schema: Schema) -> Relation:
            return run_gmdj_vectorized(fragment, detail, plan, schema,
                                       chunk_size=chunk_size,
                                       backend=backend)
    else:
        run = run_gmdj
    with span("GMDJ(chunked)", kind="gmdj_chunked", budget=memory_tuples,
              blocks=len(gmdj.blocks), vectorized=vectorized) as sp:
        with span("base", kind="materialize"):
            base = gmdj.base.evaluate(catalog)
        with span("detail", kind="materialize"):
            detail = gmdj.detail.evaluate(catalog)
        sp.set(base_rows=len(base), detail_rows=len(detail),
               relation=getattr(detail, "name", None) or "<derived>",
               expected_scans=detail_scans_required(len(base),
                                                    memory_tuples))
        IOStats.ambient().record_scan(len(base))
        output_schema = gmdj.schema(catalog)
        if len(base) <= memory_tuples:
            result = run(base, detail, gmdj, output_schema)
            sp.set(output_rows=len(result))
            return result
        out_rows: list = []
        for number, start in enumerate(
            range(0, len(base), memory_tuples), start=1
        ):
            fragment = Relation(
                base.schema, base.rows[start:start + memory_tuples],
                validate=False,
            )
            with span(f"chunk {number}", kind="chunk",
                      base_rows=len(fragment)):
                partial = run(fragment, detail, gmdj, output_schema)
            out_rows.extend(partial.rows)
        sp.set(output_rows=len(out_rows))
        return Relation(output_schema, out_rows, validate=False)


def detail_scans_required(base_rows: int, memory_tuples: int) -> int:
    """The well-defined cost formula: scans of R for a given budget."""
    if memory_tuples < 1:
        raise ConfigurationError(
            f"memory budget must be >= 1, got {memory_tuples}"
        )
    if base_rows == 0:
        return 1
    return math.ceil(base_rows / memory_tuples)
