"""Reduction of a GMDJ to standard SQL (after Akinde & Böhlen, ref [2]).

"Generalized MD-joins: Evaluation and reduction to SQL" (the paper's
reference [2]) shows that a GMDJ over base B and detail R can be written
in plain SQL-92 as a *conditional aggregation* over a single left outer
join::

    SELECT B.*,
           COUNT(CASE WHEN θ1 THEN 1 END)            AS cnt1,
           SUM(CASE WHEN θ2 THEN R.c END)            AS sum2, ...
    FROM B LEFT OUTER JOIN R ON <join filter>
    GROUP BY B.*

The join filter is the OR of the θ conditions (any superset works; TRUE
is always correct), so all blocks share one pass — exactly the GMDJ's
single-scan behaviour, which is why the paper calls CASE-based
conditional aggregation the closest conventional-SQL relative of the
operator (and why its prototype still beat it: the GMDJ's hash
partitioning avoids the join blow-up).

This emitter exists for interoperability and documentation: it lets a
translated plan be inspected as, or shipped to, an ordinary SQL engine.
The emitted text targets generic SQL-92; this library's own SQL subset
does not parse CASE, so the emitter is exercised structurally in tests.
"""

from __future__ import annotations

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import (
    And,
    Arithmetic,
    Coalesce,
    Column,
    Comparison,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    TruthLiteral,
    disjoin,
)
from repro.algebra.operators import Operator, Project, ScanTable, Select
from repro.algebra.truth import Truth
from repro.errors import TranslationError
from repro.gmdj.operator import GMDJ
from repro.storage.catalog import Catalog


def expression_to_sql(expression: Expression) -> str:
    """Render an expression as SQL text."""
    if isinstance(expression, Column):
        return expression.reference
    if isinstance(expression, Literal):
        value = expression.value
        if value is None:
            return "NULL"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return repr(value)
    if isinstance(expression, TruthLiteral):
        if expression.value is Truth.TRUE:
            return "1=1"
        if expression.value is Truth.FALSE:
            return "1=0"
        return "NULL = NULL"
    if isinstance(expression, Comparison):
        return (f"{expression_to_sql(expression.left)} {expression.op} "
                f"{expression_to_sql(expression.right)}")
    if isinstance(expression, And):
        return (f"({expression_to_sql(expression.left)} AND "
                f"{expression_to_sql(expression.right)})")
    if isinstance(expression, Or):
        return (f"({expression_to_sql(expression.left)} OR "
                f"{expression_to_sql(expression.right)})")
    if isinstance(expression, Not):
        return f"(NOT {expression_to_sql(expression.operand)})"
    if isinstance(expression, IsNull):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{expression_to_sql(expression.operand)} {suffix}"
    if isinstance(expression, Arithmetic):
        return (f"({expression_to_sql(expression.left)} {expression.op} "
                f"{expression_to_sql(expression.right)})")
    if isinstance(expression, Coalesce):
        return (f"COALESCE({expression_to_sql(expression.first)}, "
                f"{expression_to_sql(expression.second)})")
    raise TranslationError(f"cannot render {expression!r} as SQL")


def _aggregate_to_sql(spec: AggregateSpec, condition: Expression) -> str:
    """One conditional-aggregation output column."""
    predicate = expression_to_sql(condition)
    if spec.is_count_star:
        return (f"COUNT(CASE WHEN {predicate} THEN 1 END) "
                f"AS {spec.output_name}")
    argument = expression_to_sql(spec.argument)
    function = spec.function.upper()
    return (f"{function}(CASE WHEN {predicate} THEN {argument} END) "
            f"AS {spec.output_name}")


def _source_to_sql(operator: Operator, catalog: Catalog) -> str:
    if isinstance(operator, ScanTable):
        alias = operator.alias or operator.table_name
        return f"{operator.table_name} AS {alias}"
    raise TranslationError(
        f"SQL reduction supports plain table scans as GMDJ operands; "
        f"got {operator!r}"
    )


def _unqualify(expression: Expression) -> Expression:
    """Strip qualifiers from column references (``b.K`` → ``K``).

    The outer SELECT of :func:`plan_to_sql` reads from the derived table
    ``gmdj_result``, whose columns carry the *bare* base-attribute names
    — the original qualifiers are not in scope there.
    """
    if isinstance(expression, Column):
        return Column(expression.reference.rpartition(".")[2])
    if isinstance(expression, Comparison):
        return Comparison(expression.op, _unqualify(expression.left),
                          _unqualify(expression.right))
    if isinstance(expression, And):
        return And(_unqualify(expression.left), _unqualify(expression.right))
    if isinstance(expression, Or):
        return Or(_unqualify(expression.left), _unqualify(expression.right))
    if isinstance(expression, Not):
        return Not(_unqualify(expression.operand))
    if isinstance(expression, Arithmetic):
        return Arithmetic(expression.op, _unqualify(expression.left),
                          _unqualify(expression.right))
    if isinstance(expression, IsNull):
        return IsNull(_unqualify(expression.operand), expression.negated)
    if isinstance(expression, Coalesce):
        return Coalesce(_unqualify(expression.first),
                        _unqualify(expression.second))
    return expression


def gmdj_to_sql(gmdj: GMDJ, catalog: Catalog) -> str:
    """Emit the conditional-aggregation SQL for one GMDJ."""
    base_sql = _source_to_sql(gmdj.base, catalog)
    detail_sql = _source_to_sql(gmdj.detail, catalog)
    base_schema = gmdj.base.schema(catalog)
    base_columns = ", ".join(
        field.full_name if field.full_name == field.name
        else f"{field.full_name} AS {field.name}"
        for field in base_schema.fields
    )
    group_by = ", ".join(field.full_name for field in base_schema.fields)
    output_columns = [base_columns]
    for block in gmdj.blocks:
        for spec in block.aggregates:
            output_columns.append(_aggregate_to_sql(spec, block.condition))
    join_filter = expression_to_sql(
        disjoin([block.condition for block in gmdj.blocks])
    )
    lines = [
        "SELECT " + ",\n       ".join(output_columns),
        f"FROM {base_sql}",
        f"LEFT OUTER JOIN {detail_sql}",
        f"  ON {join_filter}",
        f"GROUP BY {group_by}",
    ]
    return "\n".join(lines)


def plan_to_sql(plan: Operator, catalog: Catalog) -> str:
    """Emit SQL for a translated subquery plan.

    Supports the shapes Algorithm SubqueryToGMDJ produces: an optional
    projection over an optional selection over a GMDJ whose operands are
    table scans.  Deeper plans (stacked GMDJs, pushed joins) are out of
    the reduction's scope and raise.
    """
    from repro.algebra.operators import ProjectItem

    projection = None
    selection = None
    node = plan
    if isinstance(node, Project):
        projection = node
        node = node.child
    # The translator inserts a schema-restoring projection (pure column
    # keeps) under the user's own projection; those compose away as long
    # as they do not compute anything.
    while isinstance(node, Project) and all(
        ProjectItem.of(item).preserve for item in node.items
    ):
        node = node.child
    if isinstance(node, Select):
        selection = node
        node = node.child
    from repro.gmdj.evaluate import SelectGMDJ

    if isinstance(node, SelectGMDJ):
        selection = node
        gmdj = node.gmdj
    elif isinstance(node, GMDJ):
        gmdj = node
    else:
        raise TranslationError(f"cannot reduce {type(node).__name__} to SQL")
    inner = gmdj_to_sql(gmdj, catalog)
    if selection is None and projection is None:
        return inner
    predicate = (
        expression_to_sql(_unqualify(
            selection.predicate if isinstance(selection, Select)
            else selection.selection
        ))
        if selection is not None
        else None
    )
    columns = "*"
    if projection is not None:
        from repro.algebra.operators import ProjectItem

        rendered = []
        for item in projection.items:
            resolved = ProjectItem.of(item)
            text = expression_to_sql(_unqualify(resolved.expression))
            if not resolved.preserve:
                text += f" AS {resolved.name}"
            rendered.append(text)
        columns = ", ".join(rendered)
    lines = [f"SELECT {columns}", "FROM (", _indent(inner), ") AS gmdj_result"]
    if predicate is not None:
        lines.append(f"WHERE {predicate}")
    return "\n".join(lines)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
