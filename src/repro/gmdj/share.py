"""Cross-query GMDJ scan sharing — Prop. 4.1 lifted to the workload.

Proposition 4.1 coalesces the subqueries of *one* query into a single
GMDJ over one detail scan.  This module applies the same merge across a
*batch* of translated plans (the shared-subexpression multi-query
optimization of Roy et al. and Kathuria & Sudarshan): plans whose single
GMDJ reads the same stored detail table over the same base-values
relation are *share-compatible*; their θ-blocks are requalified onto one
shared detail alias, deduplicated, and packed into one multi-consumer
GMDJ that is evaluated with a single detail scan.  Each consumer then
projects its own aggregate columns back out of the shared result and
grafts them into its residual plan as a :class:`TableValue`.

The three stages are deliberately separable (each is unit-testable, and
:mod:`repro.engine.mqo` orchestrates them per batch):

* :func:`fingerprint_plan` — is this plan shareable, and under which
  :class:`ShareFingerprint`?
* :func:`merge_group` — fuse the candidates of one fingerprint into a
  :class:`SharedGMDJPlan` (one GMDJ, per-consumer output routing);
* :func:`split_result` / :func:`graft_consumer` — route the shared
  result back into each consumer's residual plan.

Soundness notes:

* compatibility requires the *rendered* base subtrees to be identical
  (same relation, same selection, same aliases), so the shared GMDJ
  emits exactly the base rows every consumer expects, in base order;
* a fused :class:`~repro.gmdj.evaluate.SelectGMDJ` consumer is unfused
  to ``σ[selection](MD(...))`` over exact aggregates — row-identical to
  the completion-fused form (doomed rows fail the selection anyway, and
  assured rows' partial aggregates are only ever produced under an
  enclosing projection that discards them);
* θ-blocks are deduplicated by their *entire* requalified condition
  (:func:`block_key`); dropping base-only conjuncts from the key would
  over-merge distinct subqueries — the seeded-bug test in
  ``tests/test_mqo_differential.py`` proves the differential suite
  catches exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import Expression
from repro.algebra.operators import Operator, ScanTable, Select, TableValue
from repro.algebra.printer import explain as render_plan
from repro.algebra.rewrite import transform_bottom_up
from repro.gmdj.coalesce import _block_requalified, _detail_table
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.storage.relation import Relation
from repro.storage.schema import Schema

__all__ = [
    "ShareCandidate",
    "ShareFingerprint",
    "SharedGMDJPlan",
    "ConsumerSlot",
    "block_key",
    "fingerprint_plan",
    "graft_consumer",
    "merge_group",
    "split_result",
]


@dataclass(frozen=True)
class ShareFingerprint:
    """What two plans must agree on to share one detail scan."""

    detail_table: str
    base_key: str

    def label(self) -> str:
        return f"{self.detail_table}:{hash(self.base_key) & 0xFFFFFF:06x}"


@dataclass
class ShareCandidate:
    """One shareable plan: its single GMDJ and how it sits in the plan."""

    plan: Operator
    node: Operator            # the GMDJ or SelectGMDJ node inside ``plan``
    gmdj: GMDJ
    selection: Expression | None  # SelectGMDJ's predicate, when unfused
    detail_alias: str
    fingerprint: ShareFingerprint


@dataclass
class ConsumerSlot:
    """One consumer's routing through the shared GMDJ's output columns.

    ``outputs`` pairs each shared aggregate column with the output name
    the consumer's original GMDJ produced, in the consumer's original
    block/spec order — so the split result's schema matches the
    consumer's residual plan exactly.
    """

    candidate: ShareCandidate
    outputs: list[tuple[str, str]]


@dataclass
class SharedGMDJPlan:
    """One share group fused into a single multi-consumer GMDJ."""

    gmdj: GMDJ
    detail_table: str
    slots: list[ConsumerSlot]
    consumer_blocks: int    # θ-blocks the consumers brought in total
    shared_blocks: int      # distinct θ-blocks after deduplication


def _gmdj_like_nodes(plan: Operator) -> list[Operator]:
    """Every GMDJ-bearing node, counting a fused SelectGMDJ as one."""
    found: list[Operator] = []

    def visit(node: Operator) -> None:
        if isinstance(node, SelectGMDJ):
            found.append(node)
            visit(node.gmdj.base)
            visit(node.gmdj.detail)
            return
        if isinstance(node, GMDJ):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


def fingerprint_plan(plan: Operator) -> ShareCandidate | None:
    """Classify a translated plan for sharing, or None when unshareable.

    Shareable means: exactly one GMDJ in the tree (a fused SelectGMDJ
    counts as one) whose detail is a plain stored-table scan.  The
    fingerprint is the detail table plus the *rendering* of the base
    subtree — textual identity is the same normalization the plan cache
    keys on, and it implies the two bases evaluate to the same relation
    in the same order under one catalog snapshot.
    """
    nodes = _gmdj_like_nodes(plan)
    if len(nodes) != 1:
        return None
    node = nodes[0]
    selection: Expression | None = None
    gmdj = node
    if isinstance(node, SelectGMDJ):
        gmdj = node.gmdj
        selection = node.selection
    detail = _detail_table(gmdj.detail)
    if detail is None:
        return None
    table, alias = detail
    return ShareCandidate(
        plan=plan,
        node=node,
        gmdj=gmdj,
        selection=selection,
        detail_alias=alias,
        fingerprint=ShareFingerprint(table, render_plan(gmdj.base)),
    )


def block_key(block: ThetaBlock) -> str:
    """The identity under which requalified θ-blocks deduplicate.

    Two consumers' blocks may share aggregate machinery only when their
    *entire* conditions agree — including conjuncts that reference only
    the base relation.  (A key that strips base-only conjuncts would
    route one consumer's aggregates to another consumer's θ; the seeded
    bug test monkeypatches this function to prove the differential
    suite catches that.)
    """
    return repr(block.condition)


def _spec_key(spec: AggregateSpec) -> tuple:
    return (spec.function, repr(spec.argument), spec.distinct)


def _fresh_alias(candidates: list[ShareCandidate], table: str) -> str:
    """A detail alias no candidate references for anything else.

    Requalifying every consumer's θ-blocks onto one alias is only sound
    if that alias cannot capture a non-detail reference, so keep
    suffixing until it collides with nothing in any candidate plan.
    """
    taken: set[str] = set()
    for candidate in candidates:
        for reference in _plan_qualifiers(candidate.plan):
            taken.add(reference)
    alias = f"mqo_{table.lower()}"
    suffix = 0
    while alias in taken:
        suffix += 1
        alias = f"mqo_{table.lower()}_{suffix}"
    return alias


def _plan_qualifiers(plan: Operator) -> set[str]:
    """Every qualifier (``q`` of ``q.attr``) appearing in a plan."""
    qualifiers: set[str] = set()

    def from_expression(expression: Expression) -> None:
        for reference in expression.references():
            qualifier, dot, _ = reference.rpartition(".")
            if dot:
                qualifiers.add(qualifier)

    def visit(node: Operator) -> None:
        if isinstance(node, ScanTable):
            qualifiers.add(node.alias or node.table_name)
        if isinstance(node, SelectGMDJ):
            from_expression(node.selection)
            visit(node.gmdj)
            return
        if isinstance(node, GMDJ):
            for block in node.blocks:
                from_expression(block.condition)
                for spec in block.aggregates:
                    if spec.argument is not None:
                        from_expression(spec.argument)
        predicate = getattr(node, "predicate", None)
        if isinstance(predicate, Expression):
            from_expression(predicate)
        for child in node.children():
            visit(child)

    visit(plan)
    return qualifiers


def merge_group(candidates: list[ShareCandidate]) -> SharedGMDJPlan:
    """Fuse share-compatible candidates into one multi-consumer GMDJ.

    Every consumer's θ-blocks are requalified from its private detail
    alias onto one fresh shared alias; blocks with identical conditions
    (:func:`block_key`) merge, and identical aggregate specs within a
    merged block are computed once.  Shared aggregate columns get fresh
    ``mqo_N`` names (consumers' original names may collide); each
    :class:`ConsumerSlot` records the shared→original name routing.
    """
    first = candidates[0].fingerprint
    table = first.detail_table
    alias = _fresh_alias(candidates, table)
    # key -> (condition, spec_key -> shared name, shared specs)
    merged: dict[str, tuple[Expression, dict[tuple, str], list[AggregateSpec]]] = {}
    order: list[str] = []
    slots: list[ConsumerSlot] = []
    fresh = 0
    for candidate in candidates:
        outputs: list[tuple[str, str]] = []
        for block in candidate.gmdj.blocks:
            requalified = _block_requalified(
                block, candidate.detail_alias, alias
            )
            key = block_key(requalified)
            if key not in merged:
                merged[key] = (requalified.condition, {}, [])
                order.append(key)
            _, spec_names, shared_specs = merged[key]
            for original, spec in zip(block.aggregates, requalified.aggregates):
                spec_key = _spec_key(spec)
                shared_name = spec_names.get(spec_key)
                if shared_name is None:
                    shared_name = f"mqo_{fresh}"
                    fresh += 1
                    spec_names[spec_key] = shared_name
                    shared_specs.append(AggregateSpec(
                        spec.function, spec.argument, shared_name,
                        spec.distinct,
                    ))
                outputs.append((shared_name, original.output_name))
        slots.append(ConsumerSlot(candidate=candidate, outputs=outputs))
    blocks = [
        ThetaBlock(list(merged[key][2]), merged[key][0]) for key in order
    ]
    shared = GMDJ(
        base=candidates[0].gmdj.base,
        detail=ScanTable(table, alias),
        blocks=blocks,
    )
    return SharedGMDJPlan(
        gmdj=shared,
        detail_table=table,
        slots=slots,
        consumer_blocks=sum(len(c.gmdj.blocks) for c in candidates),
        shared_blocks=len(blocks),
    )


def split_result(
    shared_result: Relation,
    slot: ConsumerSlot,
    base_width: int,
    consumer_schema: Schema,
) -> Relation:
    """Project one consumer's GMDJ output back out of the shared result.

    Base columns come first in both schemas (the shared GMDJ and every
    consumer GMDJ extend the *same* base schema), so the split keeps the
    base prefix and gathers the consumer's aggregate columns in its
    original order, renamed back via the slot's routing.  Row order is
    preserved — the shared GMDJ emits one row per base tuple in base
    order, exactly as the consumer's own GMDJ would have.
    """
    positions = [
        shared_result.schema.index_of(shared_name)
        for shared_name, _ in slot.outputs
    ]
    rows = [
        tuple(row[:base_width]) + tuple(row[position] for position in positions)
        for row in shared_result.rows
    ]
    return Relation(consumer_schema, rows, validate=False)


def graft_consumer(slot: ConsumerSlot, consumer_result: Relation) -> Operator:
    """The consumer's residual plan with its GMDJ replaced by the result.

    The original GMDJ (or fused SelectGMDJ) node is swapped for a
    :class:`TableValue` holding the split relation; a fused consumer
    gets its completion selection re-applied as an ordinary ``Select``
    over the now-exact aggregates.
    """
    candidate = slot.candidate
    replacement: Operator = TableValue(consumer_result)
    if candidate.selection is not None:
        replacement = Select(replacement, candidate.selection)

    def step(node: Operator) -> Operator:
        return replacement if node is candidate.node else node

    return transform_bottom_up(candidate.plan, step)
