"""Partitioned (parallel/distributed) GMDJ evaluation.

The paper's conclusion notes that "the GMDJ operator is well-suited to
evaluation in a parallel or distributed DBMS environment [3]".  The
underlying algebraic fact is simple and exploited here:

    MD(B, R1 ∪ R2, l, θ)  =  merge(MD(B, R1, l, θ), MD(B, R2, l, θ))

where *merge* combines the per-base-tuple aggregate values columnwise
(counts and sums add, min/min, max/max; AVG is decomposed into SUM and
COUNT first since finalized averages do not merge).  The detail relation
is split into ``partitions`` horizontal fragments, each fragment is
evaluated independently against the same (replicated) base-values
relation — one scan per fragment — and the partial results are merged
before finalization.

Two execution regimes share that decomposition:

* ``workers=1`` (default) evaluates the fragments sequentially
  in-process: it demonstrates, and the tests pin down, the *correctness*
  of the partition/merge split and its work profile — total tuples
  scanned equal the single-scan evaluation, i.e. parallelism costs no
  extra passes over the data.
* ``workers>1`` dispatches the fragments to a worker pool
  (:mod:`repro.gmdj.pool`): processes for large details (true multi-core
  speedup), threads for small ones.  Worker IOStats and trace spans are
  propagated back, so counters, EXPLAIN ANALYZE, and the invariant
  checker behave identically to the sequential path.

Completion-fused evaluation (``SelectGMDJ``) is deliberately not
partitioned: dooming decisions depend on global scan order, so the
planner keeps completion on single-node plans.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra.aggregates import AggregateSpec
from repro.errors import ConfigurationError
from repro.gmdj.evaluate import run_gmdj
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.obs.tracer import span
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def partition_rows(relation: Relation, partitions: int) -> list[Relation]:
    """Split a relation into ``partitions`` contiguous fragments.

    Fragments may be empty when the relation is smaller than the
    partition count; the merge is insensitive to fragment sizing.
    """
    if partitions < 1:
        raise ConfigurationError(f"partitions must be >= 1, got {partitions}")
    total = len(relation.rows)
    size = (total + partitions - 1) // partitions if total else 0
    fragments = []
    for index in range(partitions):
        chunk = relation.rows[index * size:(index + 1) * size] if size else []
        fragments.append(Relation(relation.schema, chunk, validate=False))
    return fragments


def _merge_add(left: Any, right: Any) -> Any:
    """Counts and sums: NULL means "no contribution"."""
    if left is None:
        return right
    if right is None:
        return left
    return left + right


def _merge_min(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    return left if left <= right else right


def _merge_max(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    return left if left >= right else right


_MERGERS = {"count": _merge_add, "sum": _merge_add,
            "min": _merge_min, "max": _merge_max}


def _shadow_plan(
    gmdj: GMDJ,
) -> tuple[GMDJ, list[str], list[tuple]]:
    """Rewrite AVG specs to SUM+COUNT so every output column merges.

    Returns ``(shadow_gmdj, merge_kinds, reconstruct)`` where
    ``merge_kinds[i]`` names the merge function of shadow aggregate
    column *i* and ``reconstruct`` maps each original output column to
    either ``("direct", shadow_name)`` or ``("avg", sum_name, cnt_name)``.
    """
    blocks: list[ThetaBlock] = []
    merge_kinds: list[str] = []
    reconstruct: list[tuple] = []
    serial = 0
    for block in gmdj.blocks:
        shadow_specs: list[AggregateSpec] = []
        for spec in block.aggregates:
            if spec.function == "avg":
                serial += 1
                sum_name = f"__psum{serial}"
                count_name = f"__pcnt{serial}"
                shadow_specs.append(AggregateSpec("sum", spec.argument,
                                                  sum_name))
                shadow_specs.append(AggregateSpec("count", spec.argument,
                                                  count_name))
                merge_kinds.extend(["sum", "count"])
                reconstruct.append(("avg", sum_name, count_name))
            else:
                shadow_specs.append(spec)
                merge_kinds.append(spec.function)
                reconstruct.append(("direct", spec.output_name))
        blocks.append(ThetaBlock(shadow_specs, block.condition))
    return GMDJ(gmdj.base, gmdj.detail, blocks), merge_kinds, reconstruct


def evaluate_gmdj_partitioned(
    gmdj: GMDJ,
    catalog: Catalog,
    partitions: int = 4,
    workers: int | None = None,
    executor: str | None = None,
    vectorized: bool = False,
    chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Evaluate a GMDJ over a horizontally partitioned detail relation.

    Bag-equivalent to ``gmdj.evaluate(catalog)`` for any partition count
    and any worker count.  ``workers`` defaults to the ``REPRO_WORKERS``
    environment variable (else 1 = sequential fragments); ``executor``
    picks the pool flavour (``"thread"``/``"process"``/``"auto"``);
    ``vectorized`` scans every fragment on the columnar batch kernel.
    """
    from repro.gmdj.pool import resolve_workers

    if partitions < 1:
        raise ConfigurationError(f"partitions must be >= 1, got {partitions}")
    workers = resolve_workers(workers)
    run = _fragment_runner(vectorized, chunk_size, backend)
    with span("GMDJ(partitioned)", kind="gmdj_partitioned",
              partitions=partitions, workers=workers,
              blocks=len(gmdj.blocks), vectorized=vectorized) as sp:
        with span("base", kind="materialize"):
            base = gmdj.base.evaluate(catalog)
        with span("detail", kind="materialize"):
            detail = gmdj.detail.evaluate(catalog)
        sp.set(base_rows=len(base), detail_rows=len(detail),
               relation=getattr(detail, "name", None) or "<derived>")
        IOStats.ambient().record_scan(len(base))
        output_schema = gmdj.schema(catalog)
        # Certificate gate: partition-and-merge is sound only for
        # decomposable (distributive/algebraic) aggregates.  Holistic
        # ones — today exactly the DISTINCT specs — finalize to
        # unmergeable values; evaluate them in one scan (a distributed
        # engine would ship value sets).
        from repro.lint.absint import decomposable_aggregates

        if (partitions == 1 or len(detail) == 0
                or not decomposable_aggregates(gmdj)):
            sp.set(partitions=1, workers=1)
            result = run(base, detail, gmdj, output_schema)
            sp.set(output_rows=len(result))
            return result
        result = _evaluate_partitions(
            gmdj, base, detail, partitions, output_schema, catalog,
            workers, executor, vectorized=vectorized, chunk_size=chunk_size,
            backend=backend,
        )
        sp.set(output_rows=len(result))
        return result


def _fragment_runner(
    vectorized: bool, chunk_size: int | None, backend: str | None = None,
) -> Callable[[Relation, Relation, GMDJ, Schema], Relation]:
    """The per-fragment kernel: row interpreter or columnar batches."""
    if not vectorized:
        return run_gmdj
    from repro.gmdj.vectorized import run_gmdj_vectorized

    def run(base: Relation, fragment: Relation, plan: GMDJ,
            schema: Schema) -> Relation:
        return run_gmdj_vectorized(base, fragment, plan, schema,
                                   chunk_size=chunk_size, backend=backend)
    return run


def _evaluate_partitions(
    gmdj: GMDJ,
    base: Relation,
    detail: Relation,
    partitions: int,
    output_schema: Schema,
    catalog: Catalog,
    workers: int = 1,
    executor: str | None = None,
    vectorized: bool = False,
    chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Partitioned evaluation proper: fragment scans + columnwise merge."""
    shadow, merge_kinds, reconstruct = _shadow_plan(gmdj)
    shadow_schema = shadow.schema(catalog)
    fragments = partition_rows(detail, partitions)
    run = _fragment_runner(vectorized, chunk_size, backend)

    if workers > 1:
        from repro.gmdj.pool import map_partitions

        partials = map_partitions(base, fragments, shadow, shadow_schema,
                                  workers, executor,
                                  vectorized=vectorized,
                                  chunk_size=chunk_size,
                                  backend=backend)
    else:
        partials = []
        for number, fragment in enumerate(fragments, start=1):
            with span(f"partition {number}", kind="partition",
                      detail_rows=len(fragment)):
                partials.append(
                    run(base, fragment, shadow, shadow_schema).rows
                )

    merged = _merge_partials(partials, merge_kinds, len(base.schema))
    return _finalize(merged, reconstruct, shadow_schema, len(base.schema),
                     output_schema)


def _merge_partials(
    partials: list[list], merge_kinds: list[str], base_arity: int
) -> list[list]:
    """Columnwise merge of per-fragment partial aggregate rows."""
    merged: list[list] | None = None
    for partial_rows in partials:
        if merged is None:
            merged = [list(row) for row in partial_rows]
            continue
        for row_state, row in zip(merged, partial_rows):
            for offset in range(base_arity, len(row)):
                merger = _MERGERS[merge_kinds[offset - base_arity]]
                row_state[offset] = merger(row_state[offset], row[offset])
    assert merged is not None
    return merged


def _finalize(
    merged: list[list],
    reconstruct: list[tuple],
    shadow_schema: Schema,
    base_arity: int,
    output_schema: Schema,
) -> Relation:
    """Map merged shadow columns back to the requested output columns."""
    shadow_index = {
        field.name: i for i, field in enumerate(shadow_schema.fields)
    }
    out_rows = []
    for row_state in merged:
        values = list(row_state[:base_arity])
        for entry in reconstruct:
            if entry[0] == "direct":
                values.append(row_state[shadow_index[entry[1]]])
            else:
                total = row_state[shadow_index[entry[1]]]
                count = row_state[shadow_index[entry[2]]]
                values.append(None if not count else total / count)
        out_rows.append(tuple(values))
    return Relation(output_schema, out_rows, validate=False)
