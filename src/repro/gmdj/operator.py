"""The Generalized Multi-Dimensional Join operator (GMDJ).

``MD(B, R, (l_1..l_m), (θ_1..θ_m))`` extends every tuple ``b`` of the
*base-values relation* B with the aggregates of each list ``l_i`` computed
over ``RNG(b, R, θ_i)`` — the detail tuples satisfying θ_i for b
(Definition 2.1 of the paper).  The operator's salient properties, all
reflected in this implementation:

* output size is bounded by ``|B|`` — one output tuple per base tuple;
* the detail relation R is consumed in a **single scan** regardless of how
  many (θ, l) blocks the operator carries;
* grouping (B, θ) is cleanly separated from aggregation (l), so multiple
  subqueries over the same detail table coalesce into one operator.

:class:`GMDJ` is a logical node implementing the flat-algebra ``Operator``
protocol; evaluation lives in :mod:`repro.gmdj.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import Expression
from repro.algebra.operators import Operator
from repro.errors import SchemaError
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.schema import Field, Schema


@dataclass
class ThetaBlock:
    """One ``(l_i, θ_i)`` pair: aggregates over ``RNG(b, R, θ_i)``."""

    aggregates: list[AggregateSpec]
    condition: Expression

    def output_fields(self, detail_schema: Schema) -> list[Field]:
        return [spec.output_field(detail_schema) for spec in self.aggregates]


@dataclass
class GMDJ(Operator):
    """``MD(base, detail, (l_1..l_m), (θ_1..θ_m))`` as a logical operator."""

    base: Operator
    detail: Operator
    blocks: list[ThetaBlock]

    def __post_init__(self) -> None:
        names = [
            spec.output_name for block in self.blocks for spec in block.aggregates
        ]
        if len(names) != len(set(names)):
            raise SchemaError(
                f"duplicate aggregate output names in GMDJ: {names}"
            )
        if not self.blocks:
            raise SchemaError("a GMDJ needs at least one (l, theta) block")

    def children(self) -> tuple[Operator, ...]:
        return (self.base, self.detail)

    def output_names(self) -> list[str]:
        """The aggregate output attribute names, in schema order."""
        return [
            spec.output_name for block in self.blocks for spec in block.aggregates
        ]

    def schema(self, catalog: Catalog) -> Schema:
        base_schema = self.base.schema(catalog)
        detail_schema = self.detail.schema(catalog)
        extra = []
        for block in self.blocks:
            extra.extend(block.output_fields(detail_schema))
        return base_schema.extend(extra)

    def evaluate(self, catalog: Catalog) -> Relation:
        from repro.gmdj.evaluate import evaluate_gmdj

        return evaluate_gmdj(self, catalog)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"({block.aggregates!r}, {block.condition!r})" for block in self.blocks
        )
        return f"MD({self.base!r}, {self.detail!r}, [{parts}])"


def md(
    base: Operator,
    detail: Operator,
    aggregate_lists: Sequence[Sequence[AggregateSpec]],
    conditions: Sequence[Expression],
) -> GMDJ:
    """Construct a GMDJ in the paper's argument order.

    ``md(B, R, (l1, l2), (theta1, theta2))`` mirrors
    ``MD(B, R, (l_1, l_2), (θ_1, θ_2))``.
    """
    if len(aggregate_lists) != len(conditions):
        raise SchemaError(
            f"{len(aggregate_lists)} aggregate lists but "
            f"{len(conditions)} conditions"
        )
    blocks = [
        ThetaBlock(list(aggs), condition)
        for aggs, condition in zip(aggregate_lists, conditions)
    ]
    return GMDJ(base, detail, blocks)
