"""Base-tuple completion (Section 4.2 of the paper).

During GMDJ evaluation a base tuple is *completed* once no further detail
tuple can change whether it appears in the final result:

* **Theorem 4.1** (``σ[|RNG| > 0]`` with aggregates projected away): a base
  tuple is completed-and-kept as soon as every required θ has matched once.
* **Theorem 4.2** (``σ[|RNG| = 0]``): a base tuple is completed-and-dropped
  as soon as a forbidden θ matches once.
* The ALL translation (``σ[cnt1 = cnt2]`` with ``θ_1 = θ_2 ∧ φ``) supports
  a pairwise form: a base tuple is dropped as soon as a detail tuple
  matches the weak block (θ_2) without matching the restrictive block
  (θ_1) — exactly the "smart nested loop" trick the paper observed in its
  target DBMS, generalized to the GMDJ.

:func:`derive_completion_rule` inspects the selection applied on top of a
GMDJ and extracts those atoms; the evaluator uses the rule to doom or
assure base tuples mid-scan and the enclosing fused operator applies the
full selection to whatever remains undecided at the end of the scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import (
    Column,
    Comparison,
    Expression,
    Literal,
    conjuncts_of,
)
from repro.gmdj.operator import GMDJ


@dataclass
class CompletionRule:
    """Early-decision atoms extracted from a selection over a GMDJ.

    ``must_be_zero``    block indices whose count(*) must end at 0 — one
                        match dooms the base tuple (Theorem 4.2).
    ``need_positive``   block indices whose count(*) must end > 0 — once
                        all have matched the tuple is assured, provided
                        assurance is allowed (Theorem 4.1).
    ``need_at_least``   ``(block, k)`` pairs for ``cnt >= k`` conjuncts
                        with k > 1 — assured after the k-th match (a
                        straightforward generalization of Theorem 4.1).
    ``pair_equal``      ``(restrictive, weak)`` block index pairs encoding
                        ``cnt_restrictive = cnt_weak``; a weak-only match
                        dooms the tuple (the ALL case).
    ``exhaustive``      True when *every* conjunct of the selection was
                        recognized, so satisfying all atoms is sufficient
                        (not merely necessary) for the tuple to survive.
    ``aggregates_projected``  True when the enclosing projection discards
                        every aggregate output, so a frozen (assured)
                        tuple's partial counts are never observed.
    """

    must_be_zero: list[int] = field(default_factory=list)
    need_positive: list[int] = field(default_factory=list)
    pair_equal: list[tuple[int, int]] = field(default_factory=list)
    need_at_least: list[tuple[int, int]] = field(default_factory=list)
    exhaustive: bool = False
    aggregates_projected: bool = False

    @property
    def can_doom(self) -> bool:
        return bool(self.must_be_zero or self.pair_equal)

    @property
    def can_assure(self) -> bool:
        """Assurance (freeze-and-keep) is sound only under Theorem 4.1.

        All conjuncts must be recognized threshold atoms, there must be
        nothing that a later detail tuple could still violate, and the
        aggregates must be projected away (their values will be partial).
        """
        return (
            self.exhaustive
            and self.aggregates_projected
            and bool(self.need_positive or self.need_at_least)
            and not self.must_be_zero
            and not self.pair_equal
        )

    def thresholds(self) -> dict:
        """All assurance thresholds: ``{block_index: required_matches}``."""
        needed = {index: 1 for index in self.need_positive}
        for index, count in self.need_at_least:
            needed[index] = max(needed.get(index, 0), count)
        return needed

    @property
    def useful(self) -> bool:
        return self.can_doom or self.can_assure

    def summary(self) -> str:
        """Compact one-line rendering used in trace span attributes."""
        parts = []
        if self.must_be_zero:
            parts.append("zero=" + ",".join(map(str, self.must_be_zero)))
        if self.need_positive:
            parts.append("pos=" + ",".join(map(str, self.need_positive)))
        if self.need_at_least:
            parts.append("atleast=" + ",".join(
                f"{index}:{count}" for index, count in self.need_at_least
            ))
        if self.pair_equal:
            parts.append("pair=" + ",".join(
                f"{restrictive}={weak}"
                for restrictive, weak in self.pair_equal
            ))
        parts.append(
            "doom" if self.can_doom else
            "assure" if self.can_assure else "inert"
        )
        if self.can_doom and self.can_assure:
            parts[-1] = "doom+assure"
        return " ".join(parts)


def _count_star_block_index(gmdj: GMDJ, output_name: str) -> int | None:
    """The block index whose single count(*) produces ``output_name``."""
    for index, block in enumerate(gmdj.blocks):
        for spec in block.aggregates:
            if spec.output_name == output_name:
                return index if spec.is_count_star else None
    return None


def _is_zero_literal(expression: Expression) -> bool:
    return isinstance(expression, Literal) and expression.value == 0


def _block_conjunct_keys(gmdj: GMDJ, index: int) -> set[str]:
    return {repr(c) for c in conjuncts_of(gmdj.blocks[index].condition)}


def derive_completion_rule(
    selection: Expression, gmdj: GMDJ, aggregates_projected: bool
) -> CompletionRule:
    """Extract completion atoms from ``σ[selection]`` over ``gmdj``.

    Unrecognized conjuncts are permitted — they simply leave ``exhaustive``
    False, which disables assurance but keeps dooming sound (a tuple that
    falsifies one conjunct of a conjunction fails the whole selection).
    """
    rule = CompletionRule(aggregates_projected=aggregates_projected)
    exhaustive = True
    for conjunct in conjuncts_of(selection):
        if not _classify_conjunct(conjunct, gmdj, rule):
            exhaustive = False
    rule.exhaustive = exhaustive
    return rule


def _classify_conjunct(
    conjunct: Expression, gmdj: GMDJ, rule: CompletionRule
) -> bool:
    """Try to turn one conjunct into a completion atom.  True on success."""
    if not isinstance(conjunct, Comparison):
        return False
    left, right = conjunct.left, conjunct.right
    op = conjunct.op
    # Normalize literal-first comparisons: 0 < cnt  ->  cnt > 0.
    if isinstance(left, Literal) and isinstance(right, Column):
        left, right = right, left
        op = conjunct.mirrored().op
    if isinstance(left, Column) and isinstance(right, Literal):
        index = _count_star_block_index(gmdj, left.reference)
        if index is None:
            return False
        if op == "=" and _is_zero_literal(right):
            rule.must_be_zero.append(index)
            return True
        if op == ">" and _is_zero_literal(right):
            rule.need_positive.append(index)
            return True
        if op == ">=" and isinstance(right, Literal) and right.value == 1:
            rule.need_positive.append(index)
            return True
        if (op == ">=" and isinstance(right, Literal)
                and isinstance(right.value, int) and right.value > 1):
            rule.need_at_least.append((index, right.value))
            return True
        if (op == ">" and isinstance(right, Literal)
                and isinstance(right.value, int) and right.value > 0):
            rule.need_at_least.append((index, right.value + 1))
            return True
        if op == "<>" and _is_zero_literal(right):
            rule.need_positive.append(index)
            return True
        return False
    if isinstance(left, Column) and isinstance(right, Column) and op == "=":
        index_a = _count_star_block_index(gmdj, left.reference)
        index_b = _count_star_block_index(gmdj, right.reference)
        if index_a is None or index_b is None or index_a == index_b:
            return False
        keys_a = _block_conjunct_keys(gmdj, index_a)
        keys_b = _block_conjunct_keys(gmdj, index_b)
        # cnt_restrictive = cnt_weak with θ_restrictive ⊇ θ_weak (as
        # conjunct sets) guarantees RNG_restrictive ⊆ RNG_weak, which is
        # what makes the pairwise doom sound.
        if keys_b < keys_a:
            rule.pair_equal.append((index_a, index_b))
            return True
        if keys_a < keys_b:
            rule.pair_equal.append((index_b, index_a))
            return True
        return False
    return False
