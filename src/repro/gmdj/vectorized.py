"""Columnar batch GMDJ kernels: the detail scan in fixed-size chunks.

The row kernel (:mod:`repro.gmdj.evaluate`) walks the detail relation
tuple-at-a-time, paying per-node closure dispatch for every hash key,
residual, and aggregate argument on every row.  This kernel amortizes
that overhead across *batches*:

* the detail relation is transposed once into a
  :class:`~repro.storage.columnar.ColumnarRelation` and scanned as
  fixed-size index chunks (``chunk_size`` rows at a time);
* hash keys, residual θ predicates, and aggregate arguments run as
  *compiled batch functions* (:mod:`repro.algebra.compile`) — one
  generated frame loops over the chunk instead of one closure chain per
  row;
* per-block aggregate accumulators are updated in bulk per chunk (a
  count(*) over a matching run collapses to one addition).

Everything observable is preserved: it remains a **single scan** of the
detail relation (one ``detail_scan`` span, identical
:class:`~repro.storage.iostats.IOStats` page/tuple accounting — and for
completion-free runs, *identical* probe/predicate/update counters, since
batching reorders work without changing how much of it happens), output
stays bounded by |B|, and the static cost certificate holds unchanged.

Completion runs (``rule`` set) cannot be fully batched — dooming depends
on the per-row set of matched blocks — so they chunk the scan and run
the row kernel's own ``_scan_detail`` per chunk with codegen'd row
evaluators swapped in, filtering the active set between chunks.  That
path is counter-identical to the row kernel by construction.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.algebra.aggregates import AggregateBlock, CountStar
from repro.algebra.analysis import factor_condition
from repro.algebra.compile import (
    compile_batch_keys,
    compile_batch_values,
    compile_detail_filter,
    compile_pair_filter,
    compile_row,
)
from repro.algebra.expressions import Expression
from repro.errors import ConfigurationError
from repro.gmdj.completion import CompletionRule
from repro.gmdj.evaluate import (
    _ACTIVE,
    _BlockRuntime,
    SelectGMDJ,
    _emit_rows,
    _scan_detail,
)
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.obs.tracer import span
from repro.storage.catalog import Catalog
from repro.storage.columnar import ColumnarRelation, cached_columnar
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.storage.schema import Schema

#: Default detail rows per batch.  Large enough to amortize the batch
#: function call overhead, small enough that per-chunk scratch (pending
#: lists, survivor lists) stays cache-resident.
DEFAULT_CHUNK_SIZE = 1024


def resolve_chunk_size(chunk_size: int | None) -> int:
    if chunk_size is None:
        return DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    return chunk_size


def resolve_backend(backend: str | None) -> str:
    """The kernel backend actually used for this scan.

    Resolution order: explicit option > ``REPRO_BACKEND`` environment
    variable > ``"python"``.  ``"auto"`` picks numpy when the optional
    extra is importable; asking for ``"numpy"`` without it is a clean
    :class:`~repro.errors.ConfigurationError`.
    """
    from repro.engine.options import QueryOptions
    from repro.storage.npcolumns import HAVE_NUMPY, require_numpy

    if backend is None:
        backend = QueryOptions.environment_backend()
    if backend is None or backend == "python":
        return "python"
    if backend == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    require_numpy()  # backend == "numpy"
    return "numpy"


class _VectorBlock:
    """Batch-compiled companions of one :class:`_BlockRuntime`."""

    __slots__ = ("runtime", "key_batch", "filter_pair", "filter_detail",
                 "value_fns")

    def __init__(self, runtime: _BlockRuntime, block: ThetaBlock,
                 base: Relation, detail_schema: Schema) -> None:
        self.runtime = runtime
        factored = factor_condition(block.condition, base.schema,
                                    detail_schema)
        self.key_batch = (
            compile_batch_keys(factored.right_keys, detail_schema)
            if runtime.uses_hash else None
        )
        self.filter_pair = None
        self.filter_detail = None
        if factored.residual is not None:
            if runtime.invariant:
                self.filter_detail = compile_detail_filter(
                    factored.residual, detail_schema)
            else:
                self.filter_pair = compile_pair_filter(
                    factored.residual, base.schema, detail_schema)
        self.value_fns = [
            None if spec.argument is None
            else compile_batch_values(spec.argument, detail_schema)
            for spec in block.aggregates
        ]


def _bulk_update(state_list: Sequence[Any], value_fns: Sequence,
                 cols: Sequence, indices: Sequence[int],
                 stats: IOStats) -> None:
    """Fused accumulator update for every survivor of one chunk.

    Mirrors :meth:`AggregateBlock.update` applied once per index — same
    ``aggregate_updates`` total, same per-accumulator value order — but
    with one batch argument evaluation per spec and a constant-time fast
    path for count(*).
    """
    count = len(indices)
    for accumulator, value_fn in zip(state_list, value_fns):
        stats.aggregate_updates += count
        if value_fn is None:
            if type(accumulator) is CountStar:
                accumulator.count += count
            else:
                add = accumulator.add
                for _ in range(count):
                    add(None)
        else:
            add = accumulator.add
            for value in value_fn(cols, indices):
                add(value)


def _never_null_positions(detail: Relation) -> frozenset[int]:
    """Detail column positions the ambient capability certificate proves
    NULL-free, keyed by the stored relation's name.

    Conservative by construction: no ambient certificate (pool workers —
    ContextVars do not cross executor threads), a derived detail (no
    name), or a name the certificate does not mention all yield the
    empty set, and the encoder keeps its validity masks.
    """
    # Imported here: repro.lint pulls in the algebra package, which pulls
    # in repro.gmdj — a module-level import would close the cycle.
    from repro.lint.absint import current_capabilities

    certificate = current_capabilities()
    name = getattr(detail, "name", None)
    if certificate is None or name is None:
        return frozenset()
    never = certificate.detail_never_null().get(name)
    if not never:
        return frozenset()
    return frozenset(
        position for position, field in enumerate(detail.schema.fields)
        if field.name in never
    )


def _scan_batched(columnar: ColumnarRelation, vblocks: list[_VectorBlock],
                  base_rows: Sequence[tuple], state: list[list[Any]],
                  stats: IOStats, chunk_size: int) -> None:
    """The completion-free batch scan: every base tuple stays active.

    Operates on a pre-built columnar encoding so chunked fragments and
    the numpy backend's per-block fallbacks reuse one transposition
    (see :func:`repro.storage.columnar.cached_columnar`).
    """
    cols = columnar.value_columns()
    total = columnar.length
    n_base = len(base_rows)
    for number, start in enumerate(range(0, total, chunk_size), start=1):
        indices = range(start, min(start + chunk_size, total))
        with span(f"chunk {number}", kind="chunk_batch", rows=len(indices)):
            for vblock in vblocks:
                runtime = vblock.runtime
                if runtime.invariant:
                    if vblock.filter_detail is not None:
                        stats.predicate_evals += len(indices)
                        survivors = vblock.filter_detail(cols, indices)
                    else:
                        survivors = indices
                    if survivors:
                        _bulk_update(runtime.shared_state, vblock.value_fns,
                                     cols, survivors, stats)
                    continue
                block_index = runtime.index
                filter_pair = vblock.filter_pair
                if runtime.uses_hash:
                    keys = vblock.key_batch(cols, indices)
                    stats.index_probes += len(indices)
                    buckets_get = runtime.buckets.get
                    pending: dict[int, list[int]] = {}
                    for i, key in zip(indices, keys):
                        candidates = buckets_get(key)
                        if candidates is None:
                            continue
                        for base_index in candidates:
                            matches = pending.get(base_index)
                            if matches is None:
                                pending[base_index] = [i]
                            else:
                                matches.append(i)
                    for base_index, matches in pending.items():
                        if filter_pair is not None:
                            stats.predicate_evals += len(matches)
                            matches = filter_pair(base_rows[base_index],
                                                  cols, matches)
                            if not matches:
                                continue
                        _bulk_update(state[base_index][block_index],
                                     vblock.value_fns, cols, matches, stats)
                else:
                    # Scan block, no completion: every base row is a
                    # candidate for every chunk (exactly the row kernel's
                    # full active list).
                    for base_index in range(n_base):
                        if filter_pair is not None:
                            stats.predicate_evals += len(indices)
                            matches = filter_pair(base_rows[base_index],
                                                  cols, indices)
                            if not matches:
                                continue
                        else:
                            matches = indices
                        _bulk_update(state[base_index][block_index],
                                     vblock.value_fns, cols, matches, stats)


def _recompile_runtimes(runtimes: list[_BlockRuntime], gmdj: GMDJ,
                        base: Relation, detail_schema: Schema,
                        combined_schema: Schema) -> None:
    """Swap codegen'd row evaluators into row-kernel block runtimes.

    Used by the completion path: the scan logic stays the row kernel's
    (completion bookkeeping is inherently row-at-a-time) but every
    residual, hash key, and aggregate argument runs as one compiled
    frame instead of a closure chain.
    """
    for runtime, block in zip(runtimes, gmdj.blocks):
        factored = factor_condition(block.condition, base.schema,
                                    detail_schema)
        if factored.residual is not None:
            schema = detail_schema if runtime.invariant else combined_schema
            runtime.residual_eval = compile_row(factored.residual, schema)
        if runtime.uses_hash:
            runtime.right_key_evals = [
                compile_row(key, detail_schema)
                for key in factored.right_keys
            ]
        runtime.aggregates.recompile(
            lambda expr: compile_row(expr, detail_schema))


def run_gmdj_vectorized(
    base: Relation,
    detail: Relation,
    gmdj: GMDJ,
    output_schema: Schema,
    rule: CompletionRule | None = None,
    selection: Expression | None = None,
    chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Batch-evaluate a GMDJ; bag-equal to :func:`run_gmdj` always.

    Without a completion rule the counters (probes, predicate
    evaluations, aggregate updates, pages, tuples) are *identical* to
    the row kernel's; with one, page/tuple accounting is identical and
    the result bag matches exactly (the scan chunks through the row
    kernel's own completion logic).

    ``backend="numpy"`` routes completion-free θ blocks through the
    whole-array kernel (:mod:`repro.gmdj.npkernel`); blocks or
    aggregates without an exact array form fall back per operator and
    the reasons land on the ``detail_scan`` span for EXPLAIN ANALYZE.
    """
    chunk_size = resolve_chunk_size(chunk_size)
    resolved_backend = resolve_backend(backend)
    stats = IOStats.ambient()
    detail_schema = detail.schema
    combined_schema = base.schema.concat(detail_schema)
    runtimes = [
        _BlockRuntime(i, block, base, detail_schema, combined_schema,
                      allow_invariant=rule is None)
        for i, block in enumerate(gmdj.blocks)
    ]
    base_rows = base.rows
    n_base = len(base_rows)
    state = [
        [runtime.aggregates.new_state() for runtime in runtimes]
        for _ in range(n_base)
    ]
    status = bytearray(n_base)
    total = len(detail)
    chunks = -(-total // chunk_size) if total else 0

    never_null = _never_null_positions(detail) if rule is None else frozenset()
    fallbacks: list[str] = []
    with span("scan", kind="detail_scan",
              relation=getattr(detail, "name", None) or "<derived>",
              rows=total, chunks=chunks, chunk_size=chunk_size,
              vectorized=True, backend=resolved_backend,
              mask_skipped=len(never_null)) as scan_span:
        stats.record_scan(total)
        if rule is None:
            columnar = cached_columnar(detail, never_null)
            block_pairs = list(zip(runtimes, gmdj.blocks))
            if resolved_backend == "numpy":
                from repro.gmdj.npkernel import run_numpy_scan

                block_pairs, fallbacks = run_numpy_scan(
                    columnar, runtimes, gmdj.blocks, base, detail_schema,
                    combined_schema, state, stats,
                )
            if block_pairs:
                vblocks = [
                    _VectorBlock(runtime, block, base, detail_schema)
                    for runtime, block in block_pairs
                ]
                _scan_batched(columnar, vblocks, base_rows, state, stats,
                              chunk_size)
        else:
            if resolved_backend == "numpy":
                # Completion bookkeeping is inherently row-at-a-time;
                # the chunked row-kernel path below handles it.
                fallbacks.append("completion rule: row-kernel chunked scan")
            _recompile_runtimes(runtimes, gmdj, base, detail_schema,
                                combined_schema)
            must_be_zero = frozenset(rule.must_be_zero)
            pair_equal = tuple(rule.pair_equal)
            thresholds = rule.thresholds() if rule.can_assure else {}
            remaining_needs = (
                [dict(thresholds) for _ in range(n_base)]
                if rule.can_assure else None
            )
            any_scan_block = any(
                not runtime.uses_hash and not runtime.invariant
                for runtime in runtimes
            )
            active_list = list(range(n_base)) if any_scan_block else None
            detail_rows = detail.rows
            for number, start in enumerate(range(0, total, chunk_size),
                                           start=1):
                chunk_rows = detail_rows[start:start + chunk_size]
                with span(f"chunk {number}", kind="chunk_batch",
                          rows=len(chunk_rows)):
                    active_list = _scan_detail(
                        chunk_rows, runtimes, base_rows, state, status,
                        stats, must_be_zero, pair_equal, rule.can_doom,
                        rule.can_assure, remaining_needs, active_list,
                    )
                if active_list is not None:
                    # Active-set filtering per chunk: completed tuples
                    # leave the candidate set before the next batch.
                    active_list = [i for i in active_list
                                   if status[i] == _ACTIVE]
        if fallbacks:
            scan_span.set(fallbacks=tuple(fallbacks))

    shared_values = {
        runtime.index: AggregateBlock.finalize(runtime.shared_state)
        for runtime in runtimes
        if runtime.invariant
    }
    selection_eval = (compile_row(selection, output_schema)
                      if selection is not None else None)
    return _emit_rows(base_rows, status, state, shared_values,
                      selection_eval, output_schema, stats)


def evaluate_gmdj_vectorized(
    gmdj: GMDJ, catalog: Catalog, chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Materialize the operands and batch-run the plain (unfused) GMDJ."""
    with span("GMDJ", kind="gmdj", blocks=len(gmdj.blocks),
              completion=False) as sp:
        with span("base", kind="materialize"):
            base = gmdj.base.evaluate(catalog)
        with span("detail", kind="materialize"):
            detail = gmdj.detail.evaluate(catalog)
        sp.set(base_rows=len(base), detail_rows=len(detail),
               relation=getattr(detail, "name", None) or "<derived>")
        IOStats.ambient().record_scan(len(base))
        result = run_gmdj_vectorized(base, detail, gmdj,
                                     gmdj.schema(catalog),
                                     chunk_size=chunk_size,
                                     backend=backend)
        sp.set(output_rows=len(result))
        return result


def evaluate_select_gmdj_vectorized(
    node: SelectGMDJ, catalog: Catalog, chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Batch-run a fused ``σ[C](MD(...))`` (a :class:`SelectGMDJ` node)."""
    rule = node.rule
    gmdj = node.gmdj
    with span("SelectGMDJ", kind="gmdj",
              blocks=len(gmdj.blocks), completion=rule is not None,
              rule=rule.summary() if rule is not None else None) as sp:
        with span("base", kind="materialize"):
            base = gmdj.base.evaluate(catalog)
        with span("detail", kind="materialize"):
            detail = gmdj.detail.evaluate(catalog)
        sp.set(base_rows=len(base), detail_rows=len(detail),
               relation=getattr(detail, "name", None) or "<derived>")
        IOStats.ambient().record_scan(len(base))
        result = run_gmdj_vectorized(
            base, detail, gmdj, gmdj.schema(catalog),
            rule=rule, selection=node.selection, chunk_size=chunk_size,
            backend=backend,
        )
        sp.set(output_rows=len(result))
        return result
