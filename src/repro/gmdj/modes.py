"""Plan-level chunked and partitioned GMDJ evaluation.

:func:`repro.gmdj.chunked.evaluate_gmdj_chunked` and
:func:`repro.gmdj.parallel.evaluate_gmdj_partitioned` evaluate a *single*
GMDJ node.  The translator, however, produces whole operator trees —
projections and selections over (possibly stacked) GMDJs.  This module
walks such a tree and evaluates every GMDJ node it contains under a
memory-bounded or partitioned regime, leaving all other operators to
their ordinary ``evaluate``.

This is what the ``gmdj_chunked`` / ``gmdj_parallel`` planner strategies
and the differential fuzzer's evaluation modes run: the full
SubqueryToGMDJ translation, with every GMDJ executed the way a
memory-constrained or parallel deployment would execute it.  Both are
bag-equivalent to plain evaluation for any budget / partition count.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.algebra.operators import Operator, TableValue
from repro.algebra.rewrite import map_children
from repro.errors import ConfigurationError
from repro.gmdj.chunked import evaluate_gmdj_chunked
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ
from repro.gmdj.parallel import evaluate_gmdj_partitioned
from repro.obs.tracer import span
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

#: Planner defaults: large enough not to slow ordinary workloads, small
#: enough to exercise the fragmented paths on benchmark-sized tables.
DEFAULT_MEMORY_TUPLES = 4096
DEFAULT_PARTITIONS = 4


def evaluate_plan_chunked(
    plan: Operator, catalog: Catalog,
    memory_tuples: int = DEFAULT_MEMORY_TUPLES,
    vectorized: bool = False,
    chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Evaluate ``plan`` with every GMDJ base-chunked to ``memory_tuples``.

    ``vectorized`` runs each base chunk's scan through the columnar batch
    kernel (``chunk_size`` detail rows per batch, optionally on the numpy
    ``backend``) instead of the row interpreter.
    """
    if memory_tuples < 1:
        raise ConfigurationError(
            f"memory budget must be >= 1, got {memory_tuples}"
        )
    with span("plan(chunked)", kind="mode", mode="chunked",
              budget=memory_tuples, vectorized=vectorized):
        return _evaluate(
            plan, catalog,
            lambda gmdj: evaluate_gmdj_chunked(
                gmdj, catalog, memory_tuples,
                vectorized=vectorized, chunk_size=chunk_size,
                backend=backend,
            ),
        )


def evaluate_plan_vectorized(
    plan: Operator, catalog: Catalog, chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Evaluate ``plan`` with every GMDJ on the columnar batch kernel.

    Single-scan evaluation exactly like plain mode — same IOStats
    accounting, same trace invariants, bag-equal output — but the detail
    scan runs in ``chunk_size``-row batches over columnar storage with
    codegen'd expressions (:mod:`repro.gmdj.vectorized`), or whole-array
    on the numpy ``backend`` (:mod:`repro.gmdj.npkernel`).  Fused
    ``SelectGMDJ`` nodes route through the kernel's completion path.
    """
    from repro.gmdj.vectorized import (
        evaluate_gmdj_vectorized,
        evaluate_select_gmdj_vectorized,
        resolve_backend,
        resolve_chunk_size,
    )

    resolved = resolve_chunk_size(chunk_size)
    with span("plan(vectorized)", kind="mode", mode="gmdj_vectorized",
              chunk_size=resolved, backend=resolve_backend(backend)):
        return _evaluate(
            plan, catalog,
            lambda gmdj: evaluate_gmdj_vectorized(gmdj, catalog, resolved,
                                                  backend=backend),
            run_select_node=lambda node: evaluate_select_gmdj_vectorized(
                node, catalog, resolved, backend=backend
            ),
        )


def evaluate_plan_partitioned(
    plan: Operator,
    catalog: Catalog,
    partitions: int = DEFAULT_PARTITIONS,
    workers: int | None = None,
    executor: str | None = None,
    vectorized: bool = False,
    chunk_size: int | None = None,
    backend: str | None = None,
) -> Relation:
    """Evaluate ``plan`` with every GMDJ's detail split into ``partitions``.

    ``workers`` > 1 evaluates the fragments of each GMDJ concurrently on
    a worker pool (see :mod:`repro.gmdj.pool`); the default follows the
    ``REPRO_WORKERS`` environment variable, else sequential fragments.
    ``vectorized`` runs every fragment's scan on the columnar batch
    kernel, optionally on the numpy ``backend``.
    """
    from repro.gmdj.pool import resolve_workers

    if partitions < 1:
        raise ConfigurationError(f"partitions must be >= 1, got {partitions}")
    workers = resolve_workers(workers)
    with span("plan(partitioned)", kind="mode", mode="partitioned",
              partitions=partitions, workers=workers, vectorized=vectorized):
        return _evaluate(
            plan, catalog,
            lambda gmdj: evaluate_gmdj_partitioned(
                gmdj, catalog, partitions, workers=workers, executor=executor,
                vectorized=vectorized, chunk_size=chunk_size, backend=backend,
            ),
        )


def _evaluate(node: Operator, catalog: Catalog,
              run_gmdj_node: Callable[[GMDJ], Relation],
              run_select_node: Callable[[SelectGMDJ], Relation] | None = None,
              ) -> Relation:
    """Bottom-up evaluation routing GMDJ nodes through ``run_gmdj_node``.

    Children are materialized first and re-wrapped as :class:`TableValue`
    (their evaluated schemas keep every qualifier, so conditions above
    them bind unchanged); the rebuilt single-level node then evaluates
    normally.  ``run_select_node`` optionally routes the rebuilt fused
    :class:`SelectGMDJ` as well (the vectorized mode's completion path);
    by default the fused node evaluates on the row kernel.
    """
    if isinstance(node, GMDJ):
        rebuilt = GMDJ(
            TableValue(_evaluate(node.base, catalog, run_gmdj_node,
                                 run_select_node)),
            TableValue(_evaluate(node.detail, catalog, run_gmdj_node,
                                 run_select_node)),
            node.blocks,
        )
        return run_gmdj_node(rebuilt)
    if isinstance(node, SelectGMDJ):
        # Completion-fused evaluation dooms base tuples based on global
        # scan order, so it stays a single scan; only its inputs are
        # materialized under the requested regime.
        inner = node.gmdj
        rebuilt_inner = GMDJ(
            TableValue(_evaluate(inner.base, catalog, run_gmdj_node,
                                 run_select_node)),
            TableValue(_evaluate(inner.detail, catalog, run_gmdj_node,
                                 run_select_node)),
            inner.blocks,
        )
        rebuilt_select = dataclasses.replace(node, gmdj=rebuilt_inner)
        if run_select_node is not None:
            return run_select_node(rebuilt_select)
        return rebuilt_select.evaluate(catalog)
    rebuilt = map_children(
        node, lambda child: TableValue(
            _evaluate(child, catalog, run_gmdj_node, run_select_node)
        )
    )
    return rebuilt.evaluate(catalog)
