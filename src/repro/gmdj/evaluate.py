"""GMDJ evaluation: one scan of the detail relation.

The evaluator materializes the base-values relation, factors every θ block
into hash-key equality conjuncts plus a residual
(:func:`repro.algebra.analysis.factor_condition`), builds one hash table
over the base rows per distinct key set, and then makes a **single pass**
over the detail relation.  Each detail tuple probes the per-block structure
for candidate base tuples, the residual is applied, and matching base
tuples have their accumulators updated incrementally.

θ blocks with no equality conjunct (e.g. the ``<>`` correlation of the
paper's Figure 4) degrade to testing every *active* base tuple per detail
tuple — this is the behaviour the paper reports as "essentially mimicking
tuple-iteration semantics", and it is exactly what base-tuple completion
(:mod:`repro.gmdj.completion`) repairs: doomed/assured tuples leave the
active set, which physically shrinks as the scan proceeds.

:class:`SelectGMDJ` is the fused ``σ[C](MD(...))`` operator produced by the
optimizer when a completion rule applies; it must own the selection because
early-doomed tuples carry partial counts that the selection could not be
trusted to reject afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.algebra.aggregates import AggregateBlock
from repro.algebra.analysis import factor_condition
from repro.algebra.expressions import Expression
from repro.algebra.operators import Operator
from repro.gmdj.completion import CompletionRule
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.obs.tracer import span
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.storage.schema import Schema

_ACTIVE, _ASSURED, _DOOMED = 0, 1, 2

#: Global switch for invariant-block sharing (Rao & Ross reuse); exposed
#: so the ablation benchmark can measure the optimization's contribution.
_INVARIANT_SHARING = True


class invariant_sharing:
    """Context manager toggling invariant-block sharing (for ablations)."""

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self._previous = True

    def __enter__(self) -> "invariant_sharing":
        global _INVARIANT_SHARING
        self._previous = _INVARIANT_SHARING
        _INVARIANT_SHARING = self.enabled
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _INVARIANT_SHARING
        _INVARIANT_SHARING = self._previous


class _BlockRuntime:
    """Per-θ-block bound state: hash table, active-list, or invariant path.

    A block whose condition references only detail attributes is
    *invariant* (Rao & Ross's "reusing invariants", which the paper cites
    as one of the optimization schemes the GMDJ generalizes): its range
    is identical for every base tuple, so its aggregates are computed
    once over the detail scan and shared.  Invariant sharing is only
    engaged when no completion rule is active (completion bookkeeping is
    per-base-tuple).
    """

    __slots__ = ("index", "aggregates", "residual_eval", "right_key_evals",
                 "buckets", "uses_hash", "invariant", "shared_state")

    def __init__(self, index: int, block: ThetaBlock, base: Relation,
                 detail_schema: Schema, combined_schema: Schema,
                 allow_invariant: bool):
        from repro.algebra.analysis import refers_only_to

        self.index = index
        self.aggregates = AggregateBlock(block.aggregates, detail_schema)
        factored = factor_condition(block.condition, base.schema, detail_schema)
        self.uses_hash = factored.has_equality
        self.invariant = (
            allow_invariant
            and _INVARIANT_SHARING
            and not self.uses_hash
            and (factored.residual is None
                 or refers_only_to(factored.residual, detail_schema))
        )
        self.shared_state = self.aggregates.new_state() if self.invariant else None
        if factored.residual is None:
            self.residual_eval = None
        elif self.invariant:
            self.residual_eval = factored.residual.bind(detail_schema)
        else:
            self.residual_eval = factored.residual.bind(combined_schema)
        if self.uses_hash:
            left_key_evals = [k.bind(base.schema) for k in factored.left_keys]
            self.right_key_evals = [k.bind(detail_schema) for k in factored.right_keys]
            buckets: dict[tuple, list[int]] = {}
            for position, row in enumerate(base.rows):
                key = tuple(ev(row) for ev in left_key_evals)
                if any(part is None for part in key):
                    continue
                buckets.setdefault(key, []).append(position)
            self.buckets = buckets
            IOStats.ambient().index_builds += 1
        else:
            self.right_key_evals = None
            self.buckets = None


def _scan_detail(
    detail_rows: Iterable[tuple],
    runtimes: list[_BlockRuntime],
    base_rows: Sequence[tuple],
    state: list[list[Any]],
    status: bytearray,
    stats: IOStats,
    must_be_zero: frozenset,
    pair_equal: tuple,
    can_doom: bool,
    can_assure: bool,
    remaining_needs: list[dict[int, int]] | None,
    active_list: list[int] | None,
) -> list[int] | None:
    """The single pass over the detail rows (the hot loop).

    Returns the (possibly compacted) active list so a chunked caller —
    the vectorized kernel's completion path scans chunk by chunk — can
    carry the shrinking set across calls.
    """
    stale = 0
    for detail_row in detail_rows:
        matched: dict[int, list[int]] = {}
        for runtime in runtimes:
            if runtime.invariant:
                if runtime.residual_eval is not None:
                    stats.predicate_evals += 1
                    if not runtime.residual_eval(detail_row).is_true:
                        continue
                runtime.aggregates.update(runtime.shared_state, detail_row)
                continue
            if runtime.uses_hash:
                key = tuple(ev(detail_row) for ev in runtime.right_key_evals)
                stats.index_probes += 1
                candidates = runtime.buckets.get(key)
                if candidates is None:
                    continue
            else:
                candidates = active_list
            residual_eval = runtime.residual_eval
            block_index = runtime.index
            for base_index in candidates:
                if status[base_index] != _ACTIVE:
                    continue
                if residual_eval is not None:
                    stats.predicate_evals += 1
                    verdict = residual_eval(base_rows[base_index] + detail_row)
                    if not verdict.is_true:
                        continue
                matched.setdefault(base_index, []).append(block_index)
        if not matched:
            continue
        for base_index, block_ids in matched.items():
            if can_doom:
                doomed = any(i in must_be_zero for i in block_ids)
                if not doomed:
                    for restrictive, weak in pair_equal:
                        if weak in block_ids and restrictive not in block_ids:
                            doomed = True
                            break
                if doomed:
                    status[base_index] = _DOOMED
                    stats.completed_tuples += 1
                    stale += 1
                    continue
            row_state = state[base_index]
            for block_index in block_ids:
                runtimes[block_index].aggregates.update(
                    row_state[block_index], detail_row
                )
            if can_assure:
                needs = remaining_needs[base_index]
                if needs:
                    for block_index in block_ids:
                        remaining = needs.get(block_index)
                        if remaining is None:
                            continue
                        if remaining <= 1:
                            del needs[block_index]
                        else:
                            needs[block_index] = remaining - 1
                    if not needs:
                        status[base_index] = _ASSURED
                        stats.completed_tuples += 1
                        stale += 1
        if active_list is not None and stale * 2 > len(active_list) and stale > 32:
            active_list = [i for i in active_list if status[i] == _ACTIVE]
            stale = 0
    return active_list


def _emit_rows(
    base_rows: Sequence[tuple],
    status: bytearray,
    state: list[list[Any]],
    shared_values: dict,
    selection_eval: Callable | None,
    output_schema: Schema,
    stats: IOStats,
) -> Relation:
    """The emit phase shared by the row and vectorized kernels.

    Doomed rows are gone; assured rows bypass the final selection (their
    counts are partial but projected away); active rows carry exact
    aggregates and face the real selection.  Invariant blocks contribute
    the same ``shared_values`` to every base row.
    """
    out_rows = []
    for base_index, base_row in enumerate(base_rows):
        verdict = status[base_index]
        if verdict == _DOOMED:
            continue
        out_row = base_row + tuple(
            value
            for block_index, block_state in enumerate(state[base_index])
            for value in shared_values.get(
                block_index, AggregateBlock.finalize(block_state)
            )
        )
        if verdict == _ACTIVE and selection_eval is not None:
            stats.predicate_evals += 1
            if not selection_eval(out_row).is_true:
                continue
        out_rows.append(out_row)
    stats.tuples_output += len(out_rows)
    return Relation(output_schema, out_rows, validate=False)


def run_gmdj(
    base: Relation,
    detail: Relation,
    gmdj: GMDJ,
    output_schema: Schema,
    rule: CompletionRule | None = None,
    selection: Expression | None = None,
) -> Relation:
    """Evaluate a GMDJ over materialized inputs in one detail scan.

    With ``rule``/``selection`` set this computes the fused
    ``σ[selection](MD(...))`` using base-tuple completion; otherwise it is
    the plain operator of Definition 2.1.
    """
    stats = IOStats.ambient()
    detail_schema = detail.schema
    combined_schema = base.schema.concat(detail_schema)
    runtimes = [
        _BlockRuntime(i, block, base, detail_schema, combined_schema,
                      allow_invariant=rule is None)
        for i, block in enumerate(gmdj.blocks)
    ]
    base_rows = base.rows
    n_base = len(base_rows)
    state = [
        [runtime.aggregates.new_state() for runtime in runtimes]
        for _ in range(n_base)
    ]
    status = bytearray(n_base)  # all _ACTIVE

    must_be_zero = frozenset(rule.must_be_zero) if rule else frozenset()
    pair_equal = tuple(rule.pair_equal) if rule else ()
    can_doom = rule.can_doom if rule else False
    can_assure = rule.can_assure if rule else False
    thresholds = rule.thresholds() if can_assure else {}
    remaining_needs = (
        [dict(thresholds) for _ in range(n_base)] if can_assure else None
    )

    # Active list serving the non-hash blocks; rebuilt lazily as tuples
    # complete so that the per-detail-tuple cost genuinely shrinks.
    any_scan_block = any(
        not runtime.uses_hash and not runtime.invariant
        for runtime in runtimes
    )
    active_list = list(range(n_base)) if any_scan_block else None

    with span("scan", kind="detail_scan",
              relation=getattr(detail, "name", None) or "<derived>",
              rows=len(detail)):
        stats.record_scan(len(detail))
        _scan_detail(
            detail.rows, runtimes, base_rows, state, status, stats,
            must_be_zero, pair_equal, can_doom, can_assure,
            remaining_needs, active_list,
        )

    shared_values = {
        runtime.index: AggregateBlock.finalize(runtime.shared_state)
        for runtime in runtimes
        if runtime.invariant
    }
    selection_eval = selection.bind(output_schema) if selection is not None else None
    return _emit_rows(base_rows, status, state, shared_values,
                      selection_eval, output_schema, stats)


def evaluate_gmdj(gmdj: GMDJ, catalog: Catalog) -> Relation:
    """Materialize the operands and run the plain (unfused) GMDJ."""
    with span("GMDJ", kind="gmdj", blocks=len(gmdj.blocks),
              completion=False) as sp:
        with span("base", kind="materialize"):
            base = gmdj.base.evaluate(catalog)
        with span("detail", kind="materialize"):
            detail = gmdj.detail.evaluate(catalog)
        sp.set(base_rows=len(base), detail_rows=len(detail),
               relation=getattr(detail, "name", None) or "<derived>")
        IOStats.ambient().record_scan(len(base))
        result = run_gmdj(base, detail, gmdj, gmdj.schema(catalog))
        sp.set(output_rows=len(result))
        return result


@dataclass
class SelectGMDJ(Operator):
    """Fused ``σ[selection](MD(...))`` with base-tuple completion.

    Produced by the optimizer (see :mod:`repro.gmdj.coalesce`); can also be
    built directly.  The output schema equals the underlying GMDJ's schema;
    rows failing ``selection`` are absent, and when the rule permits
    assurance the aggregate columns of assured rows are partial (the rule
    guarantees an enclosing projection discards them).
    """

    gmdj: GMDJ
    selection: Expression
    rule: CompletionRule | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.gmdj,)

    def schema(self, catalog: Catalog) -> Schema:
        return self.gmdj.schema(catalog)

    def evaluate(self, catalog: Catalog) -> Relation:
        rule = self.rule
        with span("SelectGMDJ", kind="gmdj",
                  blocks=len(self.gmdj.blocks), completion=rule is not None,
                  rule=rule.summary() if rule is not None else None) as sp:
            with span("base", kind="materialize"):
                base = self.gmdj.base.evaluate(catalog)
            with span("detail", kind="materialize"):
                detail = self.gmdj.detail.evaluate(catalog)
            sp.set(base_rows=len(base), detail_rows=len(detail),
                   relation=getattr(detail, "name", None) or "<derived>")
            IOStats.ambient().record_scan(len(base))
            result = run_gmdj(
                base,
                detail,
                self.gmdj,
                self.gmdj.schema(catalog),
                rule=rule,
                selection=self.selection,
            )
            sp.set(output_rows=len(result))
            return result
