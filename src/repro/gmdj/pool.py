"""Worker-pool scheduler for partitioned GMDJ evaluation.

:mod:`repro.gmdj.parallel` establishes the algebraic decomposition —
``MD(B, R1 ∪ R2, l, θ) = merge(MD(B, R1, l, θ), MD(B, R2, l, θ))`` — and
evaluates fragments sequentially.  This module supplies the actual
concurrency: detail fragments are dispatched to a pool of workers via
:mod:`concurrent.futures`, and each worker returns

* the partial aggregate rows for its fragment (merged columnwise by the
  caller with the same add/min/max machinery the sequential path uses),
* an :class:`~repro.storage.iostats.IOStats` snapshot of the work it
  performed, merged into the coordinator's ambient stats so query-level
  counters are identical to a single-process run, and
* when the coordinator is tracing, a serialized span subtree (the
  ``partition``/``detail_scan`` spans) that is grafted back into the
  parent :class:`~repro.obs.tracer.Tracer` — EXPLAIN ANALYZE and the
  invariant checker (fragments tile the detail, output ≤ |B|) keep
  working unchanged under parallelism.

Executor selection (``choose_executor``):

``process``  a :class:`~concurrent.futures.ProcessPoolExecutor`; true
             multi-core speedup for CPU-bound aggregate scans, at the
             price of pickling the base relation and each fragment.
``thread``   a :class:`~concurrent.futures.ThreadPoolExecutor`; no extra
             processes and no pickling, used for small inputs where
             process start-up would dominate (GIL-serialized, so this is
             an overhead-avoidance fallback, not a speedup path).
``auto``     processes when the detail is large enough
             (``PROCESS_MIN_DETAIL_ROWS``) and the task pickles, threads
             otherwise.

Executor lifetime: by default :func:`map_partitions` creates a pool for
one call and tears it down on exit (batch/CLI behaviour: nothing ever
leaks because nothing outlives the call).  Long-lived processes — the
``repro.serve`` query service above all — instead install a
:class:`PoolRegistry` with :class:`pooling`, and every pooled evaluation
in that context reuses the registry's executors instead of paying pool
start-up per query.  The registry owns those executors and
:meth:`PoolRegistry.shutdown` (reached via ``Database.close()`` and the
server's graceful drain) is the deterministic teardown path.

Environment knobs (read at call time, so CI can force them suite-wide):

* ``REPRO_WORKERS``   — default worker count when none is requested.
* ``REPRO_EXECUTOR``  — force ``thread``/``process``/``auto``.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.tracer import Tracer, attach_subtrace, span, tracing, tracing_enabled
from repro.storage.iostats import IOStats, collect
from repro.storage.relation import Relation
from repro.storage.schema import Schema

if TYPE_CHECKING:
    from repro.gmdj.operator import GMDJ

#: Below this many detail rows ``auto`` prefers threads: forking and
#: pickling would cost more than the scan itself.
PROCESS_MIN_DETAIL_ROWS = 20_000

_EXECUTOR_KINDS = ("auto", "thread", "process")


def default_workers() -> int:
    """The worker count used when none is requested (``REPRO_WORKERS``)."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {workers}")
    return workers


def resolve_workers(workers: int | None) -> int:
    """Validate an explicit worker count or fall back to the env default."""
    if workers is None:
        return default_workers()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def choose_executor(kind: str | None, detail_rows: int,
                    task_sample: object) -> str:
    """Resolve ``auto`` to a concrete executor kind for this input.

    ``task_sample`` is any object that must survive pickling for the
    process path (the shadow plan); unpicklable plans degrade to
    threads rather than failing.
    """
    kind = kind or os.environ.get("REPRO_EXECUTOR") or "auto"
    if kind not in _EXECUTOR_KINDS:
        raise ConfigurationError(
            f"executor must be one of {_EXECUTOR_KINDS}, got {kind!r}"
        )
    if kind != "auto":
        return kind
    if detail_rows < PROCESS_MIN_DETAIL_ROWS:
        return "thread"
    try:
        pickle.dumps(task_sample)
    except Exception:
        return "thread"
    return "process"


@dataclass
class PartitionTask:
    """One picklable unit of pool work: a fragment against the base."""

    number: int
    base: Relation
    fragment: Relation
    shadow: object  # the AVG-decomposed GMDJ (repro.gmdj.operator.GMDJ)
    shadow_schema: Schema
    trace: bool
    vectorized: bool = False
    chunk_size: int | None = None
    backend: str | None = None


@dataclass
class PartitionResult:
    """What a worker ships back to the coordinator."""

    number: int
    rows: list
    counters: dict
    spans: list | None


def run_partition(task: PartitionTask) -> PartitionResult:
    """Evaluate one detail fragment (executed inside a pool worker).

    The worker isolates its own IOStats and (when requested) its own
    tracer — both are context-local, so thread workers never race the
    coordinator's accounting — and returns everything as plain data.
    """
    if task.vectorized:
        from repro.gmdj.vectorized import run_gmdj_vectorized

        def run(base: Relation, fragment: Relation, shadow: GMDJ,
                shadow_schema: Schema) -> Relation:
            return run_gmdj_vectorized(base, fragment, shadow, shadow_schema,
                                       chunk_size=task.chunk_size,
                                       backend=task.backend)
    else:
        from repro.gmdj.evaluate import run_gmdj as run

    tracer = Tracer() if task.trace else None
    with collect() as stats:
        if tracer is not None:
            with tracing(tracer):
                with span(f"partition {task.number}", kind="partition",
                          detail_rows=len(task.fragment),
                          worker=os.getpid()):
                    partial = run(task.base, task.fragment, task.shadow,
                                  task.shadow_schema)
        else:
            partial = run(task.base, task.fragment, task.shadow,
                          task.shadow_schema)
    return PartitionResult(
        number=task.number,
        rows=partial.rows,
        counters=stats.snapshot(),
        spans=(tracer.trace().to_json()["spans"]
               if tracer is not None else None),
    )


class PoolRegistry:
    """Reusable executors keyed by ``(kind, workers)``.

    One registry belongs to one owner (a :class:`~repro.engine.database.
    Database`, or the serve tier's dispatcher); executors are created on
    first use and reused until :meth:`shutdown`, which waits for
    in-flight work and then releases every worker.  All methods are
    thread-safe — the serve tier calls :meth:`get` from concurrent
    request threads.
    """

    def __init__(self) -> None:
        self._pools: dict[tuple[str, int], Executor] = {}
        self._lock = threading.Lock()
        self._closed = False

    def get(self, kind: str, workers: int) -> Executor:
        """The shared executor for this shape, created on first use."""
        if kind not in ("thread", "process"):
            raise ConfigurationError(
                f"executor must be 'thread' or 'process', got {kind!r}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        key = (kind, workers)
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "pool registry is shut down; no new executors"
                )
            pool = self._pools.get(key)
            if pool is None:
                pool = self._pools[key] = _make_pool(kind, workers)
            return pool

    def shutdown(self, wait: bool = True) -> int:
        """Shut down every executor; returns how many were released.

        Idempotent.  With ``wait`` (the default) the call blocks until
        in-flight tasks finish, so a drain that follows the admission
        barrier is deterministic: nothing is executing when it returns.
        """
        with self._lock:
            self._closed = True
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.shutdown(wait=wait)
        return len(pools)

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)


#: The installed registry, or None for per-call executor lifetimes.
#: A ``ContextVar`` so concurrent serve requests (each running a tenant
#: database in its own context) resolve their own tenant's registry.
_registry_var: ContextVar["PoolRegistry | None"] = ContextVar(
    "repro_pool_registry", default=None
)


def active_registry() -> "PoolRegistry | None":
    return _registry_var.get()


class pooling:
    """Context manager installing a :class:`PoolRegistry` for reuse.

    Every :func:`map_partitions` call inside the context draws its
    executor from the registry instead of creating (and destroying) a
    private pool.  ``Database._run`` wraps execution in this, so each
    database's pooled queries share that database's executors.
    """

    def __init__(self, registry: PoolRegistry):
        self.registry = registry
        self._token = None

    def __enter__(self) -> PoolRegistry:
        self._token = _registry_var.set(self.registry)
        return self.registry

    def __exit__(self, *exc_info: object) -> None:
        _registry_var.reset(self._token)


def _make_pool(kind: str, workers: int) -> Executor:
    if kind == "process":
        import multiprocessing

        # Prefer fork where available: workers start in milliseconds and
        # inherit imports, which keeps small-query overhead low.  Other
        # platforms fall back to the default start method.
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            return ProcessPoolExecutor(max_workers=workers,
                                       mp_context=context)
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers,
                              thread_name_prefix="gmdj-worker")


def map_partitions(
    base: Relation,
    fragments: list[Relation],
    shadow: GMDJ,
    shadow_schema: Schema,
    workers: int,
    executor: str | None = None,
    vectorized: bool = False,
    chunk_size: int | None = None,
    backend: str | None = None,
) -> list[list]:
    """Evaluate every fragment on a worker pool; returns partial row lists.

    Results are returned in fragment order.  Worker IOStats snapshots are
    merged into the coordinator's ambient stats and worker span subtrees
    are grafted into the active tracer before returning, so from the
    outside the evaluation is indistinguishable from the sequential path
    except for wall-clock.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    trace = tracing_enabled()
    kind = choose_executor(executor, sum(len(f) for f in fragments), shadow)
    tasks = [
        PartitionTask(number, base, fragment, shadow, shadow_schema, trace,
                      vectorized=vectorized, chunk_size=chunk_size,
                      backend=backend)
        for number, fragment in enumerate(fragments, start=1)
    ]
    registry = _registry_var.get()
    with span("pool", kind="pool", executor=kind, workers=workers,
              partitions=len(fragments),
              reused=registry is not None):
        if registry is not None:
            pool = registry.get(kind, workers)
            results = list(pool.map(run_partition, tasks))
        else:
            with _make_pool(kind, workers) as pool:
                results = list(pool.map(run_partition, tasks))
        ambient = IOStats.ambient()
        for result in results:
            ambient.merge(result.counters)
            if result.spans:
                attach_subtrace(result.spans)
    return [result.rows for result in results]
