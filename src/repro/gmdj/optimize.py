"""The GMDJ optimizer: coalescing + completion fusion (Section 4).

:func:`optimize_plan` is the entry point used by the query engine's
``gmdj_optimized`` strategy.  It applies, in order:

1. **Coalescing** (Proposition 4.1) — stacked GMDJs over the same detail
   table merge into one; base-level selections are pulled up when that
   exposes a merge (Example 4.1).
2. **Completion fusion** (Theorems 4.1/4.2) — a selection sitting on top
   of a GMDJ whose conjuncts are recognizable count conditions is fused
   into a :class:`~repro.gmdj.evaluate.SelectGMDJ` carrying a
   :class:`~repro.gmdj.completion.CompletionRule`, letting the evaluator
   retire base tuples mid-scan.

Both steps are independently switchable so the ablation benchmarks can
measure their contributions separately.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.operators import Operator, Project, ProjectItem, Select
from repro.algebra.rewrite import transform_bottom_up
from repro.gmdj.coalesce import coalesce_plan
from repro.gmdj.completion import derive_completion_rule
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ
from repro.storage.catalog import Catalog


def _items_reference_aggregates(items: Sequence, gmdj: GMDJ) -> bool:
    """True when any projection item reads a GMDJ aggregate output."""
    output_names = set(gmdj.output_names())
    for item in items:
        resolved = ProjectItem.of(item)
        for ref in resolved.expression.references():
            if ref in output_names or ref.rpartition(".")[2] in output_names:
                return True
    return False


def fuse_completion(plan: Operator) -> Operator:
    """Fuse σ-over-GMDJ patterns into completion-aware SelectGMDJ nodes.

    Matching is top-down so that ``Project(Select(GMDJ))`` is recognized as
    a unit before the inner ``Select(GMDJ)`` is consumed — the enclosing
    projection is what licenses assurance (Theorem 4.1 requires the
    aggregates to be projected away).
    """
    from repro.algebra.rewrite import map_children
    from repro.obs.tracer import span

    fusions = 0

    def walk(node: Operator) -> Operator:
        nonlocal fusions
        if (
            isinstance(node, Project)
            and isinstance(node.child, Select)
            and isinstance(node.child.child, GMDJ)
        ):
            gmdj = node.child.child
            aggregates_projected = not _items_reference_aggregates(
                node.items, gmdj
            )
            rule = derive_completion_rule(
                node.child.predicate, gmdj, aggregates_projected
            )
            if rule.useful:
                fusions += 1
                fused = SelectGMDJ(
                    map_children(gmdj, walk), node.child.predicate, rule
                )
                return Project(fused, node.items, node.distinct)
            return map_children(node, walk)
        if isinstance(node, Select) and isinstance(node.child, GMDJ):
            rule = derive_completion_rule(
                node.predicate, node.child, aggregates_projected=False
            )
            if rule.useful:
                fusions += 1
                return SelectGMDJ(
                    map_children(node.child, walk), node.predicate, rule
                )
            return map_children(node, walk)
        return map_children(node, walk)

    with span("fuse_completion", kind="optimize") as sp:
        fused_plan = walk(plan)
        sp.set(fusions=fusions)
        return fused_plan


def optimize_plan(plan: Operator, coalesce: bool = True,
                  completion: bool = True, fold_constants: bool = True,
                  push_selections: bool = True,
                  catalog: Catalog | None = None) -> Operator:
    """Apply the Section 4 optimizations to a translated GMDJ plan.

    Constant folding runs first so the pattern matchers (and the
    completion-rule parser in particular) see normalized conditions;
    selection push-down runs after coalescing (the two move different
    conjunct classes) and before completion fusion.
    """
    from repro.obs.tracer import span

    with span("optimize", kind="optimize", coalesce=coalesce,
              completion=completion):
        if fold_constants:
            from repro.algebra.simplify import simplify_plan

            plan = simplify_plan(plan)
        if coalesce:
            plan = coalesce_plan(plan)
        if push_selections and catalog is not None:
            plan = push_base_selections(plan, catalog)
        if completion:
            plan = fuse_completion(plan)
        return plan


def push_base_selections(plan: Operator, catalog: Catalog) -> Operator:
    """Commute base-only selection conjuncts below GMDJs.

    The paper notes the GMDJ "can commute with projections, selections,
    joins" — for selections the sound direction is::

        σ[p](MD(B, R, l, θ))  =  MD(σ[p](B), R, l, θ)

    whenever ``p`` references only B's attributes (and none of the GMDJ's
    aggregate outputs): output rows map 1:1 onto base rows and removing
    base rows never changes another row's aggregates.  Pushing shrinks
    the base before the detail scan (fewer hash entries, fewer
    scan-partition candidates).  Mixed selections are split: base-only
    conjuncts sink, the rest (typically the count conditions) stay above
    for completion fusion.
    """
    from repro.algebra.expressions import conjoin, conjuncts_of
    from repro.algebra.rewrite import transform_bottom_up

    def step(node: Operator) -> Operator:
        if not (isinstance(node, Select) and isinstance(node.child, GMDJ)):
            return node
        gmdj = node.child
        base_schema = gmdj.base.schema(catalog)
        output_names = set(gmdj.output_names())
        sinkable = []
        kept = []
        for conjunct in conjuncts_of(node.predicate):
            refs = conjunct.references()
            touches_outputs = any(
                ref in output_names or ref.rpartition(".")[2] in output_names
                for ref in refs
            )
            if refs and not touches_outputs and all(
                base_schema.has(ref) for ref in refs
            ):
                sinkable.append(conjunct)
            else:
                kept.append(conjunct)
        if not sinkable:
            return node
        pushed = GMDJ(
            Select(gmdj.base, conjoin(sinkable)), gmdj.detail, gmdj.blocks
        )
        if kept:
            return Select(pushed, conjoin(kept))
        return pushed

    return transform_bottom_up(plan, step)
