"""Base-table push-down rules (Theorems 3.3 and 3.4 of the paper).

These two equivalences let the translator handle *non-neighboring*
correlation predicates — predicates referencing a scope more than one
level out, which would otherwise leave a θ condition mentioning attributes
of neither B nor R (violating ``attr(θ) ⊆ B ∪ R``):

* **Theorem 3.3**: ``MD(B, R, l, θ)  =  MD(B, B ⋈_θ R, l, θ′)`` where θ′
  re-checks the base identity against the B-attributes now embedded in the
  detail tuples.
* **Theorem 3.4**: ``T ⋈_C MD(B, R, l, θ)  =  MD(T ⋈_C B, R, l, θ)``.

The translator uses Theorem 3.4 in the direction that *pushes the
outer-most base-values table down* into the base of an inner GMDJ
(Example 3.4: ``MD((User ⋈ Hours), Flow, l_F, θ_F)``), at the cost of one
join — the same number of joins a conventional join/outer-join unnesting
would need for a non-neighboring predicate of that depth.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.expressions import Column, Comparison, Expression, conjoin
from repro.algebra.operators import Join
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema


def embed_base_in_detail(gmdj: GMDJ, catalog: Catalog) -> GMDJ:
    """Theorem 3.3: rewrite ``MD(B, R, l, θ)`` to ``MD(B, B ⋈_θ R, l, θ′)``.

    The new detail relation is the θ-join of B and R; since a base tuple's
    range must only contain detail tuples joined with *that* tuple, θ′
    adds equality on every base attribute between the GMDJ's base side and
    the base-copy embedded in the detail side.  To keep attribute
    references unambiguous the embedded copy is re-qualified.
    """
    from repro.obs.tracer import span

    with span("embed_base_in_detail", kind="pushdown", rule="thm-3.3") as sp:
        base_schema = gmdj.base.schema(catalog)
        embedded_qualifier = _fresh_qualifier(base_schema, catalog, gmdj)
        sp.set(qualifier=embedded_qualifier)
        from repro.algebra.operators import Rename

        embedded_base = Rename(gmdj.base, embedded_qualifier)
        embedded_schema = embedded_base.schema(catalog)
        join_condition = _requalify_free(
            gmdj.blocks, base_schema, embedded_qualifier
        )
        detail = Join(embedded_base, gmdj.detail, join_condition, kind="inner")
        identity = conjoin(
            Comparison(
                "=",
                Column(field.full_name),
                Column(f"{embedded_qualifier}.{field.name}"),
            )
            for field in base_schema.fields
        )
        blocks = [
            ThetaBlock(
                block.aggregates,
                _rewrite_block_condition(
                    block.condition, base_schema, embedded_qualifier
                )
                & identity,
            )
            for block in gmdj.blocks
        ]
        return GMDJ(gmdj.base, detail, blocks)


def _fresh_qualifier(base_schema: Schema, catalog: Catalog, gmdj: GMDJ) -> str:
    taken = set(base_schema.qualifiers())
    taken |= set(gmdj.detail.schema(catalog).qualifiers())
    counter = 0
    while True:
        candidate = f"__b{counter}"
        if candidate not in taken:
            return candidate
        counter += 1


def _requalify_free(blocks: Sequence[ThetaBlock], base_schema: Schema,
                    qualifier: str) -> Expression:
    """The join condition of Theorem 3.3 is the disjunction-free part of θ
    restricted to what can be checked at join time; we simply join on the
    conjunction of all block conditions re-pointed at the embedded copy.

    Using the OR of the block conditions would be tighter, but any
    superset join is correct because θ′ re-checks each block condition —
    we use the first block's condition as the join filter and let θ′ do
    exact work, which keeps the join from exploding while staying sound.
    """
    return _rewrite_block_condition(blocks[0].condition, base_schema, qualifier)


def _rewrite_block_condition(
    condition: Expression, base_schema: Schema, qualifier: str
) -> Expression:
    """Re-point base-side references in θ at the embedded base copy."""
    from repro.algebra.expressions import (
        And,
        Arithmetic,
        IsNull,
        Literal,
        Not,
        Or,
        TruthLiteral,
    )

    def walk(expr: Expression) -> Expression:
        if isinstance(expr, Column):
            if base_schema.has(expr.reference):
                field = base_schema.field_of(expr.reference)
                return Column(f"{qualifier}.{field.name}")
            return expr
        if isinstance(expr, Comparison):
            return Comparison(expr.op, walk(expr.left), walk(expr.right))
        if isinstance(expr, And):
            return And(walk(expr.left), walk(expr.right))
        if isinstance(expr, Or):
            return Or(walk(expr.left), walk(expr.right))
        if isinstance(expr, Not):
            return Not(walk(expr.operand))
        if isinstance(expr, Arithmetic):
            return Arithmetic(expr.op, walk(expr.left), walk(expr.right))
        if isinstance(expr, IsNull):
            return IsNull(walk(expr.operand), expr.negated)
        if isinstance(expr, (Literal, TruthLiteral)):
            return expr
        return expr

    return walk(condition)


def push_join_into_base(join: Join) -> GMDJ:
    """Theorem 3.4: ``T ⋈_C MD(B, R, l, θ)  →  MD(T ⋈_C B, R, l, θ)``.

    Requires the join condition C to reference only T and B attributes
    (not the GMDJ's aggregate outputs) — the caller is responsible for
    checking this; the translator only generates conforming joins.
    """
    from repro.obs.tracer import span

    gmdj = join.right
    if not isinstance(gmdj, GMDJ):
        raise TypeError("push_join_into_base expects a Join over a GMDJ")
    with span("push_join_into_base", kind="pushdown", rule="thm-3.4",
              join_kind=join.kind):
        new_base = Join(join.left, gmdj.base, join.condition, kind=join.kind,
                        method=join.method)
        return GMDJ(new_base, gmdj.detail, gmdj.blocks)


def pull_join_out_of_base(gmdj: GMDJ) -> Join:
    """Theorem 3.4 read right-to-left: ``MD(T ⋈_C B, R, l, θ)`` back to
    ``T ⋈_C MD(B, R, l, θ)``, available when θ does not reference T.

    Provided for completeness and for the equivalence tests; the planner
    prefers the pushed-down form (the GMDJ base stays small).
    """
    base = gmdj.base
    if not isinstance(base, Join):
        raise TypeError("pull_join_out_of_base expects a GMDJ over a Join base")
    inner = GMDJ(base.right, gmdj.detail, gmdj.blocks)
    return Join(base.left, inner, base.condition, kind=base.kind,
                method=base.method)
