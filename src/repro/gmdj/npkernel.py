"""Whole-array GMDJ detail scan: the numpy backend.

The python batch kernel (:mod:`repro.gmdj.vectorized`) amortizes closure
dispatch across chunks but still executes one generated Python frame per
chunk element.  This kernel eliminates per-row Python entirely for
completion-free scans:

* θ residuals and invariant filters evaluate as whole-array 3VL masks
  (:mod:`repro.algebra.npcompile`) over zero-copy column views
  (:mod:`repro.storage.npcolumns`);
* hash probing factorizes the key columns with ``np.unique`` — the
  Python-level bucket dictionary is probed once per *distinct* key, not
  once per row — and detail rows group into per-base-tuple index
  segments with one stable argsort;
* distributive/algebraic aggregates accumulate with whole-array
  reductions per segment (``np.cumsum`` for float sums keeps Python's
  sequential addition order bit-for-bit).

Identity contract
-----------------
The scan produces the same rows, in the same order, with the same
:class:`~repro.storage.iostats.IOStats` counters as the python kernels:
``index_probes`` counts every detail row per hash block, and
``predicate_evals``/``aggregate_updates`` count candidate pairs and
per-spec survivor updates exactly as ``_scan_batched`` does.  Work that
has no *exact* whole-array form — object-encoded columns, DISTINCT
(holistic) aggregates, int64 overflow hazards, NaN min/max — falls back
per operator: an unsupported θ block runs untouched on the python batch
kernel, while an unsupported aggregate argument or risky segment
reduction drops to per-value Python accumulation over the
already-computed survivor set.  Block- and spec-level fallbacks are
reported to the caller so EXPLAIN ANALYZE can surface them.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.algebra.aggregates import (
    Avg,
    CountStar,
    CountValue,
    Max,
    Min,
    Sum,
)
from repro.algebra.analysis import factor_condition, refers_only_to
from repro.algebra.compile import compile_batch_values
from repro.algebra.npcompile import (
    _INT_SAFE,
    NpUnsupported,
    NpValue,
    np_truth_mask,
    np_value,
    value_of_column,
    value_of_scalar,
)
from repro.gmdj.evaluate import _BlockRuntime
from repro.gmdj.operator import ThetaBlock
from repro.storage.columnar import ColumnarRelation
from repro.storage.iostats import IOStats
from repro.storage.npcolumns import column_array, require_numpy
from repro.storage.relation import Relation
from repro.storage.schema import Schema

#: Int64 magnitude bound above which a segment sum falls back to exact
#: Python accumulation (Python ints are unbounded; int64 wraps).
_SUM_SAFE = 2 ** 63


class _SegmentFallback(Exception):
    """This spec/segment needs per-value Python accumulation (exactness
    guard or holistic aggregate); the survivor set is already known, so
    this never aborts the block."""


class _DetailContext:
    """Whole-column NpValue resolution over one columnar relation."""

    __slots__ = ("columnar", "schema", "_by_ref", "_by_position")

    def __init__(self, columnar: ColumnarRelation, schema: Schema) -> None:
        self.columnar = columnar
        self.schema = schema
        self._by_ref: dict[str, NpValue] = {}
        self._by_position: dict[int, NpValue] = {}

    def by_position(self, position: int) -> NpValue:
        value = self._by_position.get(position)
        if value is None:
            column = column_array(self.columnar, position)
            if column is None:
                field = self.schema.fields[position]
                raise NpUnsupported(
                    f"object-encoded column {field.full_name}")
            value = self._by_position[position] = value_of_column(column)
        return value

    def resolve(self, reference: str) -> NpValue:
        value = self._by_ref.get(reference)
        if value is None:
            position = self.schema.index_of(reference)
            value = self._by_ref[reference] = self.by_position(position)
        return value


def _gather(value: NpValue, idx: Any, np: Any) -> NpValue:
    """Restrict a whole-column NpValue to the rows in ``idx``."""
    values = value.values
    if isinstance(values, np.ndarray):
        values = values[idx]
    null = value.null
    if isinstance(null, np.ndarray):
        null = null[idx]
    return NpValue(values, null, value.kind, value.dictionary)


class _PairContext:
    """Resolution over base-row scalars ++ detail columns.

    Mirrors how the row kernel binds residuals against the concatenated
    schema: positions below the base arity read the (Python) base row,
    positions above it read detail columns — whole columns, or gathered
    down to one hash segment's candidate rows.
    """

    __slots__ = ("detail", "combined_schema", "base_arity", "_positions")

    def __init__(self, detail: _DetailContext, combined_schema: Schema,
                 base_arity: int) -> None:
        self.detail = detail
        self.combined_schema = combined_schema
        self.base_arity = base_arity
        self._positions: dict[str, int] = {}

    def resolver(self, base_row: tuple, idx: Any,
                 np: Any) -> Callable[[str], NpValue]:
        """A resolver for one base row; ``idx`` (or None for all rows)
        selects the detail rows in scope."""
        def resolve(reference: str) -> NpValue:
            position = self._positions.get(reference)
            if position is None:
                position = self._positions[reference] = \
                    self.combined_schema.index_of(reference)
            if position < self.base_arity:
                return value_of_scalar(base_row[position])
            column = self.detail.by_position(position - self.base_arity)
            return column if idx is None else _gather(column, idx, np)
        return resolve


def _python_key_value(key: NpValue, row: int, np: Any) -> Any:
    """One key component at ``row`` as the Python value the buckets use."""
    values = key.values
    if not isinstance(values, np.ndarray):
        return values  # literal key component, already a Python scalar
    if key.kind == "str":
        return (key.dictionary or [])[int(values[row])]
    kind = values.dtype.kind
    if kind == "b":
        return bool(values[row])
    if kind == "f":
        return float(values[row])
    return int(values[row])


def _hash_segments(
    runtime: _BlockRuntime,
    key_exprs: Sequence[Any],
    ctx: _DetailContext,
    total: int,
    np: Any,
) -> list[tuple[int, Any]]:
    """Group detail rows by matched base tuple via key factorization.

    Returns ``(base_index, ascending row-index array)`` segments; rows
    whose key contains NULL (or misses every bucket) appear in none.
    The bucket dictionary is probed once per *distinct* key — the
    ``np.unique`` trick that replaces a million Python probes with a
    handful.
    """
    key_vals = [np_value(expr, ctx.resolve) for expr in key_exprs]
    valid: Any = True
    for kv in key_vals:
        if kv.kind == "null" or kv.null is True:
            return []  # a NULL key component can never match
        if kv.null is not False:
            valid = ~kv.null if valid is True else valid & ~kv.null
    if valid is True:
        valid_idx = np.arange(total, dtype=np.int64)
    else:
        valid_idx = np.flatnonzero(valid)
    if not len(valid_idx):
        return []
    combined = None
    capacity = 1
    for kv in key_vals:
        values = kv.values
        if not isinstance(values, np.ndarray):
            continue  # constant component: one group, nothing to split
        uniques, inverse = np.unique(values[valid_idx],
                                     return_inverse=True)
        if combined is None:
            combined, capacity = inverse, len(uniques)
            continue
        if capacity * len(uniques) >= _INT_SAFE:
            # Re-densify the running codes before they overflow int64.
            _, combined = np.unique(combined, return_inverse=True)
            capacity = int(combined.max()) + 1
        combined = combined * len(uniques) + inverse
        capacity *= len(uniques)
    if combined is None:  # all-constant key: every valid row, one group
        combined = np.zeros(len(valid_idx), dtype=np.int64)
    uniq_codes, first_pos, inverse = np.unique(
        combined, return_index=True, return_inverse=True)
    rep_rows = valid_idx[first_pos]
    base_of_code = np.full(len(uniq_codes), -1, dtype=np.int64)
    multi: list[tuple[int, list[int]]] = []
    buckets_get = runtime.buckets.get
    for code in range(len(uniq_codes)):
        key = tuple(_python_key_value(kv, int(rep_rows[code]), np)
                    for kv in key_vals)
        candidates = buckets_get(key)
        if not candidates:
            continue
        base_of_code[code] = candidates[0]
        if len(candidates) > 1:
            multi.append((code, candidates[1:]))
    row_base = base_of_code[inverse]
    matched = np.flatnonzero(row_base >= 0)
    rows_sel = valid_idx[matched]
    bases_sel = row_base[matched]
    order = np.argsort(bases_sel, kind="stable")
    sorted_rows = rows_sel[order]
    sorted_bases = bases_sel[order]
    seg_bases, seg_starts = np.unique(sorted_bases, return_index=True)
    bounds = list(seg_starts) + [len(sorted_rows)]
    segments: dict[int, Any] = {
        int(seg_bases[i]): sorted_rows[bounds[i]:bounds[i + 1]]
        for i in range(len(seg_bases))
    }
    for code, extras in multi:
        rows_of_code = valid_idx[np.flatnonzero(inverse == code)]
        for base_index in extras:
            existing = segments.get(base_index)
            segments[base_index] = rows_of_code if existing is None \
                else np.sort(np.concatenate([existing, rows_of_code]))
    return sorted(segments.items())


def _segment_sum(accumulator: Any, effective: Any, np: Any) -> None:
    """Exact whole-array sum into a Sum/Avg accumulator's ``total``."""
    if effective.dtype.kind == "f":
        # np.cumsum accumulates strictly left-to-right, matching the
        # sequential `total += value` order of the python kernels
        # bit-for-bit (np.sum's pairwise summation would not).
        accumulator.total += float(np.cumsum(effective)[-1])
    else:
        bound = max(-int(effective.min()), int(effective.max()))
        if bound and bound * len(effective) >= _SUM_SAFE:
            raise _SegmentFallback  # Python ints never overflow
        accumulator.total += int(effective.sum())


def _apply_value_spec(accumulator: Any, value: NpValue, idx: Any,
                      np: Any) -> None:
    """Fold one segment of one aggregate argument into its accumulator.

    Raises :class:`_SegmentFallback` for anything without an exact
    array reduction (the caller re-runs the segment per-value in
    Python, over the same survivor rows).
    """
    if value.kind == "str":
        raise _SegmentFallback  # string min/max keeps Python ordering
    if value.kind == "null" or value.null is True:
        return  # all values NULL: every add() is a no-op
    if isinstance(value.values, np.ndarray):
        vals = value.values[idx]
    else:
        vals = np.full(len(idx), value.values)
    if value.null is False:
        effective = vals
    else:
        effective = vals[~value.null[idx]]
    if not len(effective):
        return
    is_bool = effective.dtype.kind == "b"
    if type(accumulator) is CountValue:
        accumulator.count += len(effective)
        return
    if type(accumulator) is Sum:
        _segment_sum(accumulator, effective.astype(np.int64)
                     if is_bool else effective, np)
        accumulator.seen = True
        return
    if type(accumulator) is Avg:
        _segment_sum(accumulator, effective.astype(np.int64)
                     if is_bool else effective, np)
        accumulator.count += len(effective)
        return
    if type(accumulator) is Min or type(accumulator) is Max:
        if is_bool:
            raise _SegmentFallback  # keep bool objects, not 0/1 ints
        if effective.dtype.kind == "f" and np.isnan(effective).any():
            raise _SegmentFallback  # NaN breaks min/max comparability
        best = effective.min() if type(accumulator) is Min \
            else effective.max()
        accumulator.add(best.item())
        return
    raise _SegmentFallback  # DistinctWrapper and anything unforeseen


class _NpBlock:
    """One θ block planned for the whole-array scan."""

    __slots__ = ("runtime", "block", "value_arrays", "value_fallbacks",
                 "py_value_fns", "segments", "probe_rows", "filter_evals")

    def __init__(self, runtime: _BlockRuntime, block: ThetaBlock) -> None:
        self.runtime = runtime
        self.block = block
        self.value_arrays: list[NpValue | None] = []
        self.value_fallbacks: list[str | None] = []
        self.py_value_fns: list[Any] = []
        self.segments: list[tuple[int, Any]] = []
        self.probe_rows = 0
        self.filter_evals = 0


def _plan_values(plan: _NpBlock, ctx: _DetailContext,
                 detail_schema: Schema) -> None:
    """Evaluate aggregate arguments whole-array; mark per-spec fallbacks."""
    for spec in plan.block.aggregates:
        reason: str | None = None
        array: NpValue | None = None
        if spec.argument is None:
            pass  # count(*): no argument to evaluate
        elif spec.distinct:
            reason = "holistic DISTINCT aggregate"
        else:
            try:
                array = np_value(spec.argument, ctx.resolve)
            except NpUnsupported as exc:
                reason = exc.reason
        plan.value_arrays.append(array)
        plan.value_fallbacks.append(reason)
        plan.py_value_fns.append(
            None if spec.argument is None
            else compile_batch_values(spec.argument, detail_schema))


def _plan_block(plan: _NpBlock, ctx: _DetailContext,
                pair_ctx: _PairContext, base_schema: Schema,
                base_rows: Sequence[tuple], n_base: int, total: int,
                detail_schema: Schema, np: Any) -> bool:
    """Compute this block's survivor segments and counter tallies.

    Returns True when the block is invariant (segments target the
    shared accumulator state).  May raise :class:`NpUnsupported` at any
    point — the caller only flushes counters/accumulators for fully
    planned blocks, so a partial plan has no observable effect.
    """
    runtime = plan.runtime
    factored = factor_condition(plan.block.condition, base_schema,
                                detail_schema)
    residual = factored.residual
    all_rows = np.arange(total, dtype=np.int64)

    if runtime.invariant:
        if residual is None:
            survivors = all_rows
        else:
            plan.filter_evals += total
            survivors = np.flatnonzero(
                np_truth_mask(residual, ctx.resolve, total))
        plan.segments = [(0, survivors)]
        return True

    if runtime.uses_hash:
        plan.probe_rows = total
        segments = _hash_segments(runtime, factored.right_keys, ctx,
                                  total, np)
        if residual is None:
            plan.segments = segments
            return False
        plan.filter_evals += sum(len(idx) for _, idx in segments)
        if refers_only_to(residual, detail_schema):
            mask = np_truth_mask(residual, ctx.resolve, total)
            plan.segments = [(base_index, idx[mask[idx]])
                             for base_index, idx in segments]
            return False
        plan.segments = [
            (base_index,
             idx[np_truth_mask(
                 residual,
                 pair_ctx.resolver(base_rows[base_index], idx, np),
                 len(idx))])
            for base_index, idx in segments
        ]
        return False

    # Scan block: every base row is a candidate for every detail row
    # (completion-free, so the active list never shrinks).
    if residual is None:
        plan.segments = [(b, all_rows) for b in range(n_base)]
        return False
    plan.filter_evals += n_base * total
    if refers_only_to(residual, detail_schema):
        survivors = np.flatnonzero(
            np_truth_mask(residual, ctx.resolve, total))
        plan.segments = [(b, survivors) for b in range(n_base)]
        return False
    plan.segments = [
        (base_index,
         np.flatnonzero(np_truth_mask(
             residual,
             pair_ctx.resolver(base_rows[base_index], None, np),
             total)))
        for base_index in range(n_base)
    ]
    return False


def _apply_segments(plan: _NpBlock, state: list[list[Any]],
                    shared: bool, stats: IOStats,
                    decoded_cols: Callable[[], Sequence],
                    np: Any) -> None:
    """Fold every segment into its accumulators.

    Never raises NpUnsupported: per-spec/per-segment exactness guards
    drop to Python ``add`` loops over the already-known survivors.
    """
    runtime = plan.runtime
    for base_index, idx in plan.segments:
        count = len(idx)
        if not count:
            continue
        state_list = runtime.shared_state if shared \
            else state[base_index][runtime.index]
        idx_list: list[int] | None = None
        for position, accumulator in enumerate(state_list):
            stats.aggregate_updates += count
            value = plan.value_arrays[position]
            if value is None and plan.value_fallbacks[position] is None:
                # count(*) fast path, mirroring _bulk_update
                if type(accumulator) is CountStar:
                    accumulator.count += count
                else:  # pragma: no cover - defensive, like _bulk_update
                    for _ in range(count):
                        accumulator.add(None)
                continue
            if value is not None:
                try:
                    _apply_value_spec(accumulator, value, idx, np)
                    continue
                except _SegmentFallback:
                    pass
            if idx_list is None:
                idx_list = idx.tolist()
            value_fn = plan.py_value_fns[position]
            add = accumulator.add
            for item in value_fn(decoded_cols(), idx_list):
                add(item)


def run_numpy_scan(
    columnar: ColumnarRelation,
    runtimes: list[_BlockRuntime],
    blocks: Sequence[ThetaBlock],
    base: Relation,
    detail_schema: Schema,
    combined_schema: Schema,
    state: list[list[Any]],
    stats: IOStats,
) -> tuple[list[tuple[_BlockRuntime, ThetaBlock]], list[str]]:
    """Run every θ block whole-array where possible.

    Returns ``(python_blocks, fallback_reasons)``: blocks with no exact
    array form are untouched (no counters, no accumulator updates) and
    must run on the python batch kernel; ``fallback_reasons`` collects
    human-readable block- and spec-level notes for EXPLAIN ANALYZE.
    """
    np = require_numpy()
    total = columnar.length
    base_rows = base.rows
    n_base = len(base_rows)
    ctx = _DetailContext(columnar, detail_schema)
    pair_ctx = _PairContext(ctx, combined_schema, len(base.schema))
    decoded_state: dict[str, Sequence] = {}

    def decoded_cols() -> Sequence:
        cols = decoded_state.get("cols")
        if cols is None:
            cols = decoded_state["cols"] = columnar.value_columns()
        return cols

    python_blocks: list[tuple[_BlockRuntime, ThetaBlock]] = []
    reasons: list[str] = []
    applied: list[tuple[_NpBlock, bool]] = []

    for runtime, block in zip(runtimes, blocks):
        plan = _NpBlock(runtime, block)
        try:
            shared = _plan_block(plan, ctx, pair_ctx, base.schema,
                                 base_rows, n_base, total, detail_schema,
                                 np)
            _plan_values(plan, ctx, detail_schema)
        except NpUnsupported as exc:
            python_blocks.append((runtime, block))
            reasons.append(f"block {runtime.index}: {exc.reason}")
            continue
        applied.append((plan, shared))
        for spec, reason in zip(block.aggregates, plan.value_fallbacks):
            if reason is not None:
                reasons.append(
                    f"block {runtime.index} {spec.output_name}: {reason}")

    # Counters and accumulators are only touched for fully planned
    # blocks, so an NpUnsupported above never leaves partial state.
    for plan, shared in applied:
        stats.index_probes += plan.probe_rows
        stats.predicate_evals += plan.filter_evals
        _apply_segments(plan, state, shared, stats, decoded_cols, np)
    return python_blocks, reasons
