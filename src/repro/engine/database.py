"""The user-facing database façade.

:class:`Database` bundles a catalog with table/index DDL, query execution
under any strategy, EXPLAIN output, and (once the SQL frontend is bound)
textual SQL.  This is the object the examples and benchmarks construct.

Execution knobs are carried by one frozen
:class:`~repro.engine.options.QueryOptions` object — the *only* options
surface (the PR-3 string-strategy shims are gone)::

    db.execute(query, QueryOptions(strategy="gmdj_optimized",
                                   mode="partitioned", workers=4))

The canonical execution entry point is the **batch API**:
``execute_batch(queries, options)`` evaluates a list of queries with
cross-query scan sharing (:mod:`repro.engine.mqo`) and returns per-query
results plus a :class:`~repro.engine.mqo.BatchReport`; ``execute(q)`` is
the thin single-query wrapper ``execute_batch([q])[0]``.

Every query runs through one internal path (:meth:`Database._run`),
which also fronts the database's :class:`~repro.engine.cache.PlanCache`:
repeated queries skip re-translation (and, for plain ``execute``,
re-scanning).  All DDL entry points invalidate the cache.

>>> from repro import Database, DataType
>>> db = Database()
>>> _ = db.create_table("T", [("K", DataType.INTEGER)], [(1,), (2,)])
>>> len(db.execute_sql("SELECT K FROM T WHERE K > 1"))
1
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.algebra.operators import Operator
from repro.engine.cache import PlanCache
from repro.engine.executor import run
from repro.engine.rollup import RollupStore
from repro.engine.options import QueryOptions
from repro.engine.reports import ExecutionReport
from repro.errors import ConfigurationError, ReproError
from repro.gmdj.pool import PoolRegistry, pooling
from repro.storage.catalog import Catalog
from repro.storage.csvio import load_csv
from repro.storage.relation import Relation
from repro.storage.types import DataType

if TYPE_CHECKING:
    from pathlib import Path

    from repro.engine.mqo import BatchResult
    from repro.obs.explain import Explain


class DatabaseClosedError(ReproError):
    """An operation was attempted on a database after ``close()``."""


class Database:
    """An in-process OLAP database with GMDJ-based subquery processing.

    Databases are context managers: long-lived owners (the serve tier's
    per-tenant instances above all) should ``close()`` them — or use
    ``with Database() as db`` — to deterministically release the pooled
    GMDJ worker executors the database accumulated.  Short-lived script
    use needs no close; executors created outside a registry are torn
    down per query.
    """

    def __init__(self, cache_size: int = 128) -> None:
        self.catalog = Catalog()
        self.cache = PlanCache(cache_size)
        self.rollups = RollupStore(cache_size)
        #: Reusable worker executors for pooled (partitioned) GMDJ
        #: evaluation; queries executed through this database share
        #: them instead of paying pool start-up per query.
        self.pools = PoolRegistry()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every resource this database owns (idempotent).

        Shuts down the pooled GMDJ worker executors (waiting for
        in-flight partition work, so nothing is abandoned mid-merge) and
        drops the plan/result cache and rollup store.  After close every
        query or DDL entry point raises :class:`DatabaseClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        self.pools.shutdown(wait=True)
        self.cache.invalidate()
        self.rollups.invalidate()

    def __enter__(self) -> "Database":
        self._check_open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError("database is closed")

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType]],
        rows: Iterable[Sequence[Any]] = (),
    ) -> Relation:
        """Create a table from ``(name, dtype)`` pairs and initial rows."""
        self._check_open()
        relation = Relation.from_columns(columns, rows, name=name)
        self.cache.invalidate()
        self.rollups.invalidate()
        return self.catalog.create_table(name, relation)

    def register(self, name: str, relation: Relation) -> Relation:
        """Install an existing relation as a table (replaces silently)."""
        self._check_open()
        self.cache.invalidate()
        self.rollups.invalidate()
        return self.catalog.replace_table(name, relation)

    def insert(self, name: str, rows: Iterable[Sequence[Any]]) -> Relation:
        """Append rows to an existing table.

        Copy-on-write: the catalog entry is *replaced* by an extended
        copy rather than mutated in place, so an in-flight reader that
        already resolved the old relation keeps scanning a consistent
        snapshot.  Like every mutation entry point this invalidates the
        plan/result cache and the rollup store.
        """
        self._check_open()
        relation = self.catalog.table(name).copy()
        relation.extend(rows)
        self.cache.invalidate()
        self.rollups.invalidate()
        return self.catalog.replace_table(name, relation)

    def load_csv(self, name: str, path: str | Path) -> Relation:
        """Create a table from a CSV written by ``repro.storage.save_csv``."""
        self._check_open()
        self.cache.invalidate()
        self.rollups.invalidate()
        return self.catalog.create_table(name, load_csv(path, name=name))

    def load_binary(self, name: str, path: str | Path) -> Relation:
        """Create a table from a ``.cols`` binary column directory.

        The loaded relation arrives with its columnar encoding cache
        pre-seeded from the memory-mapped column files (see
        :mod:`repro.storage.binio`), so the first vectorized query scans
        the mapped buffers without re-encoding the rows.
        """
        from repro.storage.binio import load_binary

        self._check_open()
        self.cache.invalidate()
        self.rollups.invalidate()
        return self.catalog.create_table(name, load_binary(path, name=name))

    def create_index(self, table: str, attribute: str) -> None:
        """Create a single-attribute hash index (conventional engines'
        correlation lookups and indexed joins use these)."""
        self._check_open()
        self.cache.invalidate()
        self.rollups.invalidate()
        self.catalog.create_hash_index(table, [attribute])

    def drop_indexes(self, table: str | None = None) -> int:
        """Drop indexes to study strategy stability (Figure 5)."""
        self._check_open()
        self.cache.invalidate()
        self.rollups.invalidate()
        return self.catalog.drop_all_indexes(table)

    def table(self, name: str) -> Relation:
        return self.catalog.table(name)

    # -- queries ----------------------------------------------------------------

    @staticmethod
    def _require_options(
        options: QueryOptions | None, caller: str
    ) -> QueryOptions:
        """The strict options surface: QueryOptions or None, nothing else.

        The PR-3 string-strategy shims (``db.execute(query, "gmdj")``,
        ``strategy=`` keywords) were removed after their deprecation
        cycle; passing anything but a :class:`QueryOptions` now raises
        :class:`~repro.errors.ConfigurationError` with the migration
        spelled out.
        """
        if options is None:
            return QueryOptions()
        if isinstance(options, QueryOptions):
            return options
        raise ConfigurationError(
            f"Database.{caller} takes QueryOptions or None; the "
            f"deprecated string-strategy shim was removed — pass "
            f"QueryOptions(strategy=...) instead of {options!r}"
        )

    def _run(
        self, query: Operator, options: QueryOptions, profiled: bool
    ) -> ExecutionReport:
        """The single execution path behind execute/profile/EXPLAIN ANALYZE.

        Plain (unprofiled) cached runs are served straight from the
        result cache; profiled runs always execute (their purpose is
        measurement) but still share the translation cache.  Execution
        runs with this database's :class:`~repro.gmdj.pool.PoolRegistry`
        installed, so pooled partitioned evaluation reuses executors
        across queries (``close()`` is their deterministic teardown).
        """
        self._check_open()
        result_key = None
        if not profiled and options.use_cache:
            result_key = (options.cache_key(), PlanCache.plan_key(query))
            cached = self.cache.result(result_key)
            if cached is not None:
                return ExecutionReport(
                    strategy=options.strategy, elapsed_seconds=0.0,
                    result=cached, options=options,
                )
        with pooling(self.pools):
            report = run(query, self.catalog, options, cache=self.cache,
                         profiled=profiled, rollups=self.rollups)
        if result_key is not None:
            self.cache.store_result(result_key, report.result)
        return report

    def execute(
        self,
        query: Operator,
        options: QueryOptions | None = None,
    ) -> Relation:
        """Evaluate an algebra query (flat or nested) under the options.

        Thin wrapper over the canonical batch path:
        ``execute(q, opts)`` is ``execute_batch([q], opts)[0]``.
        """
        return self.execute_batch(
            [query], self._require_options(options, "execute")
        )[0]

    def execute_batch(
        self,
        queries: Sequence[Operator],
        options: QueryOptions | None = None,
    ) -> BatchResult:
        """Evaluate a batch of queries with cross-query scan sharing.

        Share-compatible members (same detail table, same base values —
        see :mod:`repro.engine.mqo`) are coalesced into one
        multi-consumer GMDJ over a single detail scan, per the
        ``options.mqo`` level (default ``"coalesce"``, overridable via
        ``REPRO_MQO``).  Returns a :class:`~repro.engine.mqo.BatchResult`
        — index it for per-query relations, read ``.report`` for share
        groups, scans saved, and cost certificates.
        """
        from repro.engine.mqo import execute_batch

        options = self._require_options(options, "execute_batch")
        self._check_open()
        return execute_batch(self, list(queries), options)

    def profile(
        self,
        query: Operator,
        options: QueryOptions | None = None,
        *,
        trace: bool | None = None,
    ) -> ExecutionReport:
        """Evaluate and return timing plus work counters.

        With ``trace`` (or ``QueryOptions(trace=True)``) the run also
        records an operator span tree (attached as ``report.trace``) for
        EXPLAIN ANALYZE and the invariant checker.
        """
        options = self._require_options(options, "profile")
        if trace is not None:
            options = options.with_trace(trace)
        return self._run(query, options, profiled=True)

    def explain(
        self,
        query: Operator,
        options: QueryOptions | None = None,
    ) -> Explain:
        """The plan the given options would execute, as an
        :class:`~repro.obs.explain.Explain` report (a ``str`` subclass
        with ``.text()`` / ``.json()`` renderers)."""
        from repro.obs.explain import explain_report

        options = self._require_options(options, "explain")
        self._check_open()
        return explain_report(self, query, options)

    def explain_analyze(
        self,
        query: Operator,
        options: QueryOptions | None = None,
        *,
        strict: bool = False,
    ) -> Explain:
        """EXPLAIN plus actual execution: plan text, the measured span
        tree with per-operator counter deltas, and the invariant
        checker's verdict — one :class:`~repro.obs.explain.Explain`
        report whose ``.json()`` is the machine-readable trace export."""
        from repro.obs.explain import explain_report

        options = self._require_options(options, "explain_analyze")
        return explain_report(self, query, options, analyze=True,
                              strict=strict)

    def explain_batch(
        self,
        queries: Sequence[Operator],
        options: QueryOptions | None = None,
    ) -> Explain:
        """EXPLAIN for a batch: the share groups the MQO planner would
        form, each group's coalesced plan and certificate, and the
        singleton plans — without executing anything."""
        from repro.obs.explain import explain_batch

        options = self._require_options(options, "explain_batch")
        self._check_open()
        return explain_batch(self, list(queries), options)

    # -- SQL ------------------------------------------------------------------------

    def sql(self, text: str) -> Operator:
        """Parse and bind a SQL query into a (possibly nested) algebra tree."""
        self._check_open()
        from repro.sql import compile_sql

        return compile_sql(text, self.catalog)

    def execute_sql(
        self,
        text: str,
        options: QueryOptions | None = None,
    ) -> Relation:
        """Parse, bind, and evaluate a SQL query."""
        options = self._require_options(options, "execute_sql")
        return self.execute_batch([self.sql(text)], options)[0]

    def execute_sql_batch(
        self,
        texts: Sequence[str],
        options: QueryOptions | None = None,
    ) -> BatchResult:
        """Parse, bind, and evaluate a batch of SQL queries with
        cross-query scan sharing; see :meth:`execute_batch`."""
        options = self._require_options(options, "execute_sql_batch")
        return self.execute_batch(
            [self.sql(text) for text in texts], options
        )

    def profile_sql(
        self,
        text: str,
        options: QueryOptions | None = None,
    ) -> ExecutionReport:
        options = self._require_options(options, "profile_sql")
        return self._run(self.sql(text), options, profiled=True)
