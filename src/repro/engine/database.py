"""The user-facing database façade.

:class:`Database` bundles a catalog with table/index DDL, query execution
under any strategy, EXPLAIN output, and (once the SQL frontend is bound)
textual SQL.  This is the object the examples and benchmarks construct.

>>> from repro import Database, DataType
>>> db = Database()
>>> _ = db.create_table("T", [("K", DataType.INTEGER)], [(1,), (2,)])
>>> len(db.execute_sql("SELECT K FROM T WHERE K > 1"))
1
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.algebra.operators import Operator
from repro.algebra.printer import explain as explain_plan
from repro.engine.executor import execute, profile
from repro.engine.planner import STRATEGIES
from repro.engine.reports import ExecutionReport
from repro.errors import PlanError
from repro.storage.catalog import Catalog
from repro.storage.csvio import load_csv
from repro.storage.relation import Relation
from repro.storage.types import DataType
from repro.unnesting.translate import subquery_to_gmdj


class Database:
    """An in-process OLAP database with GMDJ-based subquery processing."""

    def __init__(self) -> None:
        self.catalog = Catalog()

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType]],
        rows: Iterable[Sequence[Any]] = (),
    ) -> Relation:
        """Create a table from ``(name, dtype)`` pairs and initial rows."""
        relation = Relation.from_columns(columns, rows, name=name)
        return self.catalog.create_table(name, relation)

    def register(self, name: str, relation: Relation) -> Relation:
        """Install an existing relation as a table (replaces silently)."""
        return self.catalog.replace_table(name, relation)

    def load_csv(self, name: str, path) -> Relation:
        """Create a table from a CSV written by ``repro.storage.save_csv``."""
        return self.catalog.create_table(name, load_csv(path, name=name))

    def create_index(self, table: str, attribute: str) -> None:
        """Create a single-attribute hash index (conventional engines'
        correlation lookups and indexed joins use these)."""
        self.catalog.create_hash_index(table, [attribute])

    def drop_indexes(self, table: str | None = None) -> int:
        """Drop indexes to study strategy stability (Figure 5)."""
        return self.catalog.drop_all_indexes(table)

    def table(self, name: str) -> Relation:
        return self.catalog.table(name)

    # -- queries ----------------------------------------------------------------

    def execute(self, query: Operator, strategy: str = "auto") -> Relation:
        """Evaluate an algebra query (flat or nested) under a strategy."""
        return execute(query, self.catalog, strategy)

    def profile(self, query: Operator, strategy: str = "auto",
                trace: bool = False) -> ExecutionReport:
        """Evaluate and return timing plus work counters.

        With ``trace=True`` the run also records an operator span tree
        (attached as ``report.trace``) for EXPLAIN ANALYZE and the
        invariant checker.
        """
        return profile(query, self.catalog, strategy, trace=trace)

    def explain(self, query: Operator, strategy: str = "auto") -> str:
        """Render the plan that the given strategy would execute."""
        if strategy in ("auto", "gmdj_optimized"):
            return explain_plan(subquery_to_gmdj(query, self.catalog, optimize=True))
        if strategy in ("gmdj", "gmdj_chunked", "gmdj_parallel"):
            return explain_plan(subquery_to_gmdj(query, self.catalog))
        if strategy in STRATEGIES:
            return explain_plan(query)
        raise PlanError(f"unknown strategy {strategy!r}")

    def explain_analyze(self, query: Operator, strategy: str = "auto",
                        strict: bool = False) -> str:
        """EXPLAIN plus actual execution: plan text, the measured span
        tree with per-operator counter deltas, and the invariant
        checker's verdict (see :mod:`repro.obs`)."""
        from repro.obs.explain import explain_analyze

        return explain_analyze(self, query, strategy, strict=strict)

    # -- SQL ------------------------------------------------------------------------

    def sql(self, text: str) -> Operator:
        """Parse and bind a SQL query into a (possibly nested) algebra tree."""
        from repro.sql import compile_sql

        return compile_sql(text, self.catalog)

    def execute_sql(self, text: str, strategy: str = "auto") -> Relation:
        """Parse, bind, and evaluate a SQL query."""
        return self.execute(self.sql(text), strategy)

    def profile_sql(self, text: str, strategy: str = "auto") -> ExecutionReport:
        return self.profile(self.sql(text), strategy)
