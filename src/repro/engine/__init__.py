"""Query engine: database façade, strategy planner, executor, reports."""

from repro.engine.cache import PlanCache
from repro.engine.database import Database, DatabaseClosedError
from repro.engine.executor import execute, profile, run
from repro.engine.mqo import (
    BatchItem,
    BatchPlan,
    BatchReport,
    BatchResult,
    execute_batch,
    plan_batch,
)
from repro.engine.options import QueryOptions
from repro.engine.planner import STRATEGIES, contains_nested_select, make_executor
from repro.engine.reports import ExecutionReport
from repro.engine.rollup import RollupStore
from repro.engine.statistics import ColumnStatistics, TableStatistics, analyze_catalog, analyze_table

__all__ = [
    "BatchItem",
    "BatchPlan",
    "BatchReport",
    "BatchResult",
    "ColumnStatistics",
    "Database",
    "DatabaseClosedError",
    "PlanCache",
    "QueryOptions",
    "RollupStore",
    "TableStatistics",
    "analyze_catalog",
    "analyze_table",
    "ExecutionReport",
    "STRATEGIES",
    "contains_nested_select",
    "execute",
    "execute_batch",
    "make_executor",
    "plan_batch",
    "profile",
    "run",
]
