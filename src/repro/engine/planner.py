"""Strategy selection: how a (possibly nested) query gets evaluated.

The planner exposes the strategies the paper's experiments compare:

``naive``           exhaustive tuple-iteration (nested loop, no smarts);
``native``          a conventional engine's smart nested loop — early
                    termination plus index-assisted correlation lookups;
``native_noindex``  the same with index probes disabled (the Figure 5
                    stability study);
``unnest_join``     conventional join/outer-join unnesting;
``unnest_join_noindex``  the same modelling an engine without indexes
                    (sort-merge instead of indexed joins);
``gmdj``            Algorithm SubqueryToGMDJ, unoptimized;
``gmdj_optimized``  SubqueryToGMDJ + coalescing + completion (Section 4);
``gmdj_chunked``    legacy alias for ``gmdj`` + ``mode="chunked"``
                    (memory-bounded base-chunked evaluation, §2.3);
``gmdj_parallel``   legacy alias for ``gmdj`` + ``mode="partitioned"``
                    (detail-partitioned evaluation, columnwise merge,
                    optionally on a worker pool);
``auto``            gmdj_optimized for nested queries, plain evaluation
                    otherwise.

Orthogonally to the strategy, a :class:`~repro.engine.options.QueryOptions`
``mode`` selects the GMDJ execution regime (plain / chunked /
partitioned) with its ``partitions`` / ``workers`` / ``chunk_budget``
knobs, and ``use_cache`` lets a :class:`~repro.engine.cache.PlanCache`
skip re-translation of plans the database has seen before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.engine.rollup import RollupStore
    from repro.gmdj.operator import GMDJ

from repro.algebra.nested import NestedSelect
from repro.algebra.operators import Operator
from repro.algebra.rewrite import map_children
from repro.baselines.join_unnest import evaluate_join_unnest
from repro.baselines.native import evaluate_native
from repro.baselines.nested_loop import evaluate_naive
from repro.engine.cache import PlanCache
from repro.engine.options import GMDJ_STRATEGIES, QueryOptions, STRATEGIES
from repro.errors import PlanError
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.unnesting.translate import subquery_to_gmdj

__all__ = [
    "STRATEGIES",
    "contains_nested_select",
    "make_executor",
]

#: Translation flags per GMDJ strategy, also the translation-cache key
#: component (strategy name alone would alias distinct plans).
_TRANSLATION_FLAGS = {
    "gmdj": dict(optimize=False),
    "gmdj_coalesce": dict(optimize=True, coalesce=True, completion=False),
    "gmdj_completion": dict(optimize=True, coalesce=False, completion=True),
    "gmdj_optimized": dict(optimize=True),
}


def _lint_gate(plan: Operator, catalog: Catalog, level: str) -> None:
    """Fail-fast static verification of a plan about to execute.

    Only error-severity diagnostics gate execution (the plan would raise
    or silently diverge from SQL semantics); warnings and advice belong
    to the CLI/EXPLAIN surfaces, not the hot path.
    """
    from repro.lint import lint_plan
    from repro.lint.diagnostics import LintWarning

    report = lint_plan(plan, catalog, advice=False)
    if report.ok:
        return
    rendered = "; ".join(d.render() for d in report.errors)
    if level == "strict":
        from repro.errors import LintError

        raise LintError(
            f"static plan verification failed: {rendered}",
            diagnostics=report.errors,
        )
    import warnings

    warnings.warn(
        f"static plan verification found errors: {rendered}",
        LintWarning, stacklevel=3,
    )


def contains_nested_select(operator: Operator) -> bool:
    """True when the tree holds at least one NestedSelect node."""
    found = False

    def visit(node: Operator) -> Operator:
        nonlocal found
        if isinstance(node, NestedSelect):
            found = True
        map_children(node, lambda child: (visit(child), child)[1])
        return node

    visit(operator)
    return found


def make_executor(
    query: Operator,
    catalog: Catalog,
    options: QueryOptions | str = "auto",
    cache: PlanCache | None = None,
    rollups: RollupStore | None = None,
) -> Callable[[], Relation]:
    """Return a zero-argument callable that evaluates ``query``.

    Translation-time work (for the GMDJ strategies) happens inside the
    callable as well, matching how the paper's timings include rewrite
    cost (it is negligible; evaluation dominates) — unless ``cache``
    holds the translated plan already.  When tracing is enabled the run
    is wrapped in a ``query`` span carrying the resolved strategy name,
    so traces attribute all work to the strategy that actually ran.
    """
    options = QueryOptions.of(options)
    requested = options.strategy
    options = options.canonical()
    if options.lint in ("warn", "strict"):
        # Verify the input tree eagerly — this covers the baseline
        # strategies (which execute the query as-is); the GMDJ
        # strategies additionally verify their translated plan inside
        # the runner (see _translator).
        _lint_gate(query, catalog, options.lint)
    resolved, mode, runner = _resolve_executor(
        query, catalog, options, cache, rollups
    )

    def traced() -> Relation:
        from repro.obs.tracer import span

        attrs = dict(strategy=resolved, requested=requested)
        if mode is not None:
            attrs["mode"] = mode
        with span("query", kind="query", **attrs):
            return runner()

    return traced


def _translator(
    query: Operator,
    catalog: Catalog,
    strategy: str,
    options: QueryOptions,
    cache: PlanCache | None,
) -> Callable[[], Operator]:
    """A callable producing the translated GMDJ plan, cache-aware.

    With ``options.lint`` active the translated plan passes through the
    static verifier before it is returned for evaluation — *after* any
    cache retrieval, since the translation cache is shared across
    options objects and a cached plan may never have been linted.
    """
    flags = _TRANSLATION_FLAGS[strategy]
    lint = options.lint if options.lint in ("warn", "strict") else None

    def verified(plan: Operator) -> Operator:
        if lint is not None:
            _lint_gate(plan, catalog, lint)
        return plan

    if cache is None or not options.use_cache:
        return lambda: verified(subquery_to_gmdj(query, catalog, **flags))

    key = (strategy, PlanCache.plan_key(query))

    def translate() -> Operator:
        plan = cache.translation(key)
        if plan is None:
            plan = subquery_to_gmdj(query, catalog, **flags)
            cache.store_translation(key, plan)
        return verified(plan)

    return translate


def _rollup_node_runners(
    catalog: Catalog, options: QueryOptions
) -> tuple[Callable[[GMDJ], Relation], Callable[..., Relation] | None]:
    """Per-GMDJ-node kernel runners for the rollup walker's miss path.

    Replicates the four-way mode dispatch of :func:`_gmdj_runner` at node
    granularity: on a rollup miss the walker evaluates exactly as the
    requested mode would have, so warm and cold runs stay row-identical.
    """
    if options.mode == "chunked":
        from repro.gmdj.chunked import evaluate_gmdj_chunked
        from repro.gmdj.modes import DEFAULT_MEMORY_TUPLES

        budget = options.chunk_budget or DEFAULT_MEMORY_TUPLES
        return (
            lambda gmdj: evaluate_gmdj_chunked(gmdj, catalog, budget),
            None,
        )
    if options.mode == "partitioned":
        from repro.gmdj.modes import DEFAULT_PARTITIONS
        from repro.gmdj.parallel import evaluate_gmdj_partitioned
        from repro.gmdj.pool import resolve_workers

        partitions = options.partitions or DEFAULT_PARTITIONS
        workers = resolve_workers(options.workers)
        return (
            lambda gmdj: evaluate_gmdj_partitioned(
                gmdj, catalog, partitions, workers=workers,
            ),
            None,
        )
    if options.mode == "gmdj_vectorized":
        from repro.gmdj.vectorized import (
            evaluate_gmdj_vectorized,
            evaluate_select_gmdj_vectorized,
            resolve_chunk_size,
        )

        if options.chunk_budget is not None:
            from repro.gmdj.chunked import evaluate_gmdj_chunked

            return (
                lambda gmdj: evaluate_gmdj_chunked(
                    gmdj, catalog, options.chunk_budget,
                    vectorized=True, chunk_size=options.chunk_size,
                    backend=options.backend,
                ),
                None,
            )
        if options.partitions is not None or options.workers is not None:
            from repro.gmdj.modes import DEFAULT_PARTITIONS
            from repro.gmdj.parallel import evaluate_gmdj_partitioned
            from repro.gmdj.pool import resolve_workers

            partitions = options.partitions or DEFAULT_PARTITIONS
            workers = resolve_workers(options.workers)
            return (
                lambda gmdj: evaluate_gmdj_partitioned(
                    gmdj, catalog, partitions, workers=workers,
                    vectorized=True, chunk_size=options.chunk_size,
                    backend=options.backend,
                ),
                None,
            )
        resolved = resolve_chunk_size(options.chunk_size)
        return (
            lambda gmdj: evaluate_gmdj_vectorized(
                gmdj, catalog, resolved, backend=options.backend
            ),
            lambda node: evaluate_select_gmdj_vectorized(
                node, catalog, resolved, backend=options.backend
            ),
        )
    return (lambda gmdj: gmdj.evaluate(catalog), None)


def _certified_runner(
    translate: Callable[[], Operator],
    catalog: Catalog,
    run: Callable[[Operator], Relation],
) -> Callable[[], Relation]:
    """Translate, certify, and execute under the certificate's scope.

    Every GMDJ-strategy runner goes through here: the translated plan's
    :class:`~repro.lint.absint.CapabilityCertificate` is derived once
    and installed as the ambient certificate for the evaluation, so
    downstream certificate-gated optimizations (the vectorized kernel's
    mask skip, in particular) can consult it without new plumbing
    through every evaluation signature.
    """
    from repro.lint.absint import capability_scope, certify_capabilities

    def runner() -> Relation:
        plan = translate()
        with capability_scope(certify_capabilities(plan, catalog)):
            return run(plan)

    return runner


def _gmdj_runner(
    query: Operator,
    catalog: Catalog,
    strategy: str,
    options: QueryOptions,
    cache: PlanCache | None,
    rollups: RollupStore | None = None,
) -> Callable[[], Relation]:
    """Build the runner for a GMDJ strategy under the requested mode."""
    translate = _translator(query, catalog, strategy, options, cache)
    if rollups is not None and options.rollup in ("exact", "subsume"):
        from repro.engine.rollup import evaluate_plan_rollup

        node_runner, select_runner = _rollup_node_runners(catalog, options)
        subsume = options.rollup == "subsume"
        return _certified_runner(translate, catalog, lambda plan:
            evaluate_plan_rollup(
                plan, catalog, rollups, subsume,
                node_runner, select_runner,
            ))
    if options.mode == "chunked":
        from repro.gmdj.modes import DEFAULT_MEMORY_TUPLES, evaluate_plan_chunked

        budget = options.chunk_budget or DEFAULT_MEMORY_TUPLES
        return _certified_runner(translate, catalog, lambda plan:
            evaluate_plan_chunked(plan, catalog, budget))
    if options.mode == "partitioned":
        from repro.gmdj.modes import DEFAULT_PARTITIONS, evaluate_plan_partitioned

        partitions = options.partitions or DEFAULT_PARTITIONS
        return _certified_runner(translate, catalog, lambda plan:
            evaluate_plan_partitioned(
                plan, catalog, partitions, workers=options.workers,
            ))
    if options.mode == "gmdj_vectorized":
        # The vectorized kernel composes with the fragmentation regimes:
        # a chunk_budget selects base-chunked scans on batch kernels,
        # partitions/workers selects partitioned (possibly pooled) scans
        # on batch kernels; with neither it is single-scan batch
        # evaluation.
        from repro.gmdj.modes import (
            DEFAULT_PARTITIONS,
            evaluate_plan_chunked,
            evaluate_plan_partitioned,
            evaluate_plan_vectorized,
        )

        if options.chunk_budget is not None:
            return _certified_runner(translate, catalog, lambda plan:
                evaluate_plan_chunked(
                    plan, catalog, options.chunk_budget,
                    vectorized=True, chunk_size=options.chunk_size,
                    backend=options.backend,
                ))
        if options.partitions is not None or options.workers is not None:
            partitions = options.partitions or DEFAULT_PARTITIONS
            return _certified_runner(translate, catalog, lambda plan:
                evaluate_plan_partitioned(
                    plan, catalog, partitions, workers=options.workers,
                    vectorized=True, chunk_size=options.chunk_size,
                    backend=options.backend,
                ))
        return _certified_runner(translate, catalog, lambda plan:
            evaluate_plan_vectorized(plan, catalog, options.chunk_size,
                                     backend=options.backend))
    return _certified_runner(translate, catalog,
                             lambda plan: plan.evaluate(catalog))


def _resolve_executor(
    query: Operator, catalog: Catalog, options: QueryOptions,
    cache: PlanCache | None, rollups: RollupStore | None = None,
) -> tuple[str, str | None, Callable[[], Relation]]:
    """Resolve ``auto``/``cost_based`` and build the raw runner."""
    strategy = options.strategy
    if strategy == "auto":
        if not contains_nested_select(query):
            return "plain", None, lambda: query.evaluate(catalog)
        strategy = "gmdj_optimized"
    if strategy == "cost_based":
        from repro.engine.costmodel import choose_strategy, contains_apply

        if not contains_nested_select(query) and not contains_apply(query):
            return "plain", None, lambda: query.evaluate(catalog)
        strategy = choose_strategy(query, catalog)
        if strategy not in GMDJ_STRATEGIES and options.mode is not None:
            # The cost model picked a baseline; there is no GMDJ to
            # fragment, so the mode knobs do not apply.
            options = QueryOptions.of(strategy)
    if strategy == "naive":
        return strategy, None, lambda: evaluate_naive(query, catalog)
    if strategy == "native":
        return strategy, None, lambda: evaluate_native(
            query, catalog, use_indexes=True
        )
    if strategy == "native_noindex":
        return strategy, None, lambda: evaluate_native(
            query, catalog, use_indexes=False
        )
    if strategy == "unnest_join":
        return strategy, None, lambda: evaluate_join_unnest(
            query, catalog, use_indexes=True
        )
    if strategy == "unnest_join_noindex":
        return strategy, None, lambda: evaluate_join_unnest(
            query, catalog, use_indexes=False
        )
    if strategy in _TRANSLATION_FLAGS:
        return strategy, options.mode, _gmdj_runner(
            query, catalog, strategy, options, cache, rollups
        )
    raise PlanError(
        f"unknown strategy {strategy!r}; choose one of {STRATEGIES}"
    )
