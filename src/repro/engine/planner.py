"""Strategy selection: how a (possibly nested) query gets evaluated.

The planner exposes the strategies the paper's experiments compare:

``naive``           exhaustive tuple-iteration (nested loop, no smarts);
``native``          a conventional engine's smart nested loop — early
                    termination plus index-assisted correlation lookups;
``native_noindex``  the same with index probes disabled (the Figure 5
                    stability study);
``unnest_join``     conventional join/outer-join unnesting;
``unnest_join_noindex``  the same modelling an engine without indexes
                    (sort-merge instead of indexed joins);
``gmdj``            Algorithm SubqueryToGMDJ, unoptimized;
``gmdj_optimized``  SubqueryToGMDJ + coalescing + completion (Section 4);
``gmdj_chunked``    SubqueryToGMDJ with memory-bounded (base-chunked)
                    GMDJ evaluation (Section 2.3);
``gmdj_parallel``   SubqueryToGMDJ with partitioned detail evaluation
                    and columnwise merge;
``auto``            gmdj_optimized for nested queries, plain evaluation
                    otherwise.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.nested import NestedSelect
from repro.algebra.operators import Operator
from repro.algebra.rewrite import map_children
from repro.baselines.join_unnest import evaluate_join_unnest
from repro.baselines.native import evaluate_native
from repro.baselines.nested_loop import evaluate_naive
from repro.errors import PlanError
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.unnesting.translate import subquery_to_gmdj

STRATEGIES = (
    "naive",
    "native",
    "native_noindex",
    "unnest_join",
    "unnest_join_noindex",
    "gmdj",
    "gmdj_coalesce",
    "gmdj_completion",
    "gmdj_optimized",
    "gmdj_chunked",
    "gmdj_parallel",
    "cost_based",
    "auto",
)


def contains_nested_select(operator: Operator) -> bool:
    """True when the tree holds at least one NestedSelect node."""
    found = False

    def visit(node):
        nonlocal found
        if isinstance(node, NestedSelect):
            found = True
        map_children(node, lambda child: (visit(child), child)[1])
        return node

    visit(operator)
    return found


def make_executor(
    query: Operator, catalog: Catalog, strategy: str
) -> Callable[[], Relation]:
    """Return a zero-argument callable that evaluates ``query``.

    Translation-time work (for the GMDJ strategies) happens inside the
    callable as well, matching how the paper's timings include rewrite
    cost (it is negligible; evaluation dominates).  When tracing is
    enabled the run is wrapped in a ``query`` span carrying the
    resolved strategy name, so traces attribute all work to the
    strategy that actually ran.
    """
    requested = strategy
    resolved, runner = _resolve_executor(query, catalog, strategy)

    def traced() -> Relation:
        from repro.obs.tracer import span

        with span("query", kind="query", strategy=resolved,
                  requested=requested):
            return runner()

    return traced


def _resolve_executor(
    query: Operator, catalog: Catalog, strategy: str
) -> tuple[str, Callable[[], Relation]]:
    """Resolve ``auto``/``cost_based`` and build the raw runner."""
    if strategy == "auto":
        strategy = (
            "gmdj_optimized" if contains_nested_select(query) else "gmdj"
        )
        if not contains_nested_select(query):
            return "plain", lambda: query.evaluate(catalog)
    if strategy == "cost_based":
        from repro.engine.costmodel import choose_strategy, contains_apply

        if not contains_nested_select(query) and not contains_apply(query):
            return "plain", lambda: query.evaluate(catalog)
        strategy = choose_strategy(query, catalog)
    if strategy == "naive":
        return strategy, lambda: evaluate_naive(query, catalog)
    if strategy == "native":
        return strategy, lambda: evaluate_native(
            query, catalog, use_indexes=True
        )
    if strategy == "native_noindex":
        return strategy, lambda: evaluate_native(
            query, catalog, use_indexes=False
        )
    if strategy == "unnest_join":
        return strategy, lambda: evaluate_join_unnest(
            query, catalog, use_indexes=True
        )
    if strategy == "unnest_join_noindex":
        return strategy, lambda: evaluate_join_unnest(
            query, catalog, use_indexes=False
        )
    if strategy == "gmdj":
        return strategy, lambda: subquery_to_gmdj(
            query, catalog
        ).evaluate(catalog)
    if strategy == "gmdj_coalesce":
        return strategy, lambda: subquery_to_gmdj(
            query, catalog, optimize=True, coalesce=True, completion=False
        ).evaluate(catalog)
    if strategy == "gmdj_completion":
        return strategy, lambda: subquery_to_gmdj(
            query, catalog, optimize=True, coalesce=False, completion=True
        ).evaluate(catalog)
    if strategy == "gmdj_optimized":
        return strategy, lambda: subquery_to_gmdj(
            query, catalog, optimize=True
        ).evaluate(catalog)
    if strategy == "gmdj_chunked":
        from repro.gmdj.modes import evaluate_plan_chunked

        return strategy, lambda: evaluate_plan_chunked(
            subquery_to_gmdj(query, catalog), catalog
        )
    if strategy == "gmdj_parallel":
        from repro.gmdj.modes import evaluate_plan_partitioned

        return strategy, lambda: evaluate_plan_partitioned(
            subquery_to_gmdj(query, catalog), catalog
        )
    raise PlanError(
        f"unknown strategy {strategy!r}; choose one of {STRATEGIES}"
    )
