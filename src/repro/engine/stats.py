"""Deprecated alias of :mod:`repro.engine.reports`.

This module was renamed to end the near-collision with
:mod:`repro.engine.statistics` (table/column statistics for the cost
model).  Import :class:`~repro.engine.reports.ExecutionReport` from
``repro.engine.reports`` (or simply ``repro.engine``) instead.
"""

from __future__ import annotations

import warnings

from repro.engine.reports import ExecutionReport

__all__ = ["ExecutionReport"]

warnings.warn(
    "repro.engine.stats has been renamed to repro.engine.reports; "
    "update imports (this alias will be removed)",
    DeprecationWarning,
    stacklevel=2,
)
