"""Normalized-plan-keyed translation and result caching.

Repeated subquery workloads (dashboards re-issuing the same OLAP
queries, the fuzzer replaying a corpus, benchmark sweeps) pay the
SubqueryToGMDJ translation and a full detail scan on every run even
though nothing changed.  :class:`PlanCache` memoizes both layers:

* the **translation cache** maps a normalized plan rendering (the
  deterministic :func:`repro.algebra.printer.explain` text) plus the
  translation flags to the translated GMDJ plan — re-running a query
  skips the rewrite pipeline;
* the **result cache** maps the normalized plan plus the
  result-relevant :class:`~repro.engine.options.QueryOptions` components
  to the finished relation — re-running skips the scan entirely.

Both are bounded LRU maps.  Staleness is handled by *explicit
invalidation*: every :class:`~repro.engine.database.Database` DDL entry
point (``create_table``, ``register``, ``load_csv``, ``create_index``,
``drop_indexes``) clears the cache, because any of them can change what
a plan means (schemas, data, access paths).  Mutating a
:class:`~repro.storage.relation.Relation` object in place behind the
catalog's back bypasses this — go through ``register`` to swap data.

Profiled runs (``Database.profile``, EXPLAIN ANALYZE) never consult the
result cache: their purpose is to measure the work, and a cache hit
would measure nothing.

The maps are thread-safe: the serve tier admits concurrent readers
against one database (DDL is exclusive under the tenant's
reader-writer lock, but two reads may store results at once), so every
LRU operation — including the multi-step put/evict sequence — runs
under a per-cache lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.storage.relation import Relation


class _LRU:
    """A small insertion-bounded LRU map (thread-safe)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries


class PlanCache:
    """Per-database LRU cache of translated plans and query results."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._translations = _LRU(capacity)
        self._results = _LRU(capacity)
        self.translation_hits = 0
        self.translation_misses = 0
        self.result_hits = 0
        self.result_misses = 0
        self.invalidations = 0

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def plan_key(query: Any) -> str:
        """The normalized rendering that identifies a logical plan."""
        from repro.algebra.printer import explain

        return explain(query)

    # -- translation cache -----------------------------------------------------

    def translation(self, key: Hashable) -> Any:
        """A cached translated plan, or None (counts hit/miss)."""
        plan = self._translations.get(key)
        if plan is None:
            self.translation_misses += 1
        else:
            self.translation_hits += 1
        return plan

    def store_translation(self, key: Hashable, plan: Any) -> None:
        self._translations.put(key, plan)

    # -- result cache ----------------------------------------------------------

    def result(self, key: Hashable) -> Relation | None:
        """A cached result relation (defensively copied), or None."""
        from repro.obs.metrics import get_registry

        cached = self._results.get(key)
        if cached is None:
            self.result_misses += 1
            get_registry().counter("cache.result_misses").inc()
            return None
        self.result_hits += 1
        get_registry().counter("cache.result_hits").inc()
        # Copy rows so a caller mutating the returned relation cannot
        # corrupt later hits.
        return cached.copy()

    def store_result(self, key: Hashable, relation: Relation) -> None:
        # Snapshot: the caller holds (and may mutate) the original.
        self._results.put(key, relation.copy())

    # -- lifecycle -------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached artifact (called on any DDL change)."""
        self._translations.clear()
        self._results.clear()
        self.invalidations += 1

    def stats(self) -> dict[str, int]:
        return {
            "translations": len(self._translations),
            "results": len(self._results),
            "translation_hits": self.translation_hits,
            "translation_misses": self.translation_misses,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "invalidations": self.invalidations,
        }
