"""Semantic rollup store: materialized GMDJ outputs with subsumption.

A GMDJ's output *is* a rollup: one tuple per base value, carrying the
aggregates of every ``(l_i, θ_i)`` block computed over a single detail
scan.  Under Gray et al.'s Data Cube lattice view, a stored GMDJ sits at
a point of the lattice and can answer any query *below* it — a finer
selection over the same base values, or a stricter θ whose extra
conjuncts only constrain the base side — without touching the detail
relation again.  :class:`RollupStore` implements exactly that reuse:

* **exact tier** — the probe's normalized (base, detail, blocks)
  signature matches a stored entry verbatim; serve a copy of the stored
  relation.
* **subsume tier** — the probe differs from a stored entry only by

  1. a selection wrapped around the same base
     (``MD(σ[p](B), R, l, θ)`` vs stored ``MD(B, R, l, θ)``) whose
     predicate ``p`` references only base attributes, and/or
  2. extra θ-conjuncts that reference only base attributes
     (``θ'_i = θ_i ∧ ρ_i`` with ``ρ_i`` over B).

  Case 1 is answered by filtering the cached rows on ``p`` (the GMDJ
  emits one output row per base row, *in base order*, so filtering the
  prefix columns reproduces the finer GMDJ's output exactly — order,
  duplicates and all).  Case 2 is sound in 3VL because
  ``θ_i ∧ ρ_i`` can only be TRUE for detail tuples where ``ρ_i(b)`` is
  TRUE; for base rows where ``ρ_i(b)`` is FALSE or UNKNOWN the range
  ``RNG(b, R, θ_i ∧ ρ_i)`` is empty, so the block's aggregates take
  their empty-input values (``count`` family → 0, the rest → NULL); for
  base rows where ``ρ_i(b)`` is TRUE the range is unchanged, so the
  cached aggregates are already correct.

Anything that cannot be proven servable falls through to a **miss** and
normal single-scan evaluation (whose result is then stored).  Fused
:class:`~repro.gmdj.evaluate.SelectGMDJ` nodes are never stored or
served: their completion output carries partial aggregates on assured
rows, so it is not a reusable rollup.

Staleness is handled the same way as :class:`~repro.engine.cache.PlanCache`:
every :class:`~repro.engine.database.Database` DDL entry point calls
:meth:`RollupStore.invalidate`.  Signatures are computed on the
*original* translated subtrees (before the mode walkers rebuild children
as anonymous materialized tables), so they are stable across runs of the
same logical plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.algebra.analysis import refers_only_to
from repro.algebra.expressions import Expression, conjuncts_of
from repro.algebra.operators import Operator, Select, TableValue
from repro.algebra.rewrite import map_children
from repro.errors import ReproError
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.obs.metrics import get_registry
from repro.obs.tracer import span
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def _plan_text(node: Operator) -> str:
    """The deterministic rendering that identifies a subtree."""
    from repro.algebra.printer import explain

    return explain(node)


def _block_aggs(block: ThetaBlock) -> tuple[str, ...]:
    """The aggregate list of one θ-block, as comparable reprs."""
    return tuple(repr(spec) for spec in block.aggregates)


def _signature(
    base_text: str, detail_text: str, blocks: Sequence[ThetaBlock]
) -> tuple:
    """The exact-match key of a GMDJ node."""
    return (
        base_text,
        detail_text,
        tuple((repr(block.condition), _block_aggs(block)) for block in blocks),
    )


def _empty_values(block: ThetaBlock) -> tuple:
    """Per-aggregate empty-input results (count family 0, rest NULL)."""
    return tuple(
        0 if spec.function == "count" else None for spec in block.aggregates
    )


@dataclass
class RollupEntry:
    """One materialized GMDJ output plus what is needed to reuse it."""

    gmdj: GMDJ
    relation: Relation
    base_text: str
    detail_text: str
    base_schema: Schema

    @property
    def base_arity(self) -> int:
        return len(self.base_schema)


class RollupStore:
    """Bounded LRU store of GMDJ rollups with subsumption matching."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, RollupEntry] = OrderedDict()
        #: (base_text, detail_text) -> signatures sharing that shape;
        #: the subsume tier scans only same-shape candidates.
        self._shapes: dict[tuple[str, str], list[tuple]] = {}
        #: Serializes the multi-step store/probe/evict/invalidate
        #: bookkeeping: the serve tier probes and stores from concurrent
        #: reader threads (DDL invalidation is already exclusive under
        #: the tenant's reader-writer lock, but readers race each other).
        self._lock = threading.RLock()
        self.exact_hits = 0
        self.subsume_hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0

    # -- store -----------------------------------------------------------------

    def store(self, node: GMDJ, relation: Relation, catalog: Catalog) -> None:
        """Snapshot ``relation`` as the rollup for ``node``."""
        try:
            base_schema = node.base.schema(catalog)
        except ReproError:
            return
        base_text = _plan_text(node.base)
        detail_text = _plan_text(node.detail)
        signature = _signature(base_text, detail_text, node.blocks)
        entry = RollupEntry(
            gmdj=node, relation=relation.copy(), base_text=base_text,
            detail_text=detail_text, base_schema=base_schema,
        )
        with self._lock:
            if signature not in self._entries:
                self._shapes.setdefault(
                    (base_text, detail_text), []
                ).append(signature)
            self._entries[signature] = entry
            self._entries.move_to_end(signature)
            while len(self._entries) > self.capacity:
                evicted, old = self._entries.popitem(last=False)
                self._unindex(evicted, old)
            self.stores += 1
        get_registry().counter("rollup.stores").inc()

    def _unindex(self, signature: tuple, entry: RollupEntry) -> None:
        shape = (entry.base_text, entry.detail_text)
        signatures = self._shapes.get(shape)
        if signatures is None:
            return
        try:
            signatures.remove(signature)
        except ValueError:
            pass
        if not signatures:
            del self._shapes[shape]

    # -- probe -----------------------------------------------------------------

    def probe(
        self, node: GMDJ, catalog: Catalog, subsume: bool,
    ) -> tuple[Relation, str] | None:
        """Try to answer ``node`` from stored rollups.

        Returns ``(relation, tier)`` — tier ``"exact"`` or ``"subsume"``
        — or ``None`` on a miss.  The returned relation is always an
        independent copy.
        """
        base_text = _plan_text(node.base)
        detail_text = _plan_text(node.detail)
        signature = _signature(base_text, detail_text, node.blocks)
        with self._lock:
            entry = self._entries.get(signature)
            if entry is not None:
                self._entries.move_to_end(signature)
                self.exact_hits += 1
                get_registry().counter("rollup.exact_hits").inc()
                return entry.relation.copy(), "exact"
            if subsume:
                served = self._probe_subsume(node, detail_text, base_text)
                if served is not None:
                    return served, "subsume"
            self.misses += 1
        get_registry().counter("rollup.misses").inc()
        return None

    def _probe_subsume(
        self, node: GMDJ, detail_text: str, base_text: str,
    ) -> Relation | None:
        base_filter: Expression | None = None
        inner_text = base_text
        if isinstance(node.base, Select):
            base_filter = node.base.predicate
            inner_text = _plan_text(node.base.child)
        for signature in self._shapes.get((inner_text, detail_text), ()):
            entry = self._entries.get(signature)
            if entry is None:
                continue
            try:
                served = self._try_serve(entry, node, base_filter)
            except ReproError:
                served = None
            if served is not None:
                self._entries.move_to_end(signature)
                self.subsume_hits += 1
                get_registry().counter("rollup.subsume_hits").inc()
                return served
        return None

    def _try_serve(
        self, entry: RollupEntry, node: GMDJ, base_filter: Expression | None,
    ) -> Relation | None:
        """Serve ``node`` from ``entry`` if subsumption holds, else None."""
        stored = entry.gmdj
        if len(stored.blocks) != len(node.blocks):
            return None
        schema = entry.base_schema
        if base_filter is not None and not refers_only_to(base_filter, schema):
            return None
        residuals: list[list[Expression]] = []
        for query_block, stored_block in zip(node.blocks, stored.blocks):
            if _block_aggs(query_block) != _block_aggs(stored_block):
                return None
            extras = _theta_residual(
                query_block.condition, stored_block.condition, schema
            )
            if extras is None:
                return None
            # Certificate gate: serving refines the stored result by
            # re-filtering base rows on the residual, which is only
            # sound when each residual conjunct has a known predicate
            # class (equality / inequality / range / null-test /
            # constant).  An opaque conjunct carries no monotonicity
            # fact the subsumption argument can lean on, so it misses.
            from repro.lint.absint import classify_conjunct

            for extra in extras:
                klass, _ = classify_conjunct(extra)
                if klass == "opaque":
                    return None
            residuals.append(extras)
        # Empty residuals and no base filter can still land here when the
        # query θ is a conjunct *reordering* of the stored θ (And is
        # commutative in 3VL); _serve then degenerates to a plain copy.
        return _serve(entry, base_filter, residuals)

    # -- lifecycle -------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every rollup (called on any DDL change)."""
        with self._lock:
            self._entries.clear()
            self._shapes.clear()
            self.invalidations += 1
        get_registry().counter("rollup.invalidations").inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "exact_hits": self.exact_hits,
            "subsume_hits": self.subsume_hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
        }


def _theta_residual(
    query_condition: Expression,
    stored_condition: Expression,
    base_schema: Schema,
) -> list[Expression] | None:
    """Extra base-only conjuncts of the query θ over the stored θ.

    Returns the residual conjuncts ``ρ`` such that
    ``query θ = stored θ ∧ ρ`` (as a conjunct multiset) with every ρ
    referencing only base attributes — or ``None`` when the stored θ is
    not a conjunct-subset of the query θ, or a residual touches the
    detail side (re-aggregation would need a detail scan).
    """
    remaining = list(conjuncts_of(stored_condition))
    extras: list[Expression] = []
    for conjunct in conjuncts_of(query_condition):
        for index, candidate in enumerate(remaining):
            if conjunct.same_as(candidate):
                del remaining[index]
                break
        else:
            extras.append(conjunct)
    if remaining:
        return None
    for extra in extras:
        if not refers_only_to(extra, base_schema):
            return None
    return extras


def _serve(
    entry: RollupEntry,
    base_filter: Expression | None,
    residuals: list[list[Expression]],
) -> Relation:
    """Build the finer result from the cached rollup.

    Walks the cached rows once (|B| rows, no detail scan): drops rows
    whose base prefix fails ``base_filter``, and for each block whose
    residual is not TRUE on a row's base prefix replaces that block's
    aggregate slots with empty-input values.
    """
    schema = entry.base_schema
    arity = entry.base_arity
    stats = IOStats.ambient()
    filter_eval = base_filter.bind(schema) if base_filter is not None else None
    residual_evals = [
        [extra.bind(schema) for extra in extras] for extras in residuals
    ]
    slots = []
    offset = arity
    for block in entry.gmdj.blocks:
        width = len(block.aggregates)
        slots.append((offset, width, _empty_values(block)))
        offset += width
    any_residual = any(residuals)
    rows = []
    for row in entry.relation.rows:
        prefix = row[:arity]
        if filter_eval is not None:
            stats.predicate_evals += 1
            if not filter_eval(prefix).is_true:
                continue
        if any_residual:
            patched: list | None = None
            for (start, width, empty), evals in zip(slots, residual_evals):
                alive = True
                for evaluator in evals:
                    stats.predicate_evals += 1
                    if not evaluator(prefix).is_true:
                        alive = False
                        break
                if not alive:
                    if patched is None:
                        patched = list(row)
                    patched[start:start + width] = empty
            rows.append(tuple(patched) if patched is not None else row)
        else:
            rows.append(row)
    stats.tuples_output += len(rows)
    cached = entry.relation
    return Relation(cached.schema, rows, name=cached.name, validate=False)


def evaluate_plan_rollup(
    plan: Operator,
    catalog: Catalog,
    store: RollupStore,
    subsume: bool,
    run_gmdj_node: Callable[[GMDJ], Relation],
    run_select_node: Callable[[SelectGMDJ], Relation] | None = None,
) -> Relation:
    """Evaluate ``plan``, answering GMDJ nodes from ``store`` when possible.

    Mirrors the mode walkers in :mod:`repro.gmdj.modes`, with one twist:
    the store is probed (and fed) with the *original* node, whose
    base/detail subtrees still render deterministically — the rebuilt
    node's children are anonymous materialized tables and would not make
    stable signatures.  Hits emit a ``rollup_hit`` span (with the tier
    that answered); misses wrap the kernel evaluation in a
    ``rollup_miss`` span and store the fresh result.  ``SelectGMDJ``
    nodes bypass the store entirely (their completion output is not a
    rollup), though GMDJs nested in their inputs still participate.
    """

    def walk(node: Operator) -> Relation:
        if isinstance(node, GMDJ):
            served = store.probe(node, catalog, subsume=subsume)
            if served is not None:
                relation, tier = served
                with span("rollup", kind="rollup_hit", tier=tier,
                          rows=len(relation)):
                    return relation
            with span("rollup", kind="rollup_miss"):
                rebuilt = GMDJ(
                    TableValue(walk(node.base)),
                    TableValue(walk(node.detail)),
                    node.blocks,
                )
                result = run_gmdj_node(rebuilt)
            store.store(node, result, catalog)
            return result
        if isinstance(node, SelectGMDJ):
            import dataclasses

            inner = node.gmdj
            rebuilt_inner = GMDJ(
                TableValue(walk(inner.base)),
                TableValue(walk(inner.detail)),
                inner.blocks,
            )
            rebuilt_select = dataclasses.replace(node, gmdj=rebuilt_inner)
            if run_select_node is not None:
                return run_select_node(rebuilt_select)
            return rebuilt_select.evaluate(catalog)
        rebuilt = map_children(node, lambda child: TableValue(walk(child)))
        return rebuilt.evaluate(catalog)

    with span("plan(rollup)", kind="mode", mode="rollup", subsume=subsume):
        return walk(plan)
