"""Batch multi-query optimization: share groups, shared execution.

:func:`execute_batch` is the engine behind
:meth:`repro.engine.database.Database.execute_batch`.  Given a list of
queries it:

1. translates each (cache-aware, through the planner's translator) and
   fingerprints the result (:func:`repro.gmdj.share.fingerprint_plan`);
2. partitions share-compatible plans into groups
   (:func:`plan_batch`);
3. at level ``"coalesce"``, fuses each group into one multi-consumer
   GMDJ (:func:`repro.gmdj.share.merge_group`), executes it with a
   **single detail scan** under the options' execution mode, then splits
   the shared result back per consumer and evaluates each residual plan;
4. statically certifies every shared plan
   (:func:`repro.lint.cost.certify_plan` — exactly one detail scan per
   detail table per group) and cross-checks the claim against the
   runtime trace's ``detail_scan`` spans;
5. attributes the shared scan's IOStats *fractionally* (1/k per
   consumer) so per-query accounting still reconciles with batch totals
   (the serve tier's ``/metrics`` consistency depends on this).

MQO levels (``QueryOptions.mqo`` / ``REPRO_MQO`` / batch default):

* ``"off"``          — every member executes independently;
* ``"fingerprint"``  — groups are formed and reported (what *would*
  share) but execution stays per-query;
* ``"coalesce"``     — groups execute through the shared plan.

Shared groups bypass the per-query result cache in both directions: a
cached result would mask a buggy merge from the differential suite, and
split results are cheap to rebuild from the shared scan anyway.
Singleton members run through the ordinary ``Database._run`` path and
keep full cache/rollup tiering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence, overload

from repro.algebra.operators import Operator
from repro.engine.options import QueryOptions
from repro.engine.planner import (
    _TRANSLATION_FLAGS,
    _rollup_node_runners,
    _translator,
    contains_nested_select,
)
from repro.errors import ConfigurationError
from repro.gmdj.share import (
    ShareCandidate,
    SharedGMDJPlan,
    fingerprint_plan,
    graft_consumer,
    merge_group,
    split_result,
)
from repro.lint.cost import CostCertificate, certify_batch, certify_plan
from repro.obs.tracer import Tracer, span, tracing, tracing_enabled
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation

if TYPE_CHECKING:
    from repro.engine.cache import PlanCache
    from repro.engine.database import Database

__all__ = [
    "BatchItem",
    "BatchPlan",
    "BatchReport",
    "BatchResult",
    "PlannedGroup",
    "ShareGroupReport",
    "execute_batch",
    "plan_batch",
    "resolve_level",
]


def resolve_level(options: QueryOptions) -> str:
    """The MQO level in force: explicit option > ``REPRO_MQO`` > default.

    The batch default is ``"coalesce"`` — a caller who built a batch
    asked for sharing; ``mqo="off"`` (or the environment) opts out.
    """
    level = options.mqo
    if level is None:
        level = QueryOptions.environment_mqo()
    if level is None:
        level = "coalesce"
    return level


def _share_strategy(query: Operator, options: QueryOptions) -> str | None:
    """The GMDJ translation strategy sharing should use, or None.

    Mirrors the planner's ``auto`` resolution; baseline and cost-based
    strategies never share (they have no GMDJ to merge, or pick their
    engine per query).
    """
    strategy = options.strategy
    if strategy == "auto":
        if not contains_nested_select(query):
            return None
        return "gmdj_optimized"
    if strategy in _TRANSLATION_FLAGS:
        return strategy
    return None


def _plan_decomposable(plan: Operator) -> bool:
    """True when every GMDJ aggregate in the plan is decomposable."""
    from repro.gmdj.operator import GMDJ
    from repro.lint.absint import decomposable_aggregates

    def visit(node: Operator) -> bool:
        if isinstance(node, GMDJ) and not decomposable_aggregates(node):
            return False
        return all(visit(child) for child in node.children())

    return visit(plan)


# -- batch planning -----------------------------------------------------------


@dataclass
class PlannedGroup:
    """One share group (≥ 2 compatible plans) before execution."""

    group_id: int
    indices: list[int]
    candidates: list[ShareCandidate]
    shared: SharedGMDJPlan


@dataclass
class BatchPlan:
    """The sharing decision for one batch, before any execution."""

    level: str
    queries: int
    groups: list[PlannedGroup]
    singletons: list[int]

    @property
    def grouped_indices(self) -> set[int]:
        return {index for group in self.groups for index in group.indices}


def plan_batch(
    queries: Sequence[Operator],
    catalog: Catalog,
    options: QueryOptions,
    cache: PlanCache | None = None,
) -> BatchPlan:
    """Translate, fingerprint, and partition a batch into share groups.

    Pure planning — nothing is executed.  At level ``"off"`` (or for a
    batch of one) every query is a singleton.
    """
    canon = options.canonical()
    level = resolve_level(canon)
    indices = list(range(len(queries)))
    if level == "off" or len(queries) < 2:
        return BatchPlan(level=level, queries=len(queries), groups=[],
                         singletons=indices)
    candidates: list[ShareCandidate | None] = []
    for query in queries:
        strategy = _share_strategy(query, canon)
        if strategy is None:
            candidates.append(None)
            continue
        translate = _translator(query, catalog, strategy, canon, cache)
        plan = translate()
        if not _plan_decomposable(plan):
            # Certificate gate: coalescing stacks every member's blocks
            # onto one shared scan and merges per-member results, which
            # is only sound for decomposable aggregates.  A holistic
            # spec (DISTINCT) keeps its query a singleton.
            candidates.append(None)
            continue
        candidates.append(fingerprint_plan(plan))
    by_fingerprint: dict = {}
    for index, candidate in zip(indices, candidates):
        if candidate is not None:
            by_fingerprint.setdefault(candidate.fingerprint, []).append(index)
    groups: list[PlannedGroup] = []
    for members in by_fingerprint.values():
        if len(members) < 2:
            continue
        group_candidates = [candidates[index] for index in members]
        groups.append(PlannedGroup(
            group_id=len(groups),
            indices=list(members),
            candidates=group_candidates,
            shared=merge_group(group_candidates),
        ))
    grouped = {index for group in groups for index in group.indices}
    return BatchPlan(
        level=level,
        queries=len(queries),
        groups=groups,
        singletons=[index for index in indices if index not in grouped],
    )


# -- reports ------------------------------------------------------------------


@dataclass
class ShareGroupReport:
    """What one share group did (or would do, at level fingerprint)."""

    group_id: int
    detail_table: str
    members: list[int]
    consumer_blocks: int
    shared_blocks: int
    coalesced: bool
    scans_saved: int
    certificate: CostCertificate | None = None
    runtime_detail_scans: int | None = None
    certified: bool | None = None

    def to_json(self) -> dict:
        payload = {
            "group": self.group_id,
            "detail_table": self.detail_table,
            "members": list(self.members),
            "consumer_blocks": self.consumer_blocks,
            "shared_blocks": self.shared_blocks,
            "coalesced": self.coalesced,
            "scans_saved": self.scans_saved,
            "runtime_detail_scans": self.runtime_detail_scans,
            "certified": self.certified,
        }
        if self.certificate is not None:
            payload["certificate"] = self.certificate.to_json()
        return payload


@dataclass
class BatchItem:
    """Per-query execution record inside a batch.

    ``io`` is this query's IOStats attribution: its residual/singleton
    work exactly, plus a 1/k share of its group's shared scan — summing
    ``io`` over all items reproduces the batch totals.  ``detail_scans``
    is the analogous fractional share of runtime ``detail_scan`` spans
    (None for singletons run without an ambient tracer, where nothing
    counted them).
    """

    index: int
    result: Relation
    elapsed_seconds: float
    group_id: int | None
    shared: bool
    io: dict[str, float]
    detail_scans: float | None = None

    def io_json(self) -> dict:
        return {
            key: (round(value, 4) if isinstance(value, float) else value)
            for key, value in sorted(self.io.items()) if value
        }


@dataclass
class BatchReport:
    """The batch-level account: groups, savings, certificates, totals."""

    mqo: str
    queries: int
    groups: list[ShareGroupReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    io_totals: dict[str, int] = field(default_factory=dict)
    certificate: CostCertificate | None = None

    @property
    def scans_saved(self) -> int:
        return sum(group.scans_saved for group in self.groups)

    @property
    def shared_queries(self) -> int:
        return sum(len(group.members) for group in self.groups)

    def summary(self) -> str:
        return (
            f"batch: {self.queries} queries, {len(self.groups)} share "
            f"group(s), {self.scans_saved} detail scan(s) saved "
            f"(mqo={self.mqo})"
        )

    def to_json(self) -> dict:
        payload = {
            "mqo": self.mqo,
            "queries": self.queries,
            "share_groups": [group.to_json() for group in self.groups],
            "scans_saved": self.scans_saved,
            "elapsed_ms": round(self.elapsed_seconds * 1000, 3),
            "io_totals": {
                key: value
                for key, value in sorted(self.io_totals.items()) if value
            },
        }
        if self.certificate is not None:
            payload["certificate"] = self.certificate.to_json()
        return payload


class BatchResult(Sequence):
    """Per-query results (list-like) plus the batch report.

    ``batch[i]`` is the i-th query's :class:`Relation`, exactly what
    ``execute`` would have returned for it; ``batch.report`` carries the
    share groups, scan savings, and certificates; ``batch.items`` the
    per-query attribution records.
    """

    def __init__(self, items: list[BatchItem], report: BatchReport):
        self.items = items
        self.report = report

    @property
    def results(self) -> list[Relation]:
        return [item.result for item in self.items]

    def __len__(self) -> int:
        return len(self.items)

    @overload
    def __getitem__(self, index: int) -> Relation: ...

    @overload
    def __getitem__(self, index: slice) -> list[Relation]: ...

    def __getitem__(self, index: int | slice) -> Relation | list[Relation]:
        if isinstance(index, slice):
            return [item.result for item in self.items[index]]
        return self.items[index].result

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.results)


# -- execution ----------------------------------------------------------------


def _delta(before: dict, after: dict) -> dict[str, int]:
    return {
        key: after.get(key, 0) - before.get(key, 0)
        for key in after
        if after.get(key, 0) != before.get(key, 0)
    }


def _merge_io(target: dict, delta: dict, scale: float = 1.0) -> None:
    for key, value in delta.items():
        target[key] = target.get(key, 0) + value * scale


def _scan_countable(canon: QueryOptions) -> bool:
    """Whether runtime ``detail_scan`` spans are count-comparable to the
    static certificate (plain mode and pure vectorized mode are; chunked
    and partitioned execution multiply the per-GMDJ scan spans)."""
    if canon.mode is None:
        return True
    return (
        canon.mode == "gmdj_vectorized"
        and canon.chunk_budget is None
        and canon.partitions is None
        and canon.workers is None
    )


def _run_traced_group(
    runner: Callable[[Operator], Relation], group: PlannedGroup
) -> tuple[Relation, int]:
    """Run one shared GMDJ under a tracer; returns (result, scan count).

    With an ambient tracer (the serve tier, EXPLAIN ANALYZE) the group
    span joins the existing trace; otherwise a private tracer is
    installed so the scan count is observable either way.
    """
    attrs = dict(
        group=group.group_id,
        consumers=len(group.indices),
        detail=group.shared.detail_table,
        blocks=group.shared.shared_blocks,
    )
    if tracing_enabled():
        with span("mqo_group", kind="mqo_group", **attrs) as group_span:
            result = runner(group.shared.gmdj)
    else:
        tracer = Tracer()
        with tracing(tracer):
            with span("mqo_group", kind="mqo_group", **attrs) as group_span:
                result = runner(group.shared.gmdj)
    scans = sum(
        1 for span_ in group_span.walk() if span_.kind == "detail_scan"
    )
    return result, scans


def execute_batch(
    db: Database,
    queries: Sequence[Operator],
    options: QueryOptions | None = None,
) -> BatchResult:
    """Execute a batch of queries with cross-query scan sharing.

    ``db`` is a :class:`~repro.engine.database.Database`; this function
    is its ``execute_batch`` body (kept here so the engine layer owns
    the MQO logic).  Results are returned per query, row- and
    order-identical to running each query through ``execute`` alone.
    """
    if options is not None and not isinstance(options, QueryOptions):
        raise ConfigurationError(
            "execute_batch takes QueryOptions or None; "
            f"got {options!r}"
        )
    options = options or QueryOptions()
    canon = options.canonical()
    queries = list(queries)
    started = time.perf_counter()
    plan = plan_batch(queries, db.catalog, options, cache=db.cache)
    ambient = IOStats.ambient()
    totals: dict[str, int] = {}
    items: list[BatchItem | None] = [None] * len(queries)
    report = BatchReport(mqo=plan.level, queries=len(queries))

    def run_single(index: int, group_id: int | None = None) -> None:
        before = ambient.snapshot()
        t0 = time.perf_counter()
        scans: float | None = None
        if tracing_enabled():
            # An ambient tracer (the serve tier, EXPLAIN ANALYZE) wants
            # per-member scan attribution; count this member's own
            # detail scans under a marker span.
            with span("mqo_single", kind="mqo_single",
                      index=index) as single_span:
                result = db._run(
                    queries[index], options, profiled=False
                ).result
            scans = float(sum(
                1 for span_ in single_span.walk()
                if span_.kind == "detail_scan"
            ))
        else:
            result = db._run(queries[index], options, profiled=False).result
        elapsed = time.perf_counter() - t0
        delta = _delta(before, ambient.snapshot())
        _merge_io(totals, delta)
        items[index] = BatchItem(
            index=index, result=result, elapsed_seconds=elapsed,
            group_id=group_id, shared=False, io=dict(delta),
            detail_scans=scans,
        )

    shared_certificates = []
    for group in plan.groups:
        if plan.level != "coalesce":
            for index in group.indices:
                run_single(index, group_id=group.group_id)
            report.groups.append(ShareGroupReport(
                group_id=group.group_id,
                detail_table=group.shared.detail_table,
                members=list(group.indices),
                consumer_blocks=group.shared.consumer_blocks,
                shared_blocks=group.shared.shared_blocks,
                coalesced=False,
                scans_saved=0,
            ))
            continue
        certificate = certify_plan(group.shared.gmdj)
        shared_certificates.append(certificate)
        node_runner, _ = _rollup_node_runners(db.catalog, canon)
        consumers = len(group.indices)
        before = ambient.snapshot()
        t0 = time.perf_counter()
        shared_result, runtime_scans = _run_traced_group(node_runner, group)
        shared_elapsed = time.perf_counter() - t0
        shared_delta = _delta(before, ambient.snapshot())
        _merge_io(totals, shared_delta)
        certified = None
        if _scan_countable(canon):
            certified = (
                runtime_scans
                == certificate.scan_counts.get(group.shared.detail_table, 0)
            )
        base_width = len(group.shared.gmdj.base.schema(db.catalog))
        for index, slot in zip(group.indices, group.shared.slots):
            consumer_schema = slot.candidate.gmdj.schema(db.catalog)
            piece = split_result(
                shared_result, slot, base_width, consumer_schema
            )
            residual = graft_consumer(slot, piece)
            before_residual = ambient.snapshot()
            t1 = time.perf_counter()
            result = residual.evaluate(db.catalog)
            residual_elapsed = time.perf_counter() - t1
            residual_delta = _delta(
                before_residual, ambient.snapshot()
            )
            _merge_io(totals, residual_delta)
            io: dict[str, float] = dict(residual_delta)
            _merge_io(io, shared_delta, scale=1.0 / consumers)
            items[index] = BatchItem(
                index=index, result=result,
                elapsed_seconds=(
                    shared_elapsed / consumers + residual_elapsed
                ),
                group_id=group.group_id, shared=True, io=io,
                detail_scans=runtime_scans / consumers,
            )
        report.groups.append(ShareGroupReport(
            group_id=group.group_id,
            detail_table=group.shared.detail_table,
            members=list(group.indices),
            consumer_blocks=group.shared.consumer_blocks,
            shared_blocks=group.shared.shared_blocks,
            coalesced=True,
            scans_saved=consumers - 1,
            certificate=certificate,
            runtime_detail_scans=runtime_scans,
            certified=certified,
        ))

    for index in plan.singletons:
        run_single(index)

    if shared_certificates:
        report.certificate = certify_batch(shared_certificates)
    report.elapsed_seconds = time.perf_counter() - started
    report.io_totals = totals
    return BatchResult(
        items=[item for item in items if item is not None],
        report=report,
    )
