"""Per-query execution reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.storage.relation import Relation

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.options import QueryOptions
    from repro.obs.tracer import Trace


@dataclass
class ExecutionReport:
    """Everything a benchmark needs to know about one query run.

    ``counters`` is a snapshot of the ambient
    :class:`~repro.storage.iostats.IOStats` accumulated while the query
    ran (pages read, predicate evaluations, index probes, ...);
    ``elapsed_seconds`` is wall-clock.  The result relation is attached so
    correctness checks can compare strategies on the same workload.
    ``trace`` holds the operator span tree when the run was profiled
    with tracing enabled (see :func:`repro.engine.executor.profile`).
    """

    strategy: str
    elapsed_seconds: float
    counters: dict = field(default_factory=dict)
    result: Relation | None = None
    trace: "Trace | None" = None
    options: "QueryOptions | None" = None

    @property
    def row_count(self) -> int:
        return len(self.result) if self.result is not None else 0

    @property
    def pages_read(self) -> int:
        return self.counters.get("pages_read", 0)

    @property
    def predicate_evals(self) -> int:
        return self.counters.get("predicate_evals", 0)

    @property
    def total_work(self) -> int:
        """Weighted single-scalar work figure (see IOStats.total_work)."""
        return (
            self.counters.get("pages_read", 0) * 1000
            + self.counters.get("predicate_evals", 0)
            + self.counters.get("index_probes", 0)
            + self.counters.get("aggregate_updates", 0)
            + self.counters.get("join_pairs_considered", 0)
        )

    def summary(self) -> str:
        return (
            f"{self.strategy:16s} rows={self.row_count:6d} "
            f"time={self.elapsed_seconds * 1000:9.1f}ms "
            f"pages={self.pages_read:8d} "
            f"preds={self.predicate_evals:10d} "
            f"work={self.total_work:12d}"
        )
